//! The [`any`] entry point and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of an [`Arbitrary`] type.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[derive(Clone, Copy, Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::generate(rng)
    }
}

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::for_case("arbitrary-tests", 0);
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!((300..700).contains(&trues), "trues={trues}");
    }
}
