//! Strategies for collections (`Vec`, `BTreeSet`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.int_in(self.lo as i128, self.hi as i128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for a `BTreeSet` whose cardinality falls in `size` (best
/// effort: a narrow element strategy may not reach the lower bound, as
/// in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = 32 + 16 * target.max(self.size.lo);
        while out.len() < target.max(self.size.lo) && attempts < max_attempts {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("collection-tests", 0)
    }

    #[test]
    fn vec_lengths_cover_range() {
        let s = vec(0..100u32, 0..=4);
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..400 {
            let v = s.sample(&mut r);
            assert!(v.len() <= 4);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn exact_size_vec() {
        let s = vec(0..10u8, 3usize);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r).len(), 3);
        }
    }

    #[test]
    fn btree_set_meets_lower_bound_when_feasible() {
        let s = btree_set(0..100i64, 1..=3);
        let mut r = rng();
        for _ in 0..200 {
            let set = s.sample(&mut r);
            assert!((1..=3).contains(&set.len()));
        }
    }
}
