//! Vendored minimal stand-in for the parts of `proptest` 1.x this
//! workspace uses.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the property-testing surface the suites rely on —
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, [`strategy::Just`], [`strategy::Union`],
//! weighted [`prop_oneof!`], [`collection`] strategies, [`sample::select`],
//! [`arbitrary::any`], and the [`proptest!`] test macro — is
//! re-implemented here.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the case index and the
//!   per-case seed; cases are fully deterministic (fixed base seed mixed
//!   with the test name and case index), so failures reproduce exactly
//!   on re-run without persistence files. `proptest-regressions/`
//!   directories are therefore never written.
//! - **Case counts are pinned.** `ProptestConfig::with_cases(n)` runs
//!   exactly `n` cases; the `PROPTEST_CASES` environment variable
//!   overrides every suite's count at once (used to keep CI within a
//!   time budget, or to crank counts up locally).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Chooses between several strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-test assertion; panics (with the values) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0..10i64, v in collection::vec(0..5u32, 1..=3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test runs its strategies for the configured number of cases.
/// Later strategy expressions are evaluated after earlier arguments are
/// bound, and every case is seeded deterministically from the test name
/// and case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg =
                            $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                        // Bodies may `return Ok(())` early, as in real
                        // proptest where they run in a Result context.
                        let __proptest_outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            Ok(())
                        })();
                        if let ::std::result::Result::Err(e) = __proptest_outcome {
                            panic!("proptest case rejected: {}", e);
                        }
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
