//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value-tree / shrinking layer: a
/// strategy is just a deterministic sampler over a [`TestRng`] stream.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, map }
    }

    /// Recursive strategies: `self` generates leaves, `expand` wraps a
    /// strategy for depth-`d` values into one for depth-`d+1` values.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility; recursion depth alone bounds the output here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At every level, fall back to a leaf half the time so that
            // generated sizes stay small even at full depth.
            current =
                Union::new_weighted(vec![(1, leaf.clone()), (1, expand(current).boxed())]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.map)(self.source.sample(rng)).sample(rng)
    }
}

/// Picks one of several strategies of the same type, with weights.
#[derive(Clone)]
pub struct Union<S> {
    options: Vec<(u32, S)>,
    total_weight: u64,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: impl IntoIterator<Item = S>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "Union weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let mut pick = rng.next_u128() as u64 % self.total_weight;
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_maps_compose() {
        let s = (0..10i64).prop_map(|x| x * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = Union::new_weighted(vec![(3, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut r = rng();
        let ones = (0..4000).filter(|_| s.sample(&mut r) == 1).count();
        assert!((2600..3400).contains(&ones), "ones={ones}");
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let s = (1..5usize).prop_flat_map(|n| crate::collection::vec(0..10u32, n));
        let mut r = rng();
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let s = (0..10i64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 3, |inner| {
                crate::collection::vec(inner, 1..=3).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.sample(&mut r);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node);
    }
}
