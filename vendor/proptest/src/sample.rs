//! Strategies that sample from explicit collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks one element of `values` uniformly.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires a non-empty Vec");
    Select { values }
}

#[derive(Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.values[rng.index(self.values.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_hits_every_element() {
        let s = select(vec![10, 20, 30]);
        let mut rng = TestRng::for_case("select-tests", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![10, 20, 30]);
    }
}
