//! Deterministic case runner: config, per-case RNG, and the driver the
//! [`proptest!`](crate::proptest) macro expands to.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The number of cases actually run: the config's count unless the
/// `PROPTEST_CASES` environment variable overrides it globally. A
/// malformed or zero override panics rather than silently running a
/// different number of cases than the user asked for.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(s) => {
            let n: u32 = s
                .parse()
                .unwrap_or_else(|e| panic!("invalid PROPTEST_CASES value {s:?}: {e}"));
            assert!(n > 0, "PROPTEST_CASES must be at least 1, got {s:?}");
            n
        }
        Err(_) => config.cases,
    }
}

/// The error type property-test bodies may `return Err(..)` with; a
/// plain message, since this stand-in does no shrinking or rejection
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case random number generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named test; the stream depends only on
    /// the test name and case index, so every run is reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        let _ = rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty collection");
        (self.next_u128() % n as u128) as usize
    }

    /// Uniform integer in `lo..=hi` over `i128` (covers every primitive
    /// integer range this workspace samples).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u128 + 1;
        if span == 0 {
            // Full i128 range wrapped to zero: any value is in range.
            return self.next_u128() as i128;
        }
        lo.wrapping_add((self.next_u128() % span) as i128)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Runs `body` for the configured number of deterministic cases. If a
/// case panics, the test name and case index are printed on the way out
/// so the failure can be replayed (cases are seeded from exactly those
/// two values).
pub fn run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, test_name: &str, mut body: F) {
    struct ReplayNote<'a> {
        test_name: &'a str,
        case: u32,
        cases: u32,
    }

    impl Drop for ReplayNote<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest case failed: {} (case {} of {}); cases are \
                     deterministic, re-running the test replays it",
                    self.test_name, self.case, self.cases
                );
            }
        }
    }

    let cases = effective_cases(&config);
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        let note = ReplayNote {
            test_name,
            case,
            cases,
        };
        body(&mut rng);
        std::mem::forget(note);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let mut c = TestRng::for_case("t", 4);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn int_in_covers_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.int_in(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn run_cases_honours_count() {
        let mut n = 0;
        run_cases(ProptestConfig::with_cases(17), "count", |_| n += 1);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(n, 17);
        }
    }
}
