//! Vendored minimal stand-in for the parts of `criterion` 0.5 this
//! workspace uses.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the bench harness API (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`) is
//! re-implemented here. It performs real wall-clock measurement with a
//! warm-up phase and prints a `ns/iter` summary per benchmark — enough
//! to compare runs of the `ipdb-bench` suites — but does no statistical
//! analysis, HTML reporting, or outlier rejection.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    /// Substring filter taken from the first CLI argument, mirroring
    /// `cargo bench -- <filter>`.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; ignore flags, keep the first
        // free-standing argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_name(name);
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(&id, f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named identifier: function name plus a displayed parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    fn from_name(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id, f);
        self
    }

    pub fn finish(self) {}

    fn run_one<F>(&mut self, id: &BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id.name);
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "bench: {:<60} {:>14.1} ns/iter ({} iters)",
            full_name, bencher.ns_per_iter, bencher.iters
        );
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measurement: run ~sample_size batches filling measurement_time.
        let batch =
            ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9) / self.sample_size as f64)
                .ceil() as u64)
                .max(1);
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
            if measure_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
        let elapsed = measure_start.elapsed();
        self.iters = total_iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / total_iters as f64;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
