//! Vendored minimal stand-in for the parts of `rand` 0.8 this workspace
//! uses (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the handful of external APIs the benches rely on are
//! re-implemented here on top of a SplitMix64 generator. Everything is
//! deterministic given the seed, which is all the workload generators in
//! `ipdb-bench` need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (SplitMix64 under the hood, not
/// the ChaCha12 of the real `StdRng` — statistical quality is more than
/// enough for generating benchmark workloads).
pub mod rngs {
    /// The standard RNG, seeded explicitly for reproducibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One mixing round so that nearby seeds give unrelated streams.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(r as i128)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let r = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(r as i128)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// i128/u128 need widening-free span arithmetic, so they get their own
// impls rather than the macro above.
macro_rules! impl_sample_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end.wrapping_sub(self.start)) as u128;
                let r = ((((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as u128).wrapping_add(1);
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let r = if span == 0 { raw } else { raw % span } as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}

impl_sample_range_128!(i128, u128);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 uniform mantissa bits are plenty for workload generation.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u32 = rng.gen_range(1..=7);
            assert!((1..=7).contains(&y));
            let z: usize = rng.gen_range(0..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
