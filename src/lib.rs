//! # `ipdb` — Models for Incomplete and Probabilistic Information
//!
//! A from-scratch Rust implementation of the models, theorems, and
//! constructions of Green & Tannen, *"Models for Incomplete and
//! Probabilistic Information"* (EDBT 2006 workshops, LNCS 4254).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rel`] | `ipdb-rel` | values, tuples, instances, incomplete databases, unnamed RA |
//! | [`logic`] | `ipdb-logic` | c-table condition language, valuations, satisfiability |
//! | [`bdd`] | `ipdb-bdd` | ROBDDs + weighted model counting for event expressions |
//! | [`tables`] | `ipdb-tables` | Codd/v/c-tables, `?`-tables, or-set tables, `R_sets`, `R_⊕≡`, `R_A^prop`, the c-table algebra |
//! | [`prob`] | `ipdb-prob` | probability spaces, p-`?`-tables, p-or-set-tables, pc-tables, query answering |
//! | [`provenance`] | `ipdb-provenance` | semiring provenance; the §9 lineage connection |
//! | [`theory`] | `ipdb-core` | RA-completeness, finite completeness, algebraic completion, non-closure, probabilistic completeness/closure |
//! | [`engine`] | `ipdb-engine` | query pipeline: RA surface parser, logical plans, rule-based optimizer, unified executor over all three backends |
//! | [`obs`] | `ipdb-obs` | observability: global metric counters/timers behind a zero-cost-when-off flag (`IPDB_METRICS`) |
//!
//! ## Quickstart
//!
//! ```
//! use ipdb::prelude::*;
//!
//! // The c-table of the paper's Example 2 (arity 3, variables x, y, z):
//! let mut vars = VarGen::new();
//! let (x, y, z) = (vars.fresh(), vars.fresh(), vars.fresh());
//! let s = CTable::builder(3)
//!     .row([t_const(1), t_const(2), t_var(x)], Condition::True)
//!     .row(
//!         [t_const(3), t_var(x), t_var(y)],
//!         Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
//!     )
//!     .row(
//!         [t_var(z), t_const(4), t_const(5)],
//!         Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
//!     )
//!     .build()
//!     .unwrap();
//!
//! // Enumerate its possible worlds over a finite slice of the domain:
//! let dom = Domain::ints(1..=3);
//! let worlds = s.mod_over(&dom).unwrap();
//! assert!(!worlds.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use ipdb_bdd as bdd;
pub use ipdb_core as theory;
pub use ipdb_engine as engine;
pub use ipdb_logic as logic;
pub use ipdb_obs as obs;
pub use ipdb_prob as prob;
pub use ipdb_provenance as provenance;
pub use ipdb_rel as rel;
pub use ipdb_tables as tables;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use ipdb_logic::{Condition, Term, Valuation, Var, VarGen};
    pub use ipdb_rel::{
        instance, tuple, Domain, Fragment, IDatabase, Instance, Pred, Query, Schema, Tuple, Value,
    };
    pub use ipdb_tables::{
        t_const, t_var, BooleanCTable, CTable, OrSetTable, QTable, RepresentationSystem,
    };

    pub use ipdb_prob::{BooleanPcTable, PDatabase, POrSetTable, PTable, PcTable, Rat, Weight};

    pub use ipdb_engine::{
        Backend, Catalog, Engine, EngineError, ExecConfig, OpReport, PlanCache, Prepared,
        QueryReport, Reply, Request, ServeError, Server, ServerConfig, Snapshot, SnapshotCatalog,
        Ticket,
    };

    pub use ipdb_core as theory;
}
