//! Conventional instances: finite `n`-ary relations over `D`.
//!
//! An [`Instance`] is an element of `N = { I | I ⊆ Dⁿ, I finite }` —
//! the "complete information" databases of the paper (§2). Tuples are
//! stored in a `BTreeSet` so two instances are `==` exactly when they
//! denote the same relation, which is what every theorem check relies on.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::RelError;
use crate::tuple::Tuple;
use crate::value::{Domain, Value};

/// A finite relation of fixed arity: one conventional possible world.
///
/// ```
/// use ipdb_rel::{tuple, Instance};
/// let i = Instance::from_tuples(2, [tuple![1, 2], tuple![3, 4]]).unwrap();
/// assert_eq!(i.len(), 2);
/// assert!(i.contains(&tuple![1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instance {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Instance {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Instance {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds an instance from tuples, checking that each has arity
    /// `arity`.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Result<Self, RelError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut inst = Instance::empty(arity);
        for t in tuples {
            inst.insert(t)?;
        }
        Ok(inst)
    }

    /// Builds an instance from a pre-collected batch in one shot:
    /// arity-checks every tuple up front, then hands the whole batch to
    /// `BTreeSet::from_iter`, whose sort-then-bulk-load path is much
    /// faster than per-tuple insertion for large batches — and rewards
    /// presorted (or presorted-in-runs) input. Semantically identical
    /// to [`Instance::from_tuples`].
    pub fn from_tuple_batch(arity: usize, tuples: Vec<Tuple>) -> Result<Self, RelError> {
        for t in &tuples {
            if t.arity() != arity {
                return Err(RelError::ArityMismatch {
                    expected: arity,
                    got: t.arity(),
                });
            }
        }
        Ok(Instance {
            arity,
            tuples: tuples.into_iter().collect(),
        })
    }

    /// Builds an instance from rows of raw values (each row must have the
    /// same length, which becomes the arity).
    ///
    /// Convenient for transcribing the paper's examples.
    pub fn from_rows<R, V>(
        arity: usize,
        rows: impl IntoIterator<Item = R>,
    ) -> Result<Self, RelError>
    where
        R: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Instance::from_tuples(arity, rows.into_iter().map(Tuple::new))
    }

    /// The singleton instance `{t}`; its arity is `t.arity()`.
    pub fn singleton(t: Tuple) -> Self {
        let arity = t.arity();
        let mut tuples = BTreeSet::new();
        tuples.insert(t);
        Instance { arity, tuples }
    }

    /// Arity `n` of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Inserts a tuple, checking its arity. Returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Iterates over the tuples in canonical order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// `self ∪ other` (arities must match).
    pub fn union(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        })
    }

    /// `self ∩ other` (arities must match).
    pub fn intersect(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// `self − other` (arities must match).
    pub fn difference(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Cross product `self × other`; arity is the sum of arities.
    pub fn product(&self, other: &Instance) -> Instance {
        let mut out = Instance::empty(self.arity + other.arity);
        for t1 in &self.tuples {
            for t2 in &other.tuples {
                out.tuples.insert(t1.concat(t2));
            }
        }
        out
    }

    /// Hash equijoin: `σ_{⋀ #i=#j ∧ residual}(self × other)` computed
    /// without materializing the cross product.
    ///
    /// Each `on` pair names two columns of the combined (left ++ right)
    /// tuple that must be equal. Pairs that *span* the product (one
    /// column in each factor, in either order) become hash keys: the
    /// right side is indexed on its key columns once, and each left tuple
    /// probes the index, so the cost is `O(|L| + |R| + matches)` instead
    /// of `O(|L|·|R|)`. Pairs that do not span (both columns in one
    /// factor, or a self-pair `(i, i)`) are sound but unhashable; they
    /// are applied as a post-filter together with `residual`.
    ///
    /// ```
    /// use ipdb_rel::{instance, Instance};
    /// let l = instance![[1, 10], [2, 20]];
    /// let r = instance![[10, 7], [30, 8]];
    /// // l.#1 = r.#0, i.e. combined columns #1 = #2.
    /// let j = l.equijoin(&r, &[(1, 2)], None).unwrap();
    /// assert_eq!(j, instance![[1, 10, 10, 7]]);
    /// ```
    pub fn equijoin(
        &self,
        other: &Instance,
        on: &[(usize, usize)],
        residual: Option<&crate::Pred>,
    ) -> Result<Instance, RelError> {
        use crate::Pred;
        let la = self.arity;
        let total = la + other.arity;
        // Spanning pairs become (left col, right-local col) hash keys;
        // the rest fold into the post-filter.
        let (keys, extra) = crate::pred::normalize_join_keys(on, la, total)?;
        if let Some(p) = residual {
            p.validate(total)?;
        }
        let filter = Pred::conj_all(extra.into_iter().chain(residual.cloned()));
        let trivial_filter = filter == Pred::True;

        let mut out = Instance::empty(total);
        let mut vals: Vec<Value> = Vec::with_capacity(total);
        let emit = |out: &mut Instance,
                    vals: &mut Vec<Value>,
                    l: &Tuple,
                    r: &Tuple|
         -> Result<(), RelError> {
            vals.clear();
            vals.extend_from_slice(l.values());
            vals.extend_from_slice(r.values());
            if trivial_filter || filter.eval(vals)? {
                out.tuples.insert(Tuple::new(std::mem::take(vals)));
            }
            Ok(())
        };

        // With no spanning keys, hashing would put every tuple in one
        // bucket; short-circuit to a (filtered) product instead.
        if keys.is_empty() {
            if trivial_filter {
                return Ok(self.product(other));
            }
            for l in &self.tuples {
                for r in &other.tuples {
                    emit(&mut out, &mut vals, l, r)?;
                }
            }
            return Ok(out);
        }

        // Index the *smaller* relation on its key columns and probe with
        // the other; output columns stay left ++ right either way. Keys
        // are hashed in place (no per-row key vector); buckets group by
        // hash, so probes re-verify the key columns for equality.
        let build_left = self.tuples.len() <= other.tuples.len();
        let (build, probe) = if build_left {
            (self, other)
        } else {
            (other, self)
        };
        // Key pairs are (left col, right-local col), so both sides'
        // indexes are already local to their own tuples.
        let (build_cols, probe_cols): (Vec<usize>, Vec<usize>) = if build_left {
            keys.iter().copied().unzip()
        } else {
            keys.iter().map(|&(i, j)| (j, i)).unzip()
        };

        let mut index: std::collections::HashMap<u64, Vec<&Tuple>> =
            std::collections::HashMap::with_capacity(build.tuples.len());
        for t in &build.tuples {
            index
                .entry(hash_key_cols(t.values(), &build_cols))
                .or_default()
                .push(t);
        }
        for p in &probe.tuples {
            let Some(bucket) = index.get(&hash_key_cols(p.values(), &probe_cols)) else {
                continue;
            };
            for b in bucket {
                if !key_cols_eq(b.values(), &build_cols, p.values(), &probe_cols) {
                    continue;
                }
                let (l, r) = if build_left { (*b, p) } else { (p, *b) };
                emit(&mut out, &mut vals, l, r)?;
            }
        }
        Ok(out)
    }

    /// Projection `π_cols(self)`; columns may repeat and reorder.
    pub fn project(&self, cols: &[usize]) -> Result<Instance, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    col: c,
                    arity: self.arity,
                });
            }
        }
        let mut out = Instance::empty(cols.len());
        for t in &self.tuples {
            // Indexes were checked above, so projection cannot fail.
            out.tuples.insert(t.project(cols).expect("checked cols"));
        }
        Ok(out)
    }

    /// All values appearing in any tuple — the *active domain*, the seed
    /// of the finite domain slices used to enumerate infinite-domain
    /// tables.
    pub fn active_domain(&self) -> Domain {
        Domain::new(self.tuples.iter().flat_map(|t| t.iter().cloned()))
    }

    /// All tuples of arity `arity` over `dom` — the finite slice of `Dⁿ`.
    ///
    /// There are `|dom|^arity` of them; callers keep parameters small.
    pub fn full_relation(dom: &Domain, arity: usize) -> Instance {
        let mut out = Instance::empty(arity);
        let n = dom.len();
        if arity == 0 {
            out.tuples.insert(Tuple::empty());
            return out;
        }
        if n == 0 {
            return out;
        }
        // Odometer over dom^arity.
        let mut idx = vec![0usize; arity];
        loop {
            out.tuples
                .insert(Tuple::new(idx.iter().map(|&i| dom.values()[i].clone())));
            let mut pos = arity;
            loop {
                if pos == 0 {
                    return out;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < n {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }

    fn check_arity(&self, other: &Instance) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: other.arity,
            });
        }
        Ok(())
    }
}

/// Hashes the values at `cols` of a row directly into a `u64`, without
/// materializing a per-row key vector. Buckets built from these hashes
/// group by hash value only, so lookups must confirm with
/// [`key_cols_eq`]; the hasher is `DefaultHasher` with its default keys,
/// which is deterministic within a build.
pub(crate) fn hash_key_cols(row: &[Value], cols: &[usize]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// Whether two rows agree on their respective key columns (the
/// collision check paired with [`hash_key_cols`]).
pub(crate) fn key_cols_eq(a: &[Value], a_cols: &[usize], b: &[Value], b_cols: &[usize]) -> bool {
    a_cols.iter().zip(b_cols).all(|(&i, &j)| a[i] == b[j])
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Builds an [`Instance`] from rows: `instance![\[1, 2\], \[3, 4\]]`.
///
/// The arity is taken from the first row; all rows must agree (checked at
/// runtime). `instance![arity = 2;]` builds an empty instance of a given
/// arity.
///
/// ```
/// use ipdb_rel::instance;
/// let i = instance![[1, 2], [3, 4]];
/// assert_eq!(i.arity(), 2);
/// let e = instance![arity = 3;];
/// assert!(e.is_empty());
/// ```
#[macro_export]
macro_rules! instance {
    (arity = $a:expr ;) => {
        $crate::Instance::empty($a)
    };
    ($([$($v:expr),* $(,)?]),+ $(,)?) => {{
        let rows = vec![$($crate::Tuple::new([$($crate::Value::from($v)),*])),+];
        let arity = rows[0].arity();
        $crate::Instance::from_tuples(arity, rows).expect("instance! rows must share an arity")
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn equijoin_matches_filtered_product() {
        use crate::Pred;
        let l = Instance::from_rows(2, [[1i64, 10], [2, 20], [3, 10]]).unwrap();
        let r = Instance::from_rows(2, [[10i64, 7], [20, 8], [40, 9]]).unwrap();
        let on = [(1usize, 2usize)];
        let join = l.equijoin(&r, &on, None).unwrap();
        // Oracle: σ_{#1=#2}(l × r).
        let mut oracle = Instance::empty(4);
        for t in l.product(&r).iter() {
            if Pred::eq_cols(1, 2).eval(t.values()).unwrap() {
                oracle.insert(t.clone()).unwrap();
            }
        }
        assert_eq!(join, oracle);
        assert_eq!(join.len(), 3);
        // Residual filters the matched pairs.
        let resid = Pred::neq_const(0, 3);
        let filtered = l.equijoin(&r, &on, Some(&resid)).unwrap();
        assert_eq!(filtered.len(), 2);
        // Reversed pair order means the same join.
        assert_eq!(l.equijoin(&r, &[(2, 1)], None).unwrap(), join);
        // Duplicate pairs are harmless.
        assert_eq!(l.equijoin(&r, &[(1, 2), (1, 2)], None).unwrap(), join);
    }

    #[test]
    fn equijoin_degenerate_keys() {
        use crate::Pred;
        let l = Instance::from_rows(1, [[1i64], [2]]).unwrap();
        let r = Instance::from_rows(1, [[1i64], [3]]).unwrap();
        // No pairs at all: plain product.
        assert_eq!(l.equijoin(&r, &[], None).unwrap(), l.product(&r));
        // A non-spanning self-pair (i, i) is trivially true.
        assert_eq!(l.equijoin(&r, &[(0, 0)], None).unwrap(), l.product(&r));
        // A non-spanning distinct pair inside one factor is applied as a
        // filter: here both columns are the combined tuple's sides.
        let l2 = Instance::from_rows(2, [[1i64, 1], [1, 2]]).unwrap();
        let j = l2.equijoin(&r, &[(0, 1)], None).unwrap();
        assert_eq!(
            j,
            Instance::from_rows(3, [[1i64, 1, 1], [1, 1, 3]]).unwrap()
        );
        // Out-of-range key column is rejected.
        assert_eq!(
            l.equijoin(&r, &[(0, 5)], None).unwrap_err(),
            RelError::ColumnOutOfRange { col: 5, arity: 2 }
        );
        // Out-of-range residual is rejected.
        assert!(l
            .equijoin(&r, &[(0, 1)], Some(&Pred::eq_cols(0, 9)))
            .is_err());
        // Empty sides join to empty.
        assert!(Instance::empty(1)
            .equijoin(&r, &[(0, 1)], None)
            .unwrap()
            .is_empty());
        assert!(l
            .equijoin(&Instance::empty(1), &[(0, 1)], None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn from_tuple_batch_equals_from_tuples() {
        let tuples: Vec<Tuple> = [[3, 1], [1, 2], [3, 1], [2, 0]]
            .into_iter()
            .map(|r| Tuple::new(r.map(Value::from)))
            .collect();
        assert_eq!(
            Instance::from_tuple_batch(2, tuples.clone()).unwrap(),
            Instance::from_tuples(2, tuples).unwrap()
        );
        assert_eq!(
            Instance::from_tuple_batch(2, vec![Tuple::new([Value::from(1)])]),
            Err(RelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            Instance::from_tuple_batch(3, vec![]).unwrap(),
            Instance::empty(3)
        );
    }

    #[test]
    fn equijoin_build_side_is_size_independent() {
        use crate::Pred;
        // Tiny left / huge right and the transpose must agree with the
        // filtered-product oracle and keep left ++ right column order,
        // whichever side the hash index is built on.
        let small = Instance::from_rows(2, (0..3i64).map(|i| [i, i])).unwrap();
        let big = Instance::from_rows(2, (0..50i64).map(|i| [i % 5, i])).unwrap();
        let oracle = |l: &Instance, r: &Instance, filter: &Pred| {
            let mut out = Instance::empty(4);
            for t in l.product(r).iter() {
                if Pred::eq_cols(0, 2)
                    .conj(filter.clone())
                    .eval(t.values())
                    .unwrap()
                {
                    out.insert(t.clone()).unwrap();
                }
            }
            out
        };
        for (l, r) in [(&small, &big), (&big, &small)] {
            assert_eq!(
                l.equijoin(r, &[(0, 2)], None).unwrap(),
                oracle(l, r, &Pred::True)
            );
            let resid = Pred::neq_cols(1, 3);
            assert_eq!(
                l.equijoin(r, &[(0, 2)], Some(&resid)).unwrap(),
                oracle(l, r, &resid)
            );
        }
    }

    #[test]
    fn construction_checks_arity() {
        let err = Instance::from_tuples(2, [tuple![1, 2], tuple![1]]).unwrap_err();
        assert_eq!(
            err,
            RelError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn set_semantics_dedup() {
        let i = Instance::from_tuples(1, [tuple![1], tuple![1]]).unwrap();
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn union_intersect_difference() {
        let a = instance![[1], [2]];
        let b = instance![[2], [3]];
        assert_eq!(a.union(&b).unwrap(), instance![[1], [2], [3]]);
        assert_eq!(a.intersect(&b).unwrap(), instance![[2]]);
        assert_eq!(a.difference(&b).unwrap(), instance![[1]]);
        let c = instance![[1, 2]];
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn product_concatenates() {
        let a = instance![[1], [2]];
        let b = instance![[10, 20]];
        let p = a.product(&b);
        assert_eq!(p.arity(), 3);
        assert_eq!(p, instance![[1, 10, 20], [2, 10, 20]]);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = instance![[1]];
        let e = Instance::empty(2);
        assert!(a.product(&e).is_empty());
        assert_eq!(a.product(&e).arity(), 3);
    }

    #[test]
    fn projection() {
        let i = instance![[1, 2], [3, 4]];
        assert_eq!(i.project(&[1]).unwrap(), instance![[2], [4]]);
        assert_eq!(i.project(&[1, 0]).unwrap(), instance![[2, 1], [4, 3]]);
        assert!(i.project(&[2]).is_err());
        // Projecting to zero columns yields the 0-ary "true" relation when
        // the input is non-empty.
        let z = i.project(&[]).unwrap();
        assert_eq!(z.arity(), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn projection_merges_duplicates() {
        let i = instance![[1, 9], [1, 8]];
        assert_eq!(i.project(&[0]).unwrap().len(), 1);
    }

    #[test]
    fn active_domain() {
        let i = instance![[1, 2], [2, 3]];
        assert_eq!(i.active_domain(), Domain::ints(1..=3));
    }

    #[test]
    fn full_relation_counts() {
        let d = Domain::ints(1..=3);
        assert_eq!(Instance::full_relation(&d, 2).len(), 9);
        assert_eq!(Instance::full_relation(&d, 0).len(), 1);
        assert_eq!(Instance::full_relation(&Domain::empty(), 2).len(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(instance![[1, 2]].to_string(), "{(1, 2)}");
        assert_eq!(Instance::empty(1).to_string(), "{}");
    }

    #[test]
    fn singleton() {
        let s = Instance::singleton(tuple![5, 6]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 1);
    }
}
