//! Conventional instances: finite `n`-ary relations over `D`.
//!
//! An [`Instance`] is an element of `N = { I | I ⊆ Dⁿ, I finite }` —
//! the "complete information" databases of the paper (§2). Tuples are
//! stored in a `BTreeSet` so two instances are `==` exactly when they
//! denote the same relation, which is what every theorem check relies on.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::RelError;
use crate::tuple::Tuple;
use crate::value::{Domain, Value};

/// A finite relation of fixed arity: one conventional possible world.
///
/// ```
/// use ipdb_rel::{tuple, Instance};
/// let i = Instance::from_tuples(2, [tuple![1, 2], tuple![3, 4]]).unwrap();
/// assert_eq!(i.len(), 2);
/// assert!(i.contains(&tuple![1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instance {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Instance {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Instance {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds an instance from tuples, checking that each has arity
    /// `arity`.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Result<Self, RelError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut inst = Instance::empty(arity);
        for t in tuples {
            inst.insert(t)?;
        }
        Ok(inst)
    }

    /// Builds an instance from rows of raw values (each row must have the
    /// same length, which becomes the arity).
    ///
    /// Convenient for transcribing the paper's examples.
    pub fn from_rows<R, V>(
        arity: usize,
        rows: impl IntoIterator<Item = R>,
    ) -> Result<Self, RelError>
    where
        R: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Instance::from_tuples(arity, rows.into_iter().map(Tuple::new))
    }

    /// The singleton instance `{t}`; its arity is `t.arity()`.
    pub fn singleton(t: Tuple) -> Self {
        let arity = t.arity();
        let mut tuples = BTreeSet::new();
        tuples.insert(t);
        Instance { arity, tuples }
    }

    /// Arity `n` of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Inserts a tuple, checking its arity. Returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Iterates over the tuples in canonical order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// `self ∪ other` (arities must match).
    pub fn union(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        })
    }

    /// `self ∩ other` (arities must match).
    pub fn intersect(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// `self − other` (arities must match).
    pub fn difference(&self, other: &Instance) -> Result<Instance, RelError> {
        self.check_arity(other)?;
        Ok(Instance {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Cross product `self × other`; arity is the sum of arities.
    pub fn product(&self, other: &Instance) -> Instance {
        let mut out = Instance::empty(self.arity + other.arity);
        for t1 in &self.tuples {
            for t2 in &other.tuples {
                out.tuples.insert(t1.concat(t2));
            }
        }
        out
    }

    /// Hash equijoin: `σ_{⋀ #i=#j ∧ residual}(self × other)` computed
    /// without materializing the cross product.
    ///
    /// Each `on` pair names two columns of the combined (left ++ right)
    /// tuple that must be equal. Pairs that *span* the product (one
    /// column in each factor, in either order) become hash keys: the
    /// right side is indexed on its key columns once, and each left tuple
    /// probes the index, so the cost is `O(|L| + |R| + matches)` instead
    /// of `O(|L|·|R|)`. Pairs that do not span (both columns in one
    /// factor, or a self-pair `(i, i)`) are sound but unhashable; they
    /// are applied as a post-filter together with `residual`.
    ///
    /// ```
    /// use ipdb_rel::{instance, Instance};
    /// let l = instance![[1, 10], [2, 20]];
    /// let r = instance![[10, 7], [30, 8]];
    /// // l.#1 = r.#0, i.e. combined columns #1 = #2.
    /// let j = l.equijoin(&r, &[(1, 2)], None).unwrap();
    /// assert_eq!(j, instance![[1, 10, 10, 7]]);
    /// ```
    pub fn equijoin(
        &self,
        other: &Instance,
        on: &[(usize, usize)],
        residual: Option<&crate::Pred>,
    ) -> Result<Instance, RelError> {
        use crate::Pred;
        let la = self.arity;
        let total = la + other.arity;
        // Spanning pairs become (left col, right-local col) hash keys;
        // the rest fold into the post-filter.
        let (keys, extra) = crate::pred::normalize_join_keys(on, la, total)?;
        if let Some(p) = residual {
            p.validate(total)?;
        }
        let filter = Pred::conj_all(extra.into_iter().chain(residual.cloned()));

        // Build side: index the right relation on its key columns. With
        // no spanning keys every tuple lands in one bucket and the join
        // degenerates to a filtered product, which is still correct.
        let mut index: std::collections::HashMap<Vec<&Value>, Vec<&Tuple>> =
            std::collections::HashMap::new();
        for t in &other.tuples {
            let key: Vec<&Value> = keys.iter().map(|&(_, j)| &t.values()[j]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut out = Instance::empty(total);
        for l in &self.tuples {
            let key: Vec<&Value> = keys.iter().map(|&(i, _)| &l.values()[i]).collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for r in matches {
                let mut vals = Vec::with_capacity(total);
                vals.extend_from_slice(l.values());
                vals.extend_from_slice(r.values());
                if filter == Pred::True || filter.eval(&vals)? {
                    out.tuples.insert(Tuple::new(vals));
                }
            }
        }
        Ok(out)
    }

    /// Projection `π_cols(self)`; columns may repeat and reorder.
    pub fn project(&self, cols: &[usize]) -> Result<Instance, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    col: c,
                    arity: self.arity,
                });
            }
        }
        let mut out = Instance::empty(cols.len());
        for t in &self.tuples {
            // Indexes were checked above, so projection cannot fail.
            out.tuples.insert(t.project(cols).expect("checked cols"));
        }
        Ok(out)
    }

    /// All values appearing in any tuple — the *active domain*, the seed
    /// of the finite domain slices used to enumerate infinite-domain
    /// tables.
    pub fn active_domain(&self) -> Domain {
        Domain::new(self.tuples.iter().flat_map(|t| t.iter().cloned()))
    }

    /// All tuples of arity `arity` over `dom` — the finite slice of `Dⁿ`.
    ///
    /// There are `|dom|^arity` of them; callers keep parameters small.
    pub fn full_relation(dom: &Domain, arity: usize) -> Instance {
        let mut out = Instance::empty(arity);
        let n = dom.len();
        if arity == 0 {
            out.tuples.insert(Tuple::empty());
            return out;
        }
        if n == 0 {
            return out;
        }
        // Odometer over dom^arity.
        let mut idx = vec![0usize; arity];
        loop {
            out.tuples
                .insert(Tuple::new(idx.iter().map(|&i| dom.values()[i].clone())));
            let mut pos = arity;
            loop {
                if pos == 0 {
                    return out;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < n {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }

    fn check_arity(&self, other: &Instance) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: other.arity,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Builds an [`Instance`] from rows: `instance![\[1, 2\], \[3, 4\]]`.
///
/// The arity is taken from the first row; all rows must agree (checked at
/// runtime). `instance![arity = 2;]` builds an empty instance of a given
/// arity.
///
/// ```
/// use ipdb_rel::instance;
/// let i = instance![[1, 2], [3, 4]];
/// assert_eq!(i.arity(), 2);
/// let e = instance![arity = 3;];
/// assert!(e.is_empty());
/// ```
#[macro_export]
macro_rules! instance {
    (arity = $a:expr ;) => {
        $crate::Instance::empty($a)
    };
    ($([$($v:expr),* $(,)?]),+ $(,)?) => {{
        let rows = vec![$($crate::Tuple::new([$($crate::Value::from($v)),*])),+];
        let arity = rows[0].arity();
        $crate::Instance::from_tuples(arity, rows).expect("instance! rows must share an arity")
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn equijoin_matches_filtered_product() {
        use crate::Pred;
        let l = Instance::from_rows(2, [[1i64, 10], [2, 20], [3, 10]]).unwrap();
        let r = Instance::from_rows(2, [[10i64, 7], [20, 8], [40, 9]]).unwrap();
        let on = [(1usize, 2usize)];
        let join = l.equijoin(&r, &on, None).unwrap();
        // Oracle: σ_{#1=#2}(l × r).
        let mut oracle = Instance::empty(4);
        for t in l.product(&r).iter() {
            if Pred::eq_cols(1, 2).eval(t.values()).unwrap() {
                oracle.insert(t.clone()).unwrap();
            }
        }
        assert_eq!(join, oracle);
        assert_eq!(join.len(), 3);
        // Residual filters the matched pairs.
        let resid = Pred::neq_const(0, 3);
        let filtered = l.equijoin(&r, &on, Some(&resid)).unwrap();
        assert_eq!(filtered.len(), 2);
        // Reversed pair order means the same join.
        assert_eq!(l.equijoin(&r, &[(2, 1)], None).unwrap(), join);
        // Duplicate pairs are harmless.
        assert_eq!(l.equijoin(&r, &[(1, 2), (1, 2)], None).unwrap(), join);
    }

    #[test]
    fn equijoin_degenerate_keys() {
        use crate::Pred;
        let l = Instance::from_rows(1, [[1i64], [2]]).unwrap();
        let r = Instance::from_rows(1, [[1i64], [3]]).unwrap();
        // No pairs at all: plain product.
        assert_eq!(l.equijoin(&r, &[], None).unwrap(), l.product(&r));
        // A non-spanning self-pair (i, i) is trivially true.
        assert_eq!(l.equijoin(&r, &[(0, 0)], None).unwrap(), l.product(&r));
        // A non-spanning distinct pair inside one factor is applied as a
        // filter: here both columns are the combined tuple's sides.
        let l2 = Instance::from_rows(2, [[1i64, 1], [1, 2]]).unwrap();
        let j = l2.equijoin(&r, &[(0, 1)], None).unwrap();
        assert_eq!(
            j,
            Instance::from_rows(3, [[1i64, 1, 1], [1, 1, 3]]).unwrap()
        );
        // Out-of-range key column is rejected.
        assert_eq!(
            l.equijoin(&r, &[(0, 5)], None).unwrap_err(),
            RelError::ColumnOutOfRange { col: 5, arity: 2 }
        );
        // Out-of-range residual is rejected.
        assert!(l
            .equijoin(&r, &[(0, 1)], Some(&Pred::eq_cols(0, 9)))
            .is_err());
        // Empty sides join to empty.
        assert!(Instance::empty(1)
            .equijoin(&r, &[(0, 1)], None)
            .unwrap()
            .is_empty());
        assert!(l
            .equijoin(&Instance::empty(1), &[(0, 1)], None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn construction_checks_arity() {
        let err = Instance::from_tuples(2, [tuple![1, 2], tuple![1]]).unwrap_err();
        assert_eq!(
            err,
            RelError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn set_semantics_dedup() {
        let i = Instance::from_tuples(1, [tuple![1], tuple![1]]).unwrap();
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn union_intersect_difference() {
        let a = instance![[1], [2]];
        let b = instance![[2], [3]];
        assert_eq!(a.union(&b).unwrap(), instance![[1], [2], [3]]);
        assert_eq!(a.intersect(&b).unwrap(), instance![[2]]);
        assert_eq!(a.difference(&b).unwrap(), instance![[1]]);
        let c = instance![[1, 2]];
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn product_concatenates() {
        let a = instance![[1], [2]];
        let b = instance![[10, 20]];
        let p = a.product(&b);
        assert_eq!(p.arity(), 3);
        assert_eq!(p, instance![[1, 10, 20], [2, 10, 20]]);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = instance![[1]];
        let e = Instance::empty(2);
        assert!(a.product(&e).is_empty());
        assert_eq!(a.product(&e).arity(), 3);
    }

    #[test]
    fn projection() {
        let i = instance![[1, 2], [3, 4]];
        assert_eq!(i.project(&[1]).unwrap(), instance![[2], [4]]);
        assert_eq!(i.project(&[1, 0]).unwrap(), instance![[2, 1], [4, 3]]);
        assert!(i.project(&[2]).is_err());
        // Projecting to zero columns yields the 0-ary "true" relation when
        // the input is non-empty.
        let z = i.project(&[]).unwrap();
        assert_eq!(z.arity(), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn projection_merges_duplicates() {
        let i = instance![[1, 9], [1, 8]];
        assert_eq!(i.project(&[0]).unwrap().len(), 1);
    }

    #[test]
    fn active_domain() {
        let i = instance![[1, 2], [2, 3]];
        assert_eq!(i.active_domain(), Domain::ints(1..=3));
    }

    #[test]
    fn full_relation_counts() {
        let d = Domain::ints(1..=3);
        assert_eq!(Instance::full_relation(&d, 2).len(), 9);
        assert_eq!(Instance::full_relation(&d, 0).len(), 1);
        assert_eq!(Instance::full_relation(&Domain::empty(), 2).len(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(instance![[1, 2]].to_string(), "{(1, 2)}");
        assert_eq!(Instance::empty(1).to_string(), "{}");
    }

    #[test]
    fn singleton() {
        let s = Instance::singleton(tuple![5, 6]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 1);
    }
}
