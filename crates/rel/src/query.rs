//! The unnamed relational algebra.
//!
//! §2 of the paper: "We use the unnamed form of the relational algebra"
//! over a schema with a single relation name. [`Query`] is that algebra:
//! the input relation, constant relation literals (the `{c}` singletons
//! appearing throughout the constructions of Thms 1/5/6 and Prop. 4),
//! projection by index list, selection by [`Pred`], cross product, union,
//! difference, and intersection.
//!
//! Queries are arity-checked ([`Query::arity`]) before evaluation, and
//! report the operations they use ([`Query::op_set`]) so completion
//! theorems can verify fragment claims.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RelError;
use crate::fragment::OpSet;
use crate::idb::IDatabase;
use crate::instance::Instance;
use crate::pred::Pred;
use crate::schema::Schema;

/// An unnamed relational-algebra query over one input relation.
///
/// ```
/// use ipdb_rel::{instance, Pred, Query};
/// // π₁(σ_{#1=#2}(V × V))
/// let q = Query::project(
///     Query::select(Query::product(Query::Input, Query::Input), Pred::eq_cols(0, 2)),
///     vec![0],
/// );
/// let input = instance![[1, 10], [2, 20]];
/// assert_eq!(q.eval(&input).unwrap(), instance![[1], [2]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// The input relation `V`.
    Input,
    /// The second input relation `W`.
    ///
    /// The paper's §2 footnote ("everything we say can be easily
    /// reformulated for arbitrary relational schemas") is needed in
    /// earnest by the Thm 6 completion constructions, which keep a pair
    /// of tables `(S, T)`. Queries using `Second` must be evaluated with
    /// [`Query::eval2`]; single-relation evaluation reports
    /// [`RelError::NoSecondInput`].
    Second,
    /// A named relation of an arbitrary schema — the §2 footnote taken
    /// at its word. Arity-checked against a [`Schema`]
    /// ([`Query::arity_in`]) and evaluated against a name-keyed catalog
    /// of instances ([`Query::eval_catalog`]).
    ///
    /// [`Query::Input`] and [`Query::Second`] are canonical aliases for
    /// the reserved names `V` and `W` ([`Schema::INPUT`] /
    /// [`Schema::SECOND`]): every lookup context resolves all three leaf
    /// forms through the same name map. Build named leaves with
    /// [`Query::rel`], which folds `rel("V")`/`rel("W")` back to the
    /// canonical variants so equal queries compare equal.
    Rel(String),
    /// A constant relation (e.g. the singleton `{c}`); independent of the
    /// input.
    Lit(Instance),
    /// `π_cols(q)` — projection by (repeatable, reorderable) index list.
    Project(Vec<usize>, Box<Query>),
    /// `σ_p(q)`.
    Select(Pred, Box<Query>),
    /// `q₁ × q₂`.
    Product(Box<Query>, Box<Query>),
    /// `q₁ ⋈ q₂` — equijoin: `σ_{⋀(i,j)∈on #i=#j ∧ residual}(q₁ × q₂)`,
    /// executed as a hash join instead of a filtered cross product.
    ///
    /// `on` pairs are **global** column indexes into the concatenated
    /// (left ++ right) tuple, exactly as a selection over the product
    /// would write them; `residual` is an arbitrary extra filter over the
    /// combined tuple. The paper's algebra does not name a join — it is
    /// the derived `σ(×)` form used throughout (Example 2's
    /// `σ_{2=3}(V × V)` shape) — so `Join` is semantically redundant but
    /// operationally first-class: the three backends all execute it with
    /// build-side hashing on the spanning key columns.
    Join {
        /// Equality pairs over the combined tuple (deduplicated by the
        /// planner; order is the extraction order of
        /// [`Pred::split_equijoin`]).
        on: Vec<(usize, usize)>,
        /// Extra filter applied to each joined row, if any.
        residual: Option<Pred>,
        /// Left operand (its columns come first in the output).
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
    },
    /// `q₁ ∪ q₂`.
    Union(Box<Query>, Box<Query>),
    /// `q₁ − q₂`.
    Diff(Box<Query>, Box<Query>),
    /// `q₁ ∩ q₂`.
    Intersect(Box<Query>, Box<Query>),
}

impl Query {
    /// The named relation `name`, canonicalizing the reserved names:
    /// `rel("V")` is [`Query::Input`] and `rel("W")` is
    /// [`Query::Second`], so the alias spellings cannot produce a second
    /// AST form for the same leaf.
    pub fn rel(name: impl Into<String>) -> Query {
        let name = name.into();
        match name.as_str() {
            Schema::INPUT => Query::Input,
            Schema::SECOND => Query::Second,
            _ => Query::Rel(name),
        }
    }

    /// `π_cols(q)`.
    pub fn project(q: Query, cols: Vec<usize>) -> Query {
        Query::Project(cols, Box::new(q))
    }

    /// `σ_p(q)`.
    pub fn select(q: Query, p: Pred) -> Query {
        Query::Select(p, Box::new(q))
    }

    /// `a × b`.
    pub fn product(a: Query, b: Query) -> Query {
        Query::Product(Box::new(a), Box::new(b))
    }

    /// `a ⋈_{on; residual} b` (see [`Query::Join`]).
    pub fn join(
        a: Query,
        b: Query,
        on: impl IntoIterator<Item = (usize, usize)>,
        residual: Option<Pred>,
    ) -> Query {
        Query::Join {
            on: on.into_iter().collect(),
            residual,
            left: Box::new(a),
            right: Box::new(b),
        }
    }

    /// The selection predicate a join stands for: the conjunction of its
    /// key equalities and residual. `Join{on, residual}(a, b)` is
    /// equivalent to `σ_{join_pred(on, residual)}(a × b)` — the lowering
    /// used by layers that have no native join (provenance) and by the
    /// differential join-oracle tests.
    pub fn join_pred(on: &[(usize, usize)], residual: Option<&Pred>) -> Pred {
        Pred::conj_all(
            on.iter()
                .map(|&(i, j)| Pred::eq_cols(i, j))
                .chain(residual.cloned()),
        )
    }

    /// Left-associated product of several queries; `None` if empty.
    pub fn product_all(qs: impl IntoIterator<Item = Query>) -> Option<Query> {
        qs.into_iter().reduce(Query::product)
    }

    /// `a ∪ b`.
    pub fn union(a: Query, b: Query) -> Query {
        Query::Union(Box::new(a), Box::new(b))
    }

    /// Left-associated union of several queries; `None` if empty.
    pub fn union_all(qs: impl IntoIterator<Item = Query>) -> Option<Query> {
        qs.into_iter().reduce(Query::union)
    }

    /// `a − b`.
    pub fn diff(a: Query, b: Query) -> Query {
        Query::Diff(Box::new(a), Box::new(b))
    }

    /// `a ∩ b`.
    pub fn intersect(a: Query, b: Query) -> Query {
        Query::Intersect(Box::new(a), Box::new(b))
    }

    /// The constant singleton relation `{(v…)}` used as `{c}` in the
    /// paper's constructions.
    pub fn singleton<I, V>(values: I) -> Query
    where
        I: IntoIterator<Item = V>,
        V: Into<crate::Value>,
    {
        Query::Lit(Instance::singleton(crate::Tuple::new(values)))
    }

    /// Output arity given the input relation's arity; validates column
    /// references and arity agreement along the way. Errors on queries
    /// using [`Query::Second`] (use [`Query::arity2`]) or named
    /// relations (use [`Query::arity_in`]).
    pub fn arity(&self, input_arity: usize) -> Result<usize, RelError> {
        self.arity_in(&Schema::single(input_arity))
    }

    /// Output arity in a two-relation context (`V` of arity
    /// `input_arity`, `W` of arity `second_arity`).
    pub fn arity2(&self, input_arity: usize, second_arity: usize) -> Result<usize, RelError> {
        self.arity_in(&Schema::pair(input_arity, second_arity))
    }

    /// Output arity over an arbitrary named [`Schema`]; `Input`/`Second`
    /// resolve as the reserved names `V`/`W`.
    pub fn arity_in(&self, schema: &Schema) -> Result<usize, RelError> {
        match self {
            Query::Input => schema.resolve(Schema::INPUT),
            Query::Second => schema.resolve(Schema::SECOND),
            Query::Rel(name) => schema.resolve(name),
            Query::Lit(i) => Ok(i.arity()),
            Query::Project(cols, q) => {
                let a = q.arity_in(schema)?;
                for &c in cols {
                    if c >= a {
                        return Err(RelError::ColumnOutOfRange { col: c, arity: a });
                    }
                }
                Ok(cols.len())
            }
            Query::Select(p, q) => {
                let a = q.arity_in(schema)?;
                p.validate(a)?;
                Ok(a)
            }
            Query::Product(a, b) => Ok(a.arity_in(schema)? + b.arity_in(schema)?),
            Query::Join {
                on,
                residual,
                left,
                right,
            } => {
                let total = left.arity_in(schema)? + right.arity_in(schema)?;
                for &(i, j) in on {
                    let col = i.max(j);
                    if col >= total {
                        return Err(RelError::ColumnOutOfRange { col, arity: total });
                    }
                }
                if let Some(p) = residual {
                    p.validate(total)?;
                }
                Ok(total)
            }
            Query::Union(a, b) | Query::Diff(a, b) | Query::Intersect(a, b) => {
                let aa = a.arity_in(schema)?;
                let ab = b.arity_in(schema)?;
                if aa != ab {
                    return Err(RelError::ArityMismatch {
                        expected: aa,
                        got: ab,
                    });
                }
                Ok(aa)
            }
        }
    }

    /// Evaluates the query on a conventional instance. Errors on queries
    /// using [`Query::Second`] (use [`Query::eval2`]) or named relations
    /// (use [`Query::eval_catalog`]).
    pub fn eval(&self, input: &Instance) -> Result<Instance, RelError> {
        self.eval_impl(&RelCtx::Pair {
            input,
            second: None,
        })
    }

    /// Evaluates in a two-relation context: `V = input`, `W = second`.
    pub fn eval2(&self, input: &Instance, second: &Instance) -> Result<Instance, RelError> {
        self.eval_impl(&RelCtx::Pair {
            input,
            second: Some(second),
        })
    }

    /// Evaluates against a named catalog of instances; `Input`/`Second`
    /// resolve as the reserved names `V`/`W`, so a catalog with those
    /// keys runs classic queries unchanged.
    pub fn eval_catalog(&self, rels: &BTreeMap<String, Instance>) -> Result<Instance, RelError> {
        self.eval_impl(&RelCtx::Map(rels))
    }

    fn eval_impl(&self, ctx: &RelCtx<'_>) -> Result<Instance, RelError> {
        match self {
            Query::Input => Ok(ctx.lookup(Schema::INPUT)?.clone()),
            Query::Second => Ok(ctx.lookup(Schema::SECOND)?.clone()),
            Query::Rel(name) => Ok(ctx.lookup(name)?.clone()),
            Query::Lit(i) => Ok(i.clone()),
            Query::Project(cols, q) => q.eval_impl(ctx)?.project(cols),
            Query::Select(p, q) => {
                let inner = q.eval_impl(ctx)?;
                p.validate(inner.arity())?;
                let mut out = Instance::empty(inner.arity());
                for t in inner.iter() {
                    if p.eval(t.values())? {
                        out.insert(t.clone())?;
                    }
                }
                Ok(out)
            }
            Query::Product(a, b) => Ok(a.eval_impl(ctx)?.product(&b.eval_impl(ctx)?)),
            Query::Join {
                on,
                residual,
                left,
                right,
            } => left
                .eval_impl(ctx)?
                .equijoin(&right.eval_impl(ctx)?, on, residual.as_ref()),
            Query::Union(a, b) => a.eval_impl(ctx)?.union(&b.eval_impl(ctx)?),
            Query::Diff(a, b) => a.eval_impl(ctx)?.difference(&b.eval_impl(ctx)?),
            Query::Intersect(a, b) => a.eval_impl(ctx)?.intersect(&b.eval_impl(ctx)?),
        }
    }

    /// Evaluates world-by-world on a finite incomplete database — the
    /// direct image `q(I) = { q(I) | I ∈ I }` of Defs. 3/7/8.
    pub fn eval_idb(&self, input: &IDatabase) -> Result<IDatabase, RelError> {
        let out_arity = self.arity(input.arity())?;
        let mut out = IDatabase::empty(out_arity);
        for w in input.iter() {
            out.insert(self.eval(w)?)?;
        }
        Ok(out)
    }

    /// The operations used by this query (for fragment checking).
    pub fn op_set(&self) -> OpSet {
        match self {
            Query::Input | Query::Second | Query::Rel(_) => OpSet::default(),
            Query::Lit(_) => OpSet {
                literal: true,
                ..OpSet::default()
            },
            Query::Project(_, q) => OpSet {
                project: true,
                ..OpSet::default()
            }
            .merge(q.op_set()),
            Query::Select(p, q) => OpSet {
                select: true,
                nonpositive_select: !p.is_positive(),
                non_coleq_select: !p.is_col_eq_conjunction(),
                ..OpSet::default()
            }
            .merge(q.op_set()),
            Query::Product(a, b) => OpSet {
                product: true,
                ..OpSet::default()
            }
            .merge(a.op_set())
            .merge(b.op_set()),
            // A join is σ(×) in disguise: its key equalities are positive
            // column-equality atoms, so only the residual can push the
            // selection outside the col-eq / positive classes.
            Query::Join {
                residual,
                left,
                right,
                ..
            } => OpSet {
                product: true,
                select: true,
                nonpositive_select: residual.as_ref().is_some_and(|p| !p.is_positive()),
                non_coleq_select: residual
                    .as_ref()
                    .is_some_and(|p| !p.is_col_eq_conjunction()),
                ..OpSet::default()
            }
            .merge(left.op_set())
            .merge(right.op_set()),
            Query::Union(a, b) => OpSet {
                union: true,
                ..OpSet::default()
            }
            .merge(a.op_set())
            .merge(b.op_set()),
            Query::Diff(a, b) => OpSet {
                difference: true,
                ..OpSet::default()
            }
            .merge(a.op_set())
            .merge(b.op_set()),
            Query::Intersect(a, b) => OpSet {
                intersection: true,
                ..OpSet::default()
            }
            .merge(a.op_set())
            .merge(b.op_set()),
        }
    }

    /// Number of operator nodes (size of the query tree).
    pub fn size(&self) -> usize {
        match self {
            Query::Input | Query::Second | Query::Rel(_) | Query::Lit(_) => 1,
            Query::Project(_, q) | Query::Select(_, q) => 1 + q.size(),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Diff(a, b)
            | Query::Intersect(a, b) => 1 + a.size() + b.size(),
            Query::Join { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Height of the query tree: 1 for leaves, 1 + the deepest child
    /// otherwise.
    ///
    /// [`Query::size`] and [`Query::op_set`] walk the tree but say
    /// nothing about its *depth*, which is what plan-rewriting passes
    /// need: a rewrite that only moves operators downward (e.g. selection
    /// pushdown) reaches a fixpoint within `depth()` passes, so
    /// `ipdb-engine` uses this as its fixpoint bound.
    pub fn depth(&self) -> usize {
        match self {
            Query::Input | Query::Second | Query::Rel(_) | Query::Lit(_) => 1,
            Query::Project(_, q) | Query::Select(_, q) => 1 + q.depth(),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Diff(a, b)
            | Query::Intersect(a, b) => 1 + a.depth().max(b.depth()),
            Query::Join { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Whether the query mentions the input relation at all (queries that
    /// don't are constant, e.g. the `I_i` world-builders of Thm 7).
    pub fn uses_input(&self) -> bool {
        match self {
            Query::Input | Query::Second | Query::Rel(_) => true,
            Query::Lit(_) => false,
            Query::Project(_, q) | Query::Select(_, q) => q.uses_input(),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Diff(a, b)
            | Query::Intersect(a, b) => a.uses_input() || b.uses_input(),
            Query::Join { left, right, .. } => left.uses_input() || right.uses_input(),
        }
    }
}

/// Evaluation context: where relation-name lookups resolve. The classic
/// one/two-relation entry points and the named-catalog one share the
/// same resolution rule (`Input` ≡ `V`, `Second` ≡ `W`), so the alias
/// claim is structural, not re-implemented per entry point.
enum RelCtx<'a> {
    /// The paper's positional contexts: `V` (+ optionally `W`).
    Pair {
        input: &'a Instance,
        second: Option<&'a Instance>,
    },
    /// A named catalog.
    Map(&'a BTreeMap<String, Instance>),
}

impl RelCtx<'_> {
    fn lookup(&self, name: &str) -> Result<&Instance, RelError> {
        let found = match self {
            RelCtx::Pair { input, .. } if name == Schema::INPUT => Some(*input),
            RelCtx::Pair { second, .. } if name == Schema::SECOND => *second,
            RelCtx::Pair { .. } => None,
            RelCtx::Map(rels) => rels.get(name),
        };
        found.ok_or_else(|| RelError::missing_relation(name))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Input => write!(f, "V"),
            Query::Second => write!(f, "W"),
            Query::Rel(name) => write!(f, "{name}"),
            Query::Lit(i) => write!(f, "{i}"),
            Query::Project(cols, q) => {
                write!(f, "π")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", c + 1)?; // 1-based like the paper
                }
                write!(f, "({q})")
            }
            Query::Select(p, q) => write!(f, "σ[{p}]({q})"),
            Query::Product(a, b) => write!(f, "({a} × {b})"),
            Query::Join {
                on,
                residual,
                left,
                right,
            } => {
                write!(f, "({left} ⋈[")?;
                for (n, (i, j)) in on.iter().enumerate() {
                    if n > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "#{}=#{}", i + 1, j + 1)?; // 1-based like the paper
                }
                if let Some(p) = residual {
                    write!(f, "; {p}")?;
                }
                write!(f, "] {right})")
            }
            Query::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Query::Diff(a, b) => write!(f, "({a} − {b})"),
            Query::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instance, Fragment};

    #[test]
    fn input_and_literal() {
        let i = instance![[1, 2]];
        assert_eq!(Query::Input.eval(&i).unwrap(), i);
        let lit = Query::singleton([9i64]);
        assert_eq!(lit.eval(&i).unwrap(), instance![[9]]);
        assert!(!lit.uses_input());
        assert!(Query::Input.uses_input());
    }

    #[test]
    fn rel_constructor_canonicalizes_reserved_names() {
        assert_eq!(Query::rel("V"), Query::Input);
        assert_eq!(Query::rel("W"), Query::Second);
        assert_eq!(Query::rel("R"), Query::Rel("R".into()));
        assert_eq!(Query::rel("R").to_string(), "R");
        assert!(Query::rel("R").uses_input());
        assert_eq!(Query::rel("R").size(), 1);
        assert_eq!(Query::rel("R").depth(), 1);
        assert_eq!(Query::rel("R").op_set(), OpSet::default());
    }

    #[test]
    fn named_relations_resolve_through_schema_and_catalog() {
        use crate::Schema;
        let schema = Schema::new([("R", 2), ("S", 1)]).unwrap();
        let q = Query::join(Query::rel("R"), Query::rel("S"), [(1, 2)], None);
        assert_eq!(q.arity_in(&schema).unwrap(), 3);
        assert_eq!(
            Query::rel("T").arity_in(&schema),
            Err(RelError::UnknownRelation { name: "T".into() })
        );
        // The classic entry points reject named relations gracefully.
        assert_eq!(
            Query::rel("R").arity(2),
            Err(RelError::UnknownRelation { name: "R".into() })
        );
        assert_eq!(
            Query::rel("R").eval(&instance![[1]]),
            Err(RelError::UnknownRelation { name: "R".into() })
        );

        let cat = BTreeMap::from([
            ("R".to_string(), instance![[1, 2], [3, 4]]),
            ("S".to_string(), instance![[2], [9]]),
        ]);
        assert_eq!(q.eval_catalog(&cat).unwrap(), instance![[1, 2, 2]]);
        // A catalog with the reserved names runs classic queries.
        let vcat = BTreeMap::from([("V".to_string(), instance![[7]])]);
        assert_eq!(Query::Input.eval_catalog(&vcat).unwrap(), instance![[7]]);
        assert_eq!(
            Query::Second.eval_catalog(&vcat),
            Err(RelError::NoSecondInput)
        );
        assert_eq!(
            Query::rel("R").eval_catalog(&vcat),
            Err(RelError::UnknownRelation { name: "R".into() })
        );
    }

    #[test]
    fn arity_checking() {
        let q = Query::union(Query::Input, Query::singleton([1i64]));
        assert!(q.arity(1).is_ok());
        assert!(q.arity(2).is_err());
        let p = Query::project(Query::Input, vec![3]);
        assert!(p.arity(2).is_err());
        let s = Query::select(Query::Input, Pred::eq_cols(0, 5));
        assert!(s.arity(2).is_err());
    }

    #[test]
    fn select_project_product() {
        let i = instance![[1, 10], [2, 20], [1, 30]];
        let q = Query::project(Query::select(Query::Input, Pred::eq_const(0, 1)), vec![1]);
        assert_eq!(q.eval(&i).unwrap(), instance![[10], [30]]);

        let self_join = Query::select(
            Query::product(Query::Input, Query::Input),
            Pred::eq_cols(1, 2),
        );
        // pairs (a,b),(c,d) joined on b=c: only (1,2)⋈(2,3) matches
        let chain = instance![[1, 2], [2, 3]];
        let joined = self_join.eval(&chain).unwrap();
        assert_eq!(joined, instance![[1, 2, 2, 3]]);
    }

    #[test]
    fn join_is_selected_product() {
        let chain = instance![[1, 2], [2, 3], [3, 4]];
        // V ⋈_{#1=#2} V — the Example 2 workhorse shape.
        let join = Query::join(Query::Input, Query::Input, [(1, 2)], None);
        let naive = Query::select(
            Query::product(Query::Input, Query::Input),
            Query::join_pred(&[(1, 2)], None),
        );
        assert_eq!(join.arity(2).unwrap(), 4);
        assert_eq!(join.eval(&chain).unwrap(), naive.eval(&chain).unwrap());
        assert_eq!(join.eval(&chain).unwrap().len(), 2);
        // With a residual filter.
        let resid = Pred::neq_const(0, 1);
        let join_r = Query::join(Query::Input, Query::Input, [(1, 2)], Some(resid.clone()));
        let naive_r = Query::select(
            Query::product(Query::Input, Query::Input),
            Query::join_pred(&[(1, 2)], Some(&resid)),
        );
        assert_eq!(join_r.eval(&chain).unwrap(), naive_r.eval(&chain).unwrap());
        assert_eq!(join_r.eval(&chain).unwrap().len(), 1);
    }

    #[test]
    fn join_validates_keys_and_residual() {
        let join = Query::join(Query::Input, Query::Input, [(0, 9)], None);
        assert_eq!(
            join.arity(2),
            Err(RelError::ColumnOutOfRange { col: 9, arity: 4 })
        );
        assert!(join.eval(&instance![[1, 2]]).is_err());
        let bad_resid = Query::join(
            Query::Input,
            Query::Input,
            [(0, 2)],
            Some(Pred::eq_cols(0, 7)),
        );
        assert!(bad_resid.arity(2).is_err());
        // Empty `on` is a plain (filtered) product at this level.
        let empty = Query::join(Query::Input, Query::Input, [], None);
        assert_eq!(empty.arity(1).unwrap(), 2);
        assert_eq!(
            empty.eval(&instance![[1]]).unwrap(),
            Query::product(Query::Input, Query::Input)
                .eval(&instance![[1]])
                .unwrap()
        );
    }

    #[test]
    fn join_structural_accessors() {
        let q = Query::join(Query::Input, Query::singleton([1i64]), [(0, 1)], None);
        assert_eq!(q.size(), 3);
        assert_eq!(q.depth(), 2);
        assert!(q.uses_input());
        assert!(!Query::join(
            Query::singleton([1i64]),
            Query::singleton([2i64]),
            [(0, 1)],
            None
        )
        .uses_input());
        let ops = q.op_set();
        assert!(ops.product && ops.select && !ops.nonpositive_select && !ops.non_coleq_select);
        assert!(Fragment::SPJU.admits(ops));
        let neg = Query::join(
            Query::Input,
            Query::Input,
            [(0, 2)],
            Some(Pred::neq_cols(0, 1)),
        );
        assert!(neg.op_set().nonpositive_select);
        assert!(!Fragment::S_PLUS_PJ.admits(neg.op_set()));
    }

    #[test]
    fn join_display_is_paper_like() {
        let q = Query::join(
            Query::Input,
            Query::Input,
            [(1, 2)],
            Some(Pred::neq_const(0, 2)),
        );
        assert_eq!(q.to_string(), "(V ⋈[#2=#3; #1≠2] V)");
        let bare = Query::join(Query::Input, Query::Input, [(0, 2), (1, 3)], None);
        assert_eq!(bare.to_string(), "(V ⋈[#1=#3,#2=#4] V)");
    }

    #[test]
    fn set_operations() {
        let i = instance![[1], [2]];
        let q = Query::diff(Query::Input, Query::singleton([1i64]));
        assert_eq!(q.eval(&i).unwrap(), instance![[2]]);
        let r = Query::intersect(Query::Input, Query::singleton([2i64]));
        assert_eq!(r.eval(&i).unwrap(), instance![[2]]);
        let u = Query::union(Query::Input, Query::singleton([3i64]));
        assert_eq!(u.eval(&i).unwrap(), instance![[1], [2], [3]]);
    }

    #[test]
    fn eval_idb_is_worldwise_image() {
        let db = IDatabase::from_instances(1, [instance![[1]], instance![[2]]]).unwrap();
        let q = Query::union(Query::Input, Query::singleton([9i64]));
        let out = q.eval_idb(&db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&instance![[1], [9]]));
        assert!(out.contains(&instance![[2], [9]]));
    }

    #[test]
    fn eval_idb_merges_collapsing_worlds() {
        let db = IDatabase::from_instances(2, [instance![[1, 2]], instance![[1, 3]]]).unwrap();
        let q = Query::project(Query::Input, vec![0]);
        assert_eq!(q.eval_idb(&db).unwrap().len(), 1);
    }

    #[test]
    fn op_set_and_fragments() {
        let q = Query::project(
            Query::select(
                Query::product(Query::Input, Query::singleton([1i64])),
                Pred::eq_cols(0, 1),
            ),
            vec![0],
        );
        let ops = q.op_set();
        assert!(ops.select && ops.project && ops.product && ops.literal);
        assert!(!ops.union && !ops.difference);
        assert!(Fragment::SPJU.admits(ops));
        assert!(Fragment::S_PLUS_PJ.admits(ops));
        assert!(!Fragment::SP.admits(ops));
    }

    #[test]
    fn size_counts_nodes() {
        let q = Query::union(Query::Input, Query::Input);
        assert_eq!(q.size(), 3);
    }

    #[test]
    fn depth_is_tree_height() {
        assert_eq!(Query::Input.depth(), 1);
        assert_eq!(Query::Second.depth(), 1);
        assert_eq!(Query::singleton([1i64]).depth(), 1);
        let q = Query::project(Query::select(Query::Input, Pred::True), vec![0]);
        assert_eq!(q.depth(), 3);
        // Binary nodes take the deeper side: size counts both, depth doesn't.
        let lop = Query::union(q.clone(), Query::Input);
        assert_eq!(lop.depth(), 4);
        assert_eq!(lop.size(), q.size() + 2);
        assert_eq!(Query::product(Query::Input, lop).depth(), 5);
    }

    #[test]
    fn display_is_paper_like() {
        let q = Query::project(Query::select(Query::Input, Pred::eq_cols(1, 2)), vec![0, 2]);
        assert_eq!(q.to_string(), "π1,3(σ[#2=#3](V))");
    }

    #[test]
    fn paper_example4_query_shape() {
        // q(V) := π123({1}×{2}×V) ∪ π123(σ_{2=3,4≠'2'}({3}×V)) ∪ π512(σ_{3≠'1',3≠4}({4}×{5}×V))
        // Just check it type-checks at input arity 3 with output arity 3.
        let part1 = Query::project(
            Query::product(
                Query::product(Query::singleton([1i64]), Query::singleton([2i64])),
                Query::Input,
            ),
            vec![0, 1, 2],
        );
        let part2 = Query::project(
            Query::select(
                Query::product(Query::singleton([3i64]), Query::Input),
                Pred::and([Pred::eq_cols(1, 2), Pred::neq_const(3, 2)]),
            ),
            vec![0, 1, 2],
        );
        let part3 = Query::project(
            Query::select(
                Query::product(
                    Query::product(Query::singleton([4i64]), Query::singleton([5i64])),
                    Query::Input,
                ),
                Pred::and([Pred::neq_const(2, 1), Pred::neq_cols(2, 3)]),
            ),
            vec![4, 0, 1],
        );
        let q = Query::union_all([part1, part2, part3]).unwrap();
        assert_eq!(q.arity(3).unwrap(), 3);
        assert!(Fragment::SPJU.admits_query(&q, 3).unwrap());
    }
}
