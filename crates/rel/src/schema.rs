//! Named relational schemas: `relation name → arity`.
//!
//! The paper works over a schema with a single relation name and notes
//! (§2, footnote) that "everything we say can be easily reformulated for
//! arbitrary relational schemas". [`Schema`] is that reformulation's
//! type-level half: a finite map from relation names to arities, against
//! which a [`Query`](crate::Query) is arity-checked
//! ([`Query::arity_in`](crate::Query::arity_in)). The traditional
//! single- and two-relation contexts are the canonical schemas
//! [`Schema::single`] (just `V`) and [`Schema::pair`] (`V` and `W`);
//! the [`Query::Input`](crate::Query::Input) and
//! [`Query::Second`](crate::Query::Second) leaves are aliases for the
//! reserved names [`Schema::INPUT`] and [`Schema::SECOND`].

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RelError;

/// A named relational schema: a finite `name → arity` map.
///
/// ```
/// use ipdb_rel::{Query, Schema};
/// let schema = Schema::new([("R", 2), ("S", 3)]).unwrap();
/// assert_eq!(schema.arity_of("R"), Some(2));
/// let q = Query::product(Query::rel("R"), Query::rel("S"));
/// assert_eq!(q.arity_in(&schema).unwrap(), 5);
/// ```
/// Ordered and hashable so schemas can key caches (the engine's plan
/// cache keys on `(canonical query text, Schema)` — the schema part is
/// what keeps the same text prepared against different schemas apart).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schema {
    rels: BTreeMap<String, usize>,
}

impl Schema {
    /// The reserved name of the paper's single input relation `V`
    /// ([`Query::Input`](crate::Query::Input) resolves to it).
    pub const INPUT: &'static str = "V";

    /// The reserved name of the second input relation `W`
    /// ([`Query::Second`](crate::Query::Second) resolves to it).
    pub const SECOND: &'static str = "W";

    /// Builds a schema from `(name, arity)` pairs; duplicate names are
    /// rejected ([`RelError::DuplicateRelation`]) rather than silently
    /// last-wins, so a mistyped arity cannot hide behind a repeat.
    pub fn new<N: Into<String>>(
        rels: impl IntoIterator<Item = (N, usize)>,
    ) -> Result<Schema, RelError> {
        let mut map = BTreeMap::new();
        for (name, arity) in rels {
            let name = name.into();
            if map.insert(name.clone(), arity).is_some() {
                return Err(RelError::DuplicateRelation { name });
            }
        }
        Ok(Schema { rels: map })
    }

    /// The paper's single-relation schema: just `V`.
    pub fn single(input_arity: usize) -> Schema {
        Schema {
            rels: BTreeMap::from([(Self::INPUT.to_string(), input_arity)]),
        }
    }

    /// The two-relation schema of the Thm 6 constructions: `V` and `W`.
    pub fn pair(input_arity: usize, second_arity: usize) -> Schema {
        Schema {
            rels: BTreeMap::from([
                (Self::INPUT.to_string(), input_arity),
                (Self::SECOND.to_string(), second_arity),
            ]),
        }
    }

    /// The arity of a relation, if declared.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.rels.get(name).copied()
    }

    /// The arity of a relation, or the error a query referencing it
    /// should report: a missing `W` is the classic
    /// [`RelError::NoSecondInput`], any other missing name is
    /// [`RelError::UnknownRelation`].
    pub fn resolve(&self, name: &str) -> Result<usize, RelError> {
        self.rels
            .get(name)
            .copied()
            .ok_or_else(|| RelError::missing_relation(name))
    }

    /// Whether the schema declares a relation of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.rels.contains_key(name)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over `(name, arity)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.rels.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// The declared relation names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, a)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}:{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new([("R", 2), ("S", 1)]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.contains("R") && !s.contains("T"));
        assert_eq!(s.arity_of("S"), Some(1));
        assert_eq!(s.arity_of("T"), None);
        assert_eq!(s.resolve("R"), Ok(2));
        assert_eq!(
            s.resolve("T"),
            Err(RelError::UnknownRelation { name: "T".into() })
        );
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["R", "S"]);
    }

    #[test]
    fn duplicates_rejected() {
        assert_eq!(
            Schema::new([("R", 2), ("R", 3)]),
            Err(RelError::DuplicateRelation { name: "R".into() })
        );
    }

    #[test]
    fn canonical_schemas() {
        let single = Schema::single(3);
        assert_eq!(single.arity_of(Schema::INPUT), Some(3));
        assert_eq!(single.resolve(Schema::SECOND), Err(RelError::NoSecondInput));
        let pair = Schema::pair(2, 4);
        assert_eq!(pair.resolve(Schema::SECOND), Ok(4));
    }

    #[test]
    fn display_lists_names_and_arities() {
        let s = Schema::new([("R", 2), ("S", 1)]).unwrap();
        assert_eq!(s.to_string(), "{R:2, S:1}");
        assert_eq!(Schema::new::<&str>([]).unwrap().to_string(), "{}");
    }
}
