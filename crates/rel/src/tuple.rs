//! Conventional tuples: rows of constants.
//!
//! A [`Tuple`] is an element of `Dⁿ` — a fixed-arity row of [`Value`]s.
//! Tuples are ordered lexicographically (inheriting the total order on
//! values) so that instances can be kept canonical.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A row of constants; an element of `Dⁿ` for `n = self.arity()`.
///
/// ```
/// use ipdb_rel::{tuple, Tuple, Value};
/// let t = tuple![1, "a", true];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Value::from("a"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Builds a tuple from its component values.
    pub fn new<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// The empty (0-ary) tuple — the single element of `D⁰`, used by
    /// boolean-valued queries.
    pub const fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The component values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterates over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Component at `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Concatenation `t₁ × t₂` used by the cross product.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Projection `π_cols(t)`; `cols` may repeat and reorder components
    /// (the paper's unnamed projection is an index list, e.g. `π₅₁₂`).
    ///
    /// Returns `None` if any index is out of range.
    pub fn project(&self, cols: &[usize]) -> Option<Tuple> {
        let mut v = Vec::with_capacity(cols.len());
        for &c in cols {
            v.push(self.0.get(c)?.clone());
        }
        Some(Tuple(v))
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Builds a [`Tuple`] from a comma-separated list of values convertible
/// into [`Value`].
///
/// ```
/// use ipdb_rel::tuple;
/// let t = tuple![1, 2, "phys"];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "a", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::from(1));
        assert_eq!(t.get(2), Some(&Value::from(true)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn concat_preserves_order() {
        let t = tuple![1, 2].concat(&tuple![3]);
        assert_eq!(t, tuple![1, 2, 3]);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), Some(tuple![30, 10, 10]));
        assert_eq!(t.project(&[]), Some(Tuple::empty()));
        assert_eq!(t.project(&[3]), None);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, 'a')");
    }

    #[test]
    fn lexicographic_order() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
    }

    #[test]
    fn from_iterators() {
        let t: Tuple = (1..=3).map(|i| i as i64).collect();
        assert_eq!(t, tuple![1, 2, 3]);
        let vals = t.clone().into_values();
        assert_eq!(Tuple::from(vals), t);
    }
}
