//! Error types shared across the relational substrate.

use std::fmt;

/// Errors raised by relational operations: arity mismatches, out-of-range
/// column references, and malformed queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Two relations that must share an arity (union, difference,
    /// intersection, instance insertion) do not.
    ArityMismatch {
        /// Arity expected by the context.
        expected: usize,
        /// Arity actually provided.
        got: usize,
    },
    /// A predicate or projection referenced column `col` of a relation
    /// with only `arity` columns.
    ColumnOutOfRange {
        /// The offending column index (0-based).
        col: usize,
        /// The arity of the relation being referenced.
        arity: usize,
    },
    /// A constant relation literal contained tuples of differing arities.
    RaggedLiteral,
    /// The query references the second input relation (`W`), but was
    /// evaluated in a single-relation context.
    NoSecondInput,
    /// The query references a named relation absent from the schema or
    /// catalog it was checked/evaluated against.
    UnknownRelation {
        /// The relation name the query used.
        name: String,
    },
    /// A schema declared the same relation name twice.
    DuplicateRelation {
        /// The repeated relation name.
        name: String,
    },
}

impl RelError {
    /// The error a failed relation-name lookup reports — the one rule
    /// every lookup context (schema resolution, instance evaluation,
    /// executor catalogs) shares: a missing `W` is the classic
    /// [`RelError::NoSecondInput`], any other missing name is
    /// [`RelError::UnknownRelation`].
    pub fn missing_relation(name: &str) -> RelError {
        if name == crate::schema::Schema::SECOND {
            RelError::NoSecondInput
        } else {
            RelError::UnknownRelation {
                name: name.to_string(),
            }
        }
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            RelError::ColumnOutOfRange { col, arity } => {
                write!(f, "column {col} out of range for arity {arity}")
            }
            RelError::RaggedLiteral => write!(f, "relation literal has tuples of differing arity"),
            RelError::NoSecondInput => write!(
                f,
                "query uses the second input relation W outside a two-relation context"
            ),
            RelError::UnknownRelation { name } => {
                write!(f, "unknown relation '{name}' (not in the schema/catalog)")
            }
            RelError::DuplicateRelation { name } => {
                write!(f, "relation '{name}' declared twice in the schema")
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RelError::ArityMismatch {
                expected: 2,
                got: 3
            }
            .to_string(),
            "arity mismatch: expected 2, got 3"
        );
        assert_eq!(
            RelError::ColumnOutOfRange { col: 5, arity: 2 }.to_string(),
            "column 5 out of range for arity 2"
        );
        assert!(RelError::RaggedLiteral.to_string().contains("literal"));
        assert!(RelError::UnknownRelation { name: "R".into() }
            .to_string()
            .contains("'R'"));
        assert!(RelError::DuplicateRelation { name: "S".into() }
            .to_string()
            .contains("twice"));
    }
}
