//! Relational-algebra fragments.
//!
//! The paper's algebraic-completion results (Thms 5–6) are statements
//! about *fragments* of RA: SPJU, SP, PJ, PU, S⁺P, S⁺PJ, and full RA.
//! [`Fragment`] names a fragment by the operations it admits; a query is
//! *in* the fragment when it uses only those operations ([`OpSet`]
//! records what a query actually used). Every completion construction in
//! `ipdb-core` asserts membership in the fragment its theorem claims.

use std::fmt;

/// How much selection a fragment admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SelectKind {
    /// No selection at all.
    None,
    /// Only conjunctions of column–column equalities — the selections
    /// implicit in natural join, admitted by the `PJ` fragment (the
    /// paper's `J` is the unnamed-algebra equijoin `π(σ_{c=c}(×))`).
    ColEqOnly,
    /// Only positive selections (`S⁺`): no negation, no `≠` (Thm 6).
    PositiveOnly,
    /// Arbitrary selections.
    Any,
}

/// The set of operations a query used (computed by
/// [`crate::Query::op_set`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpSet {
    /// Some selection appears.
    pub select: bool,
    /// Some selection with negation or `≠` appears.
    pub nonpositive_select: bool,
    /// Some selection beyond a conjunction of column equalities appears.
    pub non_coleq_select: bool,
    /// Projection appears.
    pub project: bool,
    /// Cross product (the unnamed algebra's join) appears.
    pub product: bool,
    /// Union appears.
    pub union: bool,
    /// Difference appears.
    pub difference: bool,
    /// Intersection appears.
    pub intersection: bool,
    /// A constant relation literal appears.
    pub literal: bool,
}

impl OpSet {
    /// Component-wise union.
    pub fn merge(self, other: OpSet) -> OpSet {
        OpSet {
            select: self.select || other.select,
            nonpositive_select: self.nonpositive_select || other.nonpositive_select,
            non_coleq_select: self.non_coleq_select || other.non_coleq_select,
            project: self.project || other.project,
            product: self.product || other.product,
            union: self.union || other.union,
            difference: self.difference || other.difference,
            intersection: self.intersection || other.intersection,
            literal: self.literal || other.literal,
        }
    }
}

/// A named fragment of the relational algebra.
///
/// Constant relation literals (`{c}` singletons) are permitted in every
/// fragment: the paper's constructions use them freely (e.g. Thm 1's
/// `C_i := {c}`, Thm 6's appended-column tables), and \[29\]'s fragments are
/// about *operations*, not constants.
///
/// ```
/// use ipdb_rel::{Fragment, Query, Pred};
/// // A column-equality selection is an equijoin: PJ admits it …
/// let j = Query::project(Query::select(Query::Input, Pred::eq_cols(0, 1)), vec![0]);
/// assert!(Fragment::SP.admits_query(&j, 2).unwrap());
/// assert!(Fragment::PJ.admits_query(&j, 2).unwrap());
/// // … but a constant selection needs real S.
/// let s = Query::select(Query::Input, Pred::eq_const(0, 1));
/// assert!(Fragment::SP.admits_query(&s, 2).unwrap());
/// assert!(!Fragment::PJ.admits_query(&s, 2).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Human-readable name ("SPJU", "S⁺PJ", …).
    pub name: &'static str,
    /// Selection allowance.
    pub select: SelectKind,
    /// Projection allowed.
    pub project: bool,
    /// Cross product allowed.
    pub product: bool,
    /// Union allowed.
    pub union: bool,
    /// Difference allowed.
    pub difference: bool,
    /// Intersection allowed.
    pub intersection: bool,
}

impl Fragment {
    /// Full relational algebra.
    pub const RA: Fragment = Fragment {
        name: "RA",
        select: SelectKind::Any,
        project: true,
        product: true,
        union: true,
        difference: true,
        intersection: true,
    };

    /// Select–project–join–union (Thm 1/5.1: "we only need the SPJU
    /// fragment").
    pub const SPJU: Fragment = Fragment {
        name: "SPJU",
        select: SelectKind::Any,
        project: true,
        product: true,
        union: true,
        difference: false,
        intersection: false,
    };

    /// Select–project (Thm 5.2: v-tables + SP are RA-complete).
    pub const SP: Fragment = Fragment {
        name: "SP",
        select: SelectKind::Any,
        project: true,
        product: false,
        union: false,
        difference: false,
        intersection: false,
    };

    /// Project–join (Thm 6.1/6.2/6.3). `J` is the natural join, i.e.
    /// product plus column-equality selection under a projection.
    pub const PJ: Fragment = Fragment {
        name: "PJ",
        select: SelectKind::ColEqOnly,
        project: true,
        product: true,
        union: false,
        difference: false,
        intersection: false,
    };

    /// Project–union (Thm 6.3).
    pub const PU: Fragment = Fragment {
        name: "PU",
        select: SelectKind::None,
        project: true,
        product: false,
        union: true,
        difference: false,
        intersection: false,
    };

    /// Positive-select–project (Thm 6.2).
    pub const S_PLUS_P: Fragment = Fragment {
        name: "S⁺P",
        select: SelectKind::PositiveOnly,
        project: true,
        product: false,
        union: false,
        difference: false,
        intersection: false,
    };

    /// Positive-select–project–join (Thm 6.4, and the query in the proof
    /// of Thm 6.1).
    pub const S_PLUS_PJ: Fragment = Fragment {
        name: "S⁺PJ",
        select: SelectKind::PositiveOnly,
        project: true,
        product: true,
        union: false,
        difference: false,
        intersection: false,
    };

    /// Whether a computed [`OpSet`] fits this fragment.
    pub fn admits(&self, ops: OpSet) -> bool {
        let select_ok = match self.select {
            SelectKind::None => !ops.select,
            SelectKind::ColEqOnly => !ops.non_coleq_select,
            SelectKind::PositiveOnly => !ops.nonpositive_select,
            SelectKind::Any => true,
        };
        select_ok
            && (self.project || !ops.project)
            && (self.product || !ops.product)
            && (self.union || !ops.union)
            && (self.difference || !ops.difference)
            && (self.intersection || !ops.intersection)
    }

    /// Whether the query (validated at `input_arity`) lies in this
    /// fragment.
    pub fn admits_query(
        &self,
        q: &crate::Query,
        input_arity: usize,
    ) -> Result<bool, crate::RelError> {
        q.arity(input_arity)?; // validate first so OpSet is meaningful
        Ok(self.admits(q.op_set()))
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pred, Query};

    #[test]
    fn opset_merge() {
        let a = OpSet {
            select: true,
            ..OpSet::default()
        };
        let b = OpSet {
            union: true,
            ..OpSet::default()
        };
        let m = a.merge(b);
        assert!(m.select && m.union && !m.project);
    }

    #[test]
    fn fragments_admit_expected_ops() {
        let sel = OpSet {
            select: true,
            non_coleq_select: true,
            ..OpSet::default()
        };
        assert!(Fragment::SP.admits(sel));
        assert!(!Fragment::PJ.admits(sel));
        // Column-equality selections (the equijoin of `J`) stay inside PJ.
        let equijoin_sel = OpSet {
            select: true,
            ..OpSet::default()
        };
        assert!(Fragment::PJ.admits(equijoin_sel));
        assert!(!Fragment::PU.admits(equijoin_sel));

        let neg_sel = OpSet {
            select: true,
            nonpositive_select: true,
            ..OpSet::default()
        };
        assert!(Fragment::SP.admits(neg_sel));
        assert!(!Fragment::S_PLUS_P.admits(neg_sel));
        assert!(Fragment::S_PLUS_P.admits(sel));

        let diff = OpSet {
            difference: true,
            ..OpSet::default()
        };
        assert!(Fragment::RA.admits(diff));
        assert!(!Fragment::SPJU.admits(diff));
    }

    #[test]
    fn admits_query_end_to_end() {
        let q = Query::union(
            Query::project(Query::Input, vec![0]),
            Query::project(Query::Input, vec![1]),
        );
        assert!(Fragment::PU.admits_query(&q, 2).unwrap());
        assert!(!Fragment::PJ.admits_query(&q, 2).unwrap());
        assert!(Fragment::RA.admits_query(&q, 2).unwrap());
        // An equijoin is a PJ query; a constant selection is not.
        let equijoin = Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(1, 2),
            ),
            vec![0, 3],
        );
        assert!(Fragment::PJ.admits_query(&equijoin, 2).unwrap());
        let const_sel = Query::select(Query::Input, Pred::eq_const(0, 1));
        assert!(!Fragment::PJ.admits_query(&const_sel, 2).unwrap());
        assert!(Fragment::S_PLUS_P.admits_query(&const_sel, 2).unwrap());
    }

    #[test]
    fn positive_selection_distinction() {
        let pos = Query::select(Query::Input, Pred::eq_cols(0, 1));
        let neg = Query::select(Query::Input, Pred::neq_cols(0, 1));
        assert!(Fragment::S_PLUS_PJ.admits_query(&pos, 2).unwrap());
        assert!(!Fragment::S_PLUS_PJ.admits_query(&neg, 2).unwrap());
        assert!(Fragment::SPJU.admits_query(&neg, 2).unwrap());
    }

    #[test]
    fn display_names() {
        assert_eq!(Fragment::S_PLUS_PJ.to_string(), "S⁺PJ");
        assert_eq!(Fragment::RA.to_string(), "RA");
    }
}
