//! Elements of the domain `D` and finite domain slices.
//!
//! The paper fixes a countably infinite domain `D` of atomic values (§2).
//! [`Value`] realizes `D` as the disjoint union of booleans, 64-bit
//! integers, and strings — unbounded, totally ordered, and cheap to
//! compare. Booleans exist mainly so that *boolean c-tables* (§3) and
//! *boolean pc-tables* (§8) can use the same machinery as every other
//! table: a boolean variable is simply a variable with domain
//! `{false, true}`.
//!
//! [`Domain`] is a finite, ordered, duplicate-free set of values. It plays
//! two roles: the `dom(x)` attached to variables of finite-domain tables
//! (Def. 6), and the *domain slices* over which we enumerate the worlds of
//! infinite-domain tables (see `ipdb-tables::worlds`).

use std::borrow::Cow;
use std::fmt;

/// An atomic value of the domain `D`.
///
/// The order is total: all booleans sort before all integers, which sort
/// before all strings. This gives instances and incomplete databases a
/// canonical form so that structural equality coincides with semantic
/// equality.
///
/// ```
/// use ipdb_rel::Value;
/// let v = Value::from(42);
/// assert!(Value::from(false) < v);
/// assert!(v < Value::from("a"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean constant; used chiefly as the two-valued domain of
    /// boolean (p)c-table variables.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A string constant (interned per value; cheap to clone relative to
    /// its size, and kept boxed so `Value` stays two words + discriminant).
    Str(Box<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Convenience constructor for boolean values.
    pub const fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short tag naming the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.into())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<Cow<'_, str>> for Value {
    fn from(s: Cow<'_, str>) -> Self {
        Value::Str(s.into())
    }
}

/// A finite, ordered, duplicate-free set of [`Value`]s.
///
/// Used as the `dom(x)` of finite-domain table variables (paper Def. 6)
/// and as the finite slices of `D` over which infinite-domain tables are
/// enumerated.
///
/// ```
/// use ipdb_rel::{Domain, Value};
/// let d = Domain::ints(1..=3);
/// assert_eq!(d.len(), 3);
/// assert!(d.contains(&Value::from(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// Builds a domain from any value iterator; duplicates are removed and
    /// the result is sorted into canonical order.
    pub fn new<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut values: Vec<Value> = values.into_iter().map(Into::into).collect();
        values.sort_unstable();
        values.dedup();
        Domain { values }
    }

    /// The empty domain. A variable with an empty domain makes every
    /// world-enumeration empty; constructors in `ipdb-tables` reject it.
    pub const fn empty() -> Self {
        Domain { values: Vec::new() }
    }

    /// The two-valued boolean domain `{false, true}` of boolean c-table
    /// variables.
    pub fn bools() -> Self {
        Domain::new([false, true])
    }

    /// An integer range domain.
    pub fn ints<I: IntoIterator<Item = i64>>(range: I) -> Self {
        Domain::new(range.into_iter().map(Value::Int))
    }

    /// Number of values in the domain.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test (binary search; the vector is sorted).
    pub fn contains(&self, v: &Value) -> bool {
        self.values.binary_search(v).is_ok()
    }

    /// The values in ascending order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }

    /// Union of two domains.
    pub fn union(&self, other: &Domain) -> Domain {
        Domain::new(self.values.iter().chain(other.values.iter()).cloned())
    }

    /// Inserts a value, keeping canonical order.
    pub fn insert(&mut self, v: impl Into<Value>) {
        let v = v.into();
        if let Err(pos) = self.values.binary_search(&v) {
            self.values.insert(pos, v);
        }
    }

    /// Returns `k` integer values that do **not** occur in this domain.
    ///
    /// The paper's infinite `D` guarantees an endless supply of "fresh"
    /// constants; this is the finite-slice counterpart, used when deciding
    /// possible/certain membership for infinite-domain c-tables (active
    /// domain + `k` fresh constants suffices because conditions only test
    /// (in)equality).
    pub fn fresh_ints(&self, k: usize) -> Vec<Value> {
        let max = self
            .values
            .iter()
            .filter_map(Value::as_int)
            .max()
            .unwrap_or(0);
        (1..=k as i64).map(|i| Value::Int(max + i)).collect()
    }

    /// This domain extended with `k` fresh integer constants.
    pub fn with_fresh_ints(&self, k: usize) -> Domain {
        let mut d = self.clone();
        for v in self.fresh_ints(k) {
            d.insert(v);
        }
        d
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl<V: Into<Value>> FromIterator<V> for Domain {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Domain::new(iter)
    }
}

impl IntoIterator for Domain {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a Domain {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_order_is_total_and_stratified() {
        let b = Value::from(true);
        let i = Value::from(-5);
        let s = Value::from("a");
        assert!(b < i && i < s);
        assert!(Value::from(false) < Value::from(true));
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("a") < Value::from("b"));
    }

    #[test]
    fn value_display_forms() {
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(Value::from("x y").to_string(), "'x y'");
        assert_eq!(Value::from(true).to_string(), "true");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(7).as_bool(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(true).kind(), "bool");
        assert_eq!(Value::from(1).kind(), "int");
        assert_eq!(Value::from("").kind(), "str");
    }

    #[test]
    fn domain_dedups_and_sorts() {
        let d = Domain::new([3, 1, 2, 3, 1]);
        assert_eq!(d.len(), 3);
        assert_eq!(
            d.values(),
            &[Value::from(1), Value::from(2), Value::from(3)]
        );
    }

    #[test]
    fn domain_membership_and_insert() {
        let mut d = Domain::ints(1..=3);
        assert!(d.contains(&Value::from(2)));
        assert!(!d.contains(&Value::from(9)));
        d.insert(9);
        d.insert(9);
        assert!(d.contains(&Value::from(9)));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn domain_union() {
        let a = Domain::ints(1..=2);
        let b = Domain::ints(2..=3);
        assert_eq!(a.union(&b), Domain::ints(1..=3));
    }

    #[test]
    fn fresh_ints_avoid_existing_values() {
        let d = Domain::new([Value::from(10), Value::from("a")]);
        let fresh = d.fresh_ints(3);
        assert_eq!(fresh.len(), 3);
        for v in &fresh {
            assert!(!d.contains(v));
        }
        let ext = d.with_fresh_ints(2);
        assert_eq!(ext.len(), d.len() + 2);
    }

    #[test]
    fn empty_domain() {
        let d = Domain::empty();
        assert!(d.is_empty());
        assert_eq!(d.fresh_ints(1), vec![Value::from(1)]);
    }

    #[test]
    fn domain_display() {
        assert_eq!(Domain::ints(1..=2).to_string(), "{1, 2}");
        assert_eq!(Domain::empty().to_string(), "{}");
    }

    #[test]
    fn bools_domain() {
        let d = Domain::bools();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&Value::from(false)) && d.contains(&Value::from(true)));
    }
}
