//! Finite incomplete databases: sets of possible worlds.
//!
//! Definition 1 of the paper: an incomplete database (*i-database*) is a
//! set of conventional instances `I ⊆ N`. Because the paper's domain `D`
//! is infinite, i-databases can be infinite; every *executable* artifact
//! in the paper, however, manipulates finite ones (finite-domain tables,
//! all of §3's finite systems, Thm 3, Thms 5–8). [`IDatabase`] is that
//! finite object. Infinite i-databases are handled symbolically by
//! `ipdb-tables` (c-tables) and compared on finite domain slices.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::RelError;
use crate::instance::Instance;
use crate::tuple::Tuple;
use crate::value::Domain;

/// A finite set of possible worlds, all of the same arity.
///
/// ```
/// use ipdb_rel::{instance, IDatabase};
/// let db = IDatabase::from_instances(2, [instance![[1, 2]], instance![[2, 1]]]).unwrap();
/// assert_eq!(db.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IDatabase {
    arity: usize,
    instances: BTreeSet<Instance>,
}

impl IDatabase {
    /// The empty i-database (no possible worlds at all) of a given arity.
    ///
    /// Note this is *not* "zero information" — an i-database with no
    /// worlds is unsatisfiable. The zero-information database is
    /// [`IDatabase::all_instances_over`] in the finite-slice setting.
    pub fn empty(arity: usize) -> Self {
        IDatabase {
            arity,
            instances: BTreeSet::new(),
        }
    }

    /// A complete database: exactly one possible world.
    pub fn single(world: Instance) -> Self {
        let arity = world.arity();
        let mut instances = BTreeSet::new();
        instances.insert(world);
        IDatabase { arity, instances }
    }

    /// Builds an i-database from worlds, checking arities agree.
    pub fn from_instances<I>(arity: usize, worlds: I) -> Result<Self, RelError>
    where
        I: IntoIterator<Item = Instance>,
    {
        let mut db = IDatabase::empty(arity);
        for w in worlds {
            db.insert(w)?;
        }
        Ok(db)
    }

    /// Adds a possible world. Returns whether it was new.
    pub fn insert(&mut self, world: Instance) -> Result<bool, RelError> {
        if world.arity() != self.arity {
            return Err(RelError::ArityMismatch {
                expected: self.arity,
                got: world.arity(),
            });
        }
        Ok(self.instances.insert(world))
    }

    /// Arity shared by all worlds.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of possible worlds.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether there are no possible worlds.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Membership test for a world.
    pub fn contains(&self, world: &Instance) -> bool {
        self.instances.contains(world)
    }

    /// Iterates over the worlds in canonical order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, Instance> {
        self.instances.iter()
    }

    /// The worlds as a set.
    pub fn instances(&self) -> &BTreeSet<Instance> {
        &self.instances
    }

    /// Tuples present in *every* world — the certain answers `⋂ I`.
    ///
    /// Returns the empty instance when there are no worlds.
    pub fn certain_tuples(&self) -> Instance {
        let mut iter = self.instances.iter();
        let Some(first) = iter.next() else {
            return Instance::empty(self.arity);
        };
        let mut acc = first.clone();
        for w in iter {
            acc = acc.intersect(w).expect("worlds share arity");
        }
        acc
    }

    /// Tuples present in *some* world — the possible answers `⋃ I`.
    pub fn possible_tuples(&self) -> Instance {
        let mut acc = Instance::empty(self.arity);
        for w in &self.instances {
            acc = acc.union(w).expect("worlds share arity");
        }
        acc
    }

    /// Whether tuple `t` occurs in every world.
    pub fn is_certain(&self, t: &Tuple) -> bool {
        !self.instances.is_empty() && self.instances.iter().all(|w| w.contains(t))
    }

    /// Whether tuple `t` occurs in at least one world.
    pub fn is_possible(&self, t: &Tuple) -> bool {
        self.instances.iter().any(|w| w.contains(t))
    }

    /// Union of all worlds' active domains.
    pub fn active_domain(&self) -> Domain {
        let mut d = Domain::empty();
        for w in &self.instances {
            d = d.union(&w.active_domain());
        }
        d
    }

    /// The semantic `Z_k` of the paper restricted to a finite domain
    /// slice: all one-tuple relations `{t}` with `t ∈ dom^k` (§3,
    /// "Zk consists of all the one-tuple relations of arity k").
    pub fn z_k_over(dom: &Domain, k: usize) -> IDatabase {
        let mut db = IDatabase::empty(k);
        for t in Instance::full_relation(dom, k).iter() {
            db.instances.insert(Instance::singleton(t.clone()));
        }
        db
    }

    /// The finite slice of the zero-information database `N`: every
    /// instance over `dom` of the given arity with at most `max_card`
    /// tuples.
    ///
    /// The count is `Σ_{i≤max_card} C(|dom|^arity, i)`; callers keep the
    /// parameters tiny. Used to exercise Prop. 4 (`q(N) = Z_n`).
    pub fn all_instances_over(dom: &Domain, arity: usize, max_card: usize) -> IDatabase {
        let all_tuples: Vec<Tuple> = Instance::full_relation(dom, arity)
            .iter()
            .cloned()
            .collect();
        let mut db = IDatabase::empty(arity);
        // Enumerate subsets of size ≤ max_card via a stack of (start, chosen).
        let mut chosen: Vec<usize> = Vec::new();
        fn rec(
            all: &[Tuple],
            start: usize,
            chosen: &mut Vec<usize>,
            max_card: usize,
            arity: usize,
            out: &mut BTreeSet<Instance>,
        ) {
            let inst = Instance::from_tuples(arity, chosen.iter().map(|&i| all[i].clone()))
                .expect("tuples share arity");
            out.insert(inst);
            if chosen.len() == max_card {
                return;
            }
            for i in start..all.len() {
                chosen.push(i);
                rec(all, i + 1, chosen, max_card, arity, out);
                chosen.pop();
            }
        }
        rec(
            &all_tuples,
            0,
            &mut chosen,
            max_card,
            arity,
            &mut db.instances,
        );
        db
    }

    /// Applies `f` to every world, collecting the images (the direct-image
    /// construction `q(I) = { q(I) | I ∈ I }` used by Def. 3/7/8).
    pub fn map_worlds<F>(&self, mut f: F) -> Result<IDatabase, RelError>
    where
        F: FnMut(&Instance) -> Result<Instance, RelError>,
    {
        let mut worlds: Vec<Instance> = Vec::with_capacity(self.instances.len());
        for w in &self.instances {
            worlds.push(f(w)?);
        }
        let arity = worlds.first().map_or(self.arity, Instance::arity);
        IDatabase::from_instances(arity, worlds)
    }
}

impl fmt::Display for IDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ // {} worlds", self.instances.len())?;
        for w in &self.instances {
            writeln!(f, "  {w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instance, tuple};

    #[test]
    fn insert_checks_arity() {
        let mut db = IDatabase::empty(2);
        assert!(db.insert(instance![[1, 2]]).unwrap());
        assert!(!db.insert(instance![[1, 2]]).unwrap());
        assert!(db.insert(instance![[1]]).is_err());
    }

    #[test]
    fn certain_and_possible() {
        let db = IDatabase::from_instances(1, [instance![[1], [2]], instance![[1], [3]]]).unwrap();
        assert_eq!(db.certain_tuples(), instance![[1]]);
        assert_eq!(db.possible_tuples(), instance![[1], [2], [3]]);
        assert!(db.is_certain(&tuple![1]));
        assert!(!db.is_certain(&tuple![2]));
        assert!(db.is_possible(&tuple![3]));
        assert!(!db.is_possible(&tuple![4]));
    }

    #[test]
    fn certain_of_empty_db() {
        let db = IDatabase::empty(1);
        assert!(db.certain_tuples().is_empty());
        assert!(!db.is_certain(&tuple![1]));
    }

    #[test]
    fn z_k_over_counts() {
        let d = Domain::ints(1..=3);
        let z2 = IDatabase::z_k_over(&d, 2);
        assert_eq!(z2.len(), 9); // 3^2 one-tuple relations
        for w in z2.iter() {
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn all_instances_over_counts() {
        let d = Domain::ints(1..=2);
        // 2^1 = 2 tuples of arity 1; instances of card ≤ 2: {} {1} {2} {1,2} = 4.
        let n = IDatabase::all_instances_over(&d, 1, 2);
        assert_eq!(n.len(), 4);
        // Cardinality cap respected.
        let n1 = IDatabase::all_instances_over(&d, 1, 1);
        assert_eq!(n1.len(), 3);
    }

    #[test]
    fn map_worlds_projects() {
        let db = IDatabase::from_instances(2, [instance![[1, 2]], instance![[3, 4]]]).unwrap();
        let projected = db.map_worlds(|w| w.project(&[0])).unwrap();
        assert_eq!(projected.arity(), 1);
        assert_eq!(projected.len(), 2);
    }

    #[test]
    fn map_worlds_can_merge_distinct_worlds() {
        let db = IDatabase::from_instances(2, [instance![[1, 2]], instance![[1, 3]]]).unwrap();
        let projected = db.map_worlds(|w| w.project(&[0])).unwrap();
        assert_eq!(projected.len(), 1); // both worlds project to {(1)}
    }

    #[test]
    fn active_domain_unions_worlds() {
        let db = IDatabase::from_instances(1, [instance![[1]], instance![[7]]]).unwrap();
        assert_eq!(db.active_domain(), Domain::new([1i64, 7]));
    }

    #[test]
    fn display_lists_worlds() {
        let db = IDatabase::single(instance![[1]]);
        let s = db.to_string();
        assert!(s.contains("1 worlds") && s.contains("(1)"));
    }
}
