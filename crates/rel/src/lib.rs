//! # `ipdb-rel` — the conventional relational substrate
//!
//! Green & Tannen (EDBT 2006, §2) formalize everything over "relational
//! databases over a fixed countably infinite domain `D`", using the
//! *unnamed* form of the relational algebra and a schema consisting of a
//! single relation name of arity `n`. This crate provides exactly that
//! substrate:
//!
//! * [`Value`] — elements of the domain `D` (booleans, integers, strings);
//!   the domain is unbounded, matching the paper's countably infinite `D`.
//! * [`Tuple`] and [`Instance`] — conventional finite `n`-ary relations,
//!   i.e. the elements of `N = { I | I ⊆ Dⁿ, I finite }`.
//! * [`IDatabase`] — a *finite* incomplete database (Def. 1 restricted to
//!   finitely many possible worlds, which is what every executable check
//!   in the paper manipulates: finite-domain tables, Thm 3, Thms 5–8, …).
//! * [`Pred`] and [`Query`] — selection predicates and the unnamed
//!   relational algebra (`π`, `σ`, `×`, `∪`, `−`, `∩`) with constant
//!   relation literals (the `{c}` singletons used throughout the paper's
//!   constructions), an evaluator, and *fragment classification* so that
//!   completion theorems can verify their queries stay inside the claimed
//!   fragment (SPJU, SP, PJ, PU, S⁺PJ, …).
//! * [`Schema`] — named relational schemas (`name → arity`), the §2
//!   footnote's "arbitrary relational schemas": [`Query::Rel`] leaves
//!   resolve against a schema ([`Query::arity_in`]) and evaluate against
//!   a name-keyed catalog of instances ([`Query::eval_catalog`]), with
//!   `Input`/`Second` as canonical aliases for the reserved names
//!   `V`/`W`.
//! * [`ColumnarInstance`] and [`JoinIndex`] ([`columnar`]) — a
//!   column-major execution representation with lossless row round-trip
//!   and vectorized kernels (selection masks, projection, product, hash
//!   equijoin). The kernels are *chunk-consistent* — evaluating a row
//!   range in pieces gives the same rows as evaluating it whole — which
//!   is what lets `ipdb-engine` parallelize them morsel-wise without
//!   changing any answer.
//!
//! The incomplete/probabilistic layers ([`ipdb-tables`], [`ipdb-prob`])
//! build on these types; nothing in this crate knows about variables or
//! probabilities.
//!
//! [`ipdb-tables`]: https://docs.rs/ipdb-tables
//! [`ipdb-prob`]: https://docs.rs/ipdb-prob

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod error;
pub mod fragment;
pub mod idb;
pub mod instance;
pub mod pred;
pub mod query;
pub mod schema;
pub mod tuple;
pub mod value;

#[cfg(feature = "strategies")]
pub mod strategies;

pub use columnar::{ColumnarInstance, JoinIndex};
pub use error::RelError;
pub use fragment::{Fragment, OpSet, SelectKind};
pub use idb::IDatabase;
pub use instance::Instance;
pub use pred::{normalize_join_keys, CmpOp, Operand, Pred};
pub use query::Query;
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::{Domain, Value};
