//! Selection predicates.
//!
//! The paper's selections (`σ_c`) use boolean combinations of equalities
//! and inequalities between columns and constants — e.g. Example 4's
//! `σ_{2=3, 4≠'2'}` and the proof of Prop. 4's `σ_{1≠n+1 ∨ … ∨ n≠2n}`.
//! [`Pred`] is that language. Positivity (no negation, no `≠`) is tracked
//! because Theorem 6 distinguishes the `S⁺` fragment.

use std::fmt;

use crate::error::RelError;
use crate::value::Value;

/// One side of a comparison: a column of the input tuple or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// 0-based column index.
    Col(usize),
    /// A constant value.
    Const(Value),
}

impl Operand {
    /// Constant operand helper.
    pub fn val(v: impl Into<Value>) -> Self {
        Operand::Const(v.into())
    }

    fn eval<'a>(&'a self, t: &'a [Value]) -> Result<&'a Value, RelError> {
        match self {
            Operand::Col(c) => t.get(*c).ok_or(RelError::ColumnOutOfRange {
                col: *c,
                arity: t.len(),
            }),
            Operand::Const(v) => Ok(v),
        }
    }

    fn max_col(&self) -> Option<usize> {
        match self {
            Operand::Col(c) => Some(*c),
            Operand::Const(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // 1-based in display to match the paper's π/σ subscripts.
            Operand::Col(c) => write!(f, "#{}", c + 1),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operator. The paper's condition language uses only equality
/// and its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "="),
            CmpOp::Neq => write!(f, "≠"),
        }
    }
}

/// A selection predicate: boolean combination of (in)equalities between
/// columns and constants.
///
/// ```
/// use ipdb_rel::{Pred, Value};
/// // σ_{1=2 ∧ 3≠'a'} in the paper's 1-based notation:
/// let p = Pred::and([Pred::eq_cols(0, 1), Pred::neq_const(2, "a")]);
/// assert!(p.eval(&[Value::from(5), Value::from(5), Value::from("b")]).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pred {
    /// Always true (the trivial selection).
    True,
    /// Always false.
    False,
    /// `lhs op rhs`.
    Cmp(CmpOp, Operand, Operand),
    /// Conjunction; empty conjunction is `True`.
    And(Vec<Pred>),
    /// Disjunction; empty disjunction is `False`.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `#i = #j` (0-based columns).
    pub fn eq_cols(i: usize, j: usize) -> Pred {
        Pred::Cmp(CmpOp::Eq, Operand::Col(i), Operand::Col(j))
    }

    /// `#i ≠ #j`.
    pub fn neq_cols(i: usize, j: usize) -> Pred {
        Pred::Cmp(CmpOp::Neq, Operand::Col(i), Operand::Col(j))
    }

    /// `#i = v`.
    pub fn eq_const(i: usize, v: impl Into<Value>) -> Pred {
        Pred::Cmp(CmpOp::Eq, Operand::Col(i), Operand::Const(v.into()))
    }

    /// `#i ≠ v`.
    pub fn neq_const(i: usize, v: impl Into<Value>) -> Pred {
        Pred::Cmp(CmpOp::Neq, Operand::Col(i), Operand::Const(v.into()))
    }

    /// n-ary conjunction.
    pub fn and(preds: impl IntoIterator<Item = Pred>) -> Pred {
        Pred::And(preds.into_iter().collect())
    }

    /// n-ary disjunction.
    pub fn or(preds: impl IntoIterator<Item = Pred>) -> Pred {
        Pred::Or(preds.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Pred) -> Pred {
        Pred::Not(Box::new(p))
    }

    /// Binary conjunction with on-the-fly simplification: `True` is the
    /// unit, `False` absorbs, and [`Pred::And`]s are flattened *deeply*
    /// (nested `And`s at any depth of the conjunction spine unfold,
    /// preserving left-to-right conjunct order, so short-circuit
    /// evaluation order is unchanged).
    ///
    /// This is the conjunction predicate fusion needs: fusing
    /// `σ_p(σ_q(e))` into `σ_{q ∧ p}(e)` repeatedly must not pile up
    /// nested `And` wrappers. Deep flattening is what makes
    /// [`Pred::conj_all`] associative — `a.conj(b).conj(c)` and
    /// `a.conj(b.conj(c))` produce the *same* conjunct list — which in
    /// turn makes [`Pred::split_equijoin`] extraction deterministic: the
    /// order join keys are discovered in never depends on how the
    /// conjunction was assembled. (The `True`/`False` arms short-circuit
    /// *before* flattening, returning the other operand unchanged; see
    /// the caveat on [`Pred::conj_all`].)
    ///
    /// ```
    /// use ipdb_rel::Pred;
    /// let p = Pred::eq_cols(0, 1).conj(Pred::eq_const(2, 7));
    /// assert_eq!(p, Pred::and([Pred::eq_cols(0, 1), Pred::eq_const(2, 7)]));
    /// assert_eq!(Pred::True.conj(Pred::eq_cols(0, 1)), Pred::eq_cols(0, 1));
    /// assert_eq!(Pred::eq_cols(0, 1).conj(Pred::False), Pred::False);
    /// ```
    pub fn conj(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => {
                let mut out = Vec::new();
                if !Pred::flatten_into(a, &mut out) || !Pred::flatten_into(b, &mut out) {
                    return Pred::False;
                }
                match out.len() {
                    0 => Pred::True,
                    1 => out.pop().expect("length checked"),
                    _ => Pred::And(out),
                }
            }
        }
    }

    /// Appends the deep-flattened conjuncts of `p` to `out`, dropping
    /// `True` units; returns `false` iff a `False` conjunct was hit (the
    /// whole conjunction is absorbed).
    fn flatten_into(p: Pred, out: &mut Vec<Pred>) -> bool {
        match p {
            Pred::True => true,
            Pred::False => false,
            Pred::And(ps) => ps.into_iter().all(|q| Pred::flatten_into(q, out)),
            q => {
                out.push(q);
                true
            }
        }
    }

    /// Conjunction of several predicates via [`Pred::conj`] (so the
    /// result is flat and `True`/`False` fold away); `True` if empty.
    ///
    /// Associative and order-preserving *as a conjunct sequence*:
    /// whenever two non-trivial predicates actually combine, their
    /// conjunct lists deep-flatten and concatenate, so every way of
    /// assembling the same conjuncts yields the same `And` list. The one
    /// caveat is the `True` unit fast path: conjoining with `True`
    /// returns the other operand *verbatim*, so a predicate that already
    /// contains nested `And`s passes through unnormalized. Callers that
    /// need the canonical flat list regardless of input shape should read
    /// it via [`Pred::conjuncts`] (as [`Pred::split_equijoin`] does).
    pub fn conj_all(preds: impl IntoIterator<Item = Pred>) -> Pred {
        preds.into_iter().fold(Pred::True, Pred::conj)
    }

    /// The deep-flattened top-level conjunct list of this predicate:
    /// `True` yields `[]`, a non-`And` predicate yields `[self]`, and
    /// nested `And`s unfold in left-to-right order. (`False` yields
    /// `[False]` so the absorbing element is not lost.)
    pub fn conjuncts(&self) -> Vec<Pred> {
        fn walk(p: &Pred, out: &mut Vec<Pred>) {
            match p {
                Pred::True => {}
                Pred::And(ps) => ps.iter().for_each(|q| walk(q, out)),
                q => out.push(q.clone()),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Splits this predicate, viewed as a selection over the product of a
    /// left factor of arity `split` and a right factor, into **equijoin
    /// keys** and a **residual**.
    ///
    /// A top-level conjunct of the form `#i = #j` with one column in each
    /// factor (after normalizing so `i < j`: `i < split ≤ j`) becomes a
    /// key pair `(i, j)`; duplicates are dropped. Every other conjunct —
    /// constant comparisons, one-sided equalities, disjunctions,
    /// negations — is folded back into the residual with
    /// [`Pred::conj_all`].
    ///
    /// Extraction order is deterministic: pairs appear in the order their
    /// conjuncts occur in [`Pred::conjuncts`], which deep flattening
    /// makes independent of how the conjunction was built.
    ///
    /// ```
    /// use ipdb_rel::Pred;
    /// let p = Pred::and([Pred::eq_cols(0, 2), Pred::neq_const(1, 7)]);
    /// let (on, residual) = p.split_equijoin(2);
    /// assert_eq!(on, vec![(0, 2)]);
    /// assert_eq!(residual, Pred::neq_const(1, 7));
    /// ```
    pub fn split_equijoin(&self, split: usize) -> (Vec<(usize, usize)>, Pred) {
        let mut on: Vec<(usize, usize)> = Vec::new();
        let mut residual = Vec::new();
        for c in self.conjuncts() {
            if let Pred::Cmp(CmpOp::Eq, Operand::Col(i), Operand::Col(j)) = &c {
                let (lo, hi) = (*i.min(j), *i.max(j));
                if lo < split && hi >= split {
                    if !on.contains(&(lo, hi)) {
                        on.push((lo, hi));
                    }
                    continue;
                }
            }
            residual.push(c);
        }
        (on, Pred::conj_all(residual))
    }

    /// Evaluates the predicate on a tuple.
    pub fn eval(&self, t: &[Value]) -> Result<bool, RelError> {
        Ok(match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(op, l, r) => {
                let l = l.eval(t)?;
                let r = r.eval(t)?;
                match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Neq => l != r,
                }
            }
            Pred::And(ps) => {
                for p in ps {
                    if !p.eval(t)? {
                        return Ok(false);
                    }
                }
                true
            }
            Pred::Or(ps) => {
                for p in ps {
                    if p.eval(t)? {
                        return Ok(true);
                    }
                }
                false
            }
            Pred::Not(p) => !p.eval(t)?,
        })
    }

    /// Greatest column index referenced, if any.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Pred::True | Pred::False => None,
            Pred::Cmp(_, l, r) => match (l.max_col(), r.max_col()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            Pred::And(ps) | Pred::Or(ps) => ps.iter().filter_map(Pred::max_col).max(),
            Pred::Not(p) => p.max_col(),
        }
    }

    /// Least column index referenced, if any (dual of
    /// [`Pred::max_col`]; a query planner uses the pair to decide which
    /// factor of a product a predicate can move onto).
    pub fn min_col(&self) -> Option<usize> {
        fn operand(o: &Operand) -> Option<usize> {
            match o {
                Operand::Col(c) => Some(*c),
                Operand::Const(_) => None,
            }
        }
        match self {
            Pred::True | Pred::False => None,
            Pred::Cmp(_, l, r) => match (operand(l), operand(r)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            Pred::And(ps) | Pred::Or(ps) => ps.iter().filter_map(Pred::min_col).min(),
            Pred::Not(p) => p.min_col(),
        }
    }

    /// Every column index referenced by this predicate.
    ///
    /// The columnar executor uses this to decide whether a predicate
    /// touches only the *ground* columns of a c-table (see
    /// `ipdb-tables`), in which case it can be evaluated as a vectorized
    /// mask instead of being instantiated row by row.
    pub fn referenced_cols(&self) -> std::collections::BTreeSet<usize> {
        fn walk(p: &Pred, out: &mut std::collections::BTreeSet<usize>) {
            match p {
                Pred::True | Pred::False => {}
                Pred::Cmp(_, l, r) => {
                    for o in [l, r] {
                        if let Operand::Col(c) = o {
                            out.insert(*c);
                        }
                    }
                }
                Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|q| walk(q, out)),
                Pred::Not(p) => walk(p, out),
            }
        }
        let mut out = std::collections::BTreeSet::new();
        walk(self, &mut out);
        out
    }

    /// Rewrites every column reference through `f` (generalizing
    /// [`Pred::shift_cols`]/[`Pred::unshift_cols`] to an arbitrary
    /// renumbering, e.g. compacting a predicate onto a gathered subset of
    /// columns).
    pub fn map_cols(&self, f: impl Fn(usize) -> usize + Copy) -> Pred {
        let operand = |o: &Operand| match o {
            Operand::Col(c) => Operand::Col(f(*c)),
            Operand::Const(v) => Operand::Const(v.clone()),
        };
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(op, l, r) => Pred::Cmp(*op, operand(l), operand(r)),
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.map_cols(f)).collect()),
            Pred::Or(ps) => Pred::Or(ps.iter().map(|p| p.map_cols(f)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.map_cols(f))),
        }
    }

    /// Checks all column references are `< arity`.
    pub fn validate(&self, arity: usize) -> Result<(), RelError> {
        match self.max_col() {
            Some(c) if c >= arity => Err(RelError::ColumnOutOfRange { col: c, arity }),
            _ => Ok(()),
        }
    }

    /// Whether the predicate is *positive*: built from `True`, equality
    /// atoms, `∧`, `∨` only (no `¬`, no `≠`, no `False`).
    ///
    /// This is the `S⁺` selection class of Theorem 6.
    pub fn is_positive(&self) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(CmpOp::Eq, _, _) => true,
            Pred::Cmp(CmpOp::Neq, _, _) => false,
            Pred::And(ps) | Pred::Or(ps) => ps.iter().all(Pred::is_positive),
            Pred::Not(_) => false,
        }
    }

    /// Whether the predicate is a conjunction of column–column
    /// equalities (possibly `True`).
    ///
    /// These are the selections implicit in *natural join*: the `J` of
    /// the unnamed algebra is `π(σ_{cols=cols}(… × …))`, so the paper's
    /// `PJ` fragment admits exactly this selection class.
    pub fn is_col_eq_conjunction(&self) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp(CmpOp::Eq, Operand::Col(_), Operand::Col(_)) => true,
            Pred::And(ps) => ps.iter().all(Pred::is_col_eq_conjunction),
            _ => false,
        }
    }

    /// Shifts every column reference by `delta` (used when pushing a
    /// predicate across a product).
    pub fn shift_cols(&self, delta: usize) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(op, l, r) => {
                let f = |o: &Operand| match o {
                    Operand::Col(c) => Operand::Col(c + delta),
                    Operand::Const(v) => Operand::Const(v.clone()),
                };
                Pred::Cmp(*op, f(l), f(r))
            }
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.shift_cols(delta)).collect()),
            Pred::Or(ps) => Pred::Or(ps.iter().map(|p| p.shift_cols(delta)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.shift_cols(delta))),
        }
    }

    /// Re-bases every column reference *downward* by `delta` — the
    /// inverse of [`Pred::shift_cols`], used when moving a predicate
    /// onto the right factor of a product.
    ///
    /// Every referenced column must be `≥ delta` (i.e.
    /// `self.min_col() >= Some(delta)` or `None`); panics otherwise.
    pub fn unshift_cols(&self, delta: usize) -> Pred {
        let operand = |o: &Operand| match o {
            Operand::Col(c) => Operand::Col(
                c.checked_sub(delta)
                    .expect("unshift_cols: column reference below delta"),
            ),
            Operand::Const(v) => Operand::Const(v.clone()),
        };
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(op, l, r) => Pred::Cmp(*op, operand(l), operand(r)),
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.unshift_cols(delta)).collect()),
            Pred::Or(ps) => Pred::Or(ps.iter().map(|p| p.unshift_cols(delta)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.unshift_cols(delta))),
        }
    }
}

/// Hash keys `(left col, right-local col)` and unhashable equality
/// filters, as returned by [`normalize_join_keys`].
pub type JoinKeys = (Vec<(usize, usize)>, Vec<Pred>);

/// Normalizes an equijoin's key pairs against a product split
/// `split | total − split` — the one normalization every backend's join
/// executor shares, so instance and c-table hashing can never diverge.
///
/// Each `(i, j)` pair (in either order) is classified:
///
/// * **spanning** (`min < split ≤ max < total`) — becomes a hash key
///   `(left col, right-local col)`, deduplicated in first-seen order;
/// * **one-sided and distinct** — unhashable but sound: returned as an
///   equality filter predicate over the combined tuple;
/// * **self-pair** (`i == j`) — trivially true, dropped;
/// * any column `≥ total` — [`RelError::ColumnOutOfRange`].
pub fn normalize_join_keys(
    on: &[(usize, usize)],
    split: usize,
    total: usize,
) -> Result<JoinKeys, RelError> {
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut filters: Vec<Pred> = Vec::new();
    for &(i, j) in on {
        let (lo, hi) = (i.min(j), i.max(j));
        if hi >= total {
            return Err(RelError::ColumnOutOfRange {
                col: hi,
                arity: total,
            });
        }
        if lo < split && hi >= split {
            let key = (lo, hi - split);
            if !keys.contains(&key) {
                keys.push(key);
            }
        } else if lo != hi {
            filters.push(Pred::eq_cols(lo, hi));
        }
    }
    Ok((keys, filters))
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Cmp(op, l, r) => write!(f, "{l}{op}{r}"),
            Pred::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Not(p) => write!(f, "¬{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::from(v)).collect()
    }

    #[test]
    fn atoms_evaluate() {
        assert!(Pred::eq_cols(0, 1).eval(&t(&[3, 3])).unwrap());
        assert!(!Pred::eq_cols(0, 1).eval(&t(&[3, 4])).unwrap());
        assert!(Pred::neq_cols(0, 1).eval(&t(&[3, 4])).unwrap());
        assert!(Pred::eq_const(0, 3).eval(&t(&[3])).unwrap());
        assert!(Pred::neq_const(0, 9).eval(&t(&[3])).unwrap());
    }

    #[test]
    fn out_of_range_column_errors() {
        let err = Pred::eq_cols(0, 5).eval(&t(&[1])).unwrap_err();
        assert_eq!(err, RelError::ColumnOutOfRange { col: 5, arity: 1 });
    }

    #[test]
    fn boolean_connectives() {
        let p = Pred::and([Pred::eq_const(0, 1), Pred::neq_const(1, 2)]);
        assert!(p.eval(&t(&[1, 3])).unwrap());
        assert!(!p.eval(&t(&[1, 2])).unwrap());
        let q = Pred::or([Pred::eq_const(0, 9), Pred::eq_const(1, 3)]);
        assert!(q.eval(&t(&[1, 3])).unwrap());
        assert!(!Pred::not(q).eval(&t(&[1, 3])).unwrap());
        assert!(Pred::and([]).eval(&t(&[])).unwrap());
        assert!(!Pred::or([]).eval(&t(&[])).unwrap());
    }

    #[test]
    fn short_circuit_does_not_mask_errors_on_taken_path() {
        // And short-circuits on first false, so later out-of-range atoms
        // are not touched.
        let p = Pred::and([Pred::False, Pred::eq_cols(0, 99)]);
        assert!(!p.eval(&t(&[1])).unwrap());
    }

    #[test]
    fn conj_flattens_and_simplifies() {
        let a = Pred::eq_cols(0, 1);
        let b = Pred::eq_const(1, 2);
        let c = Pred::neq_cols(0, 2);
        // Unit and absorbing elements.
        assert_eq!(Pred::True.conj(a.clone()), a);
        assert_eq!(a.clone().conj(Pred::True), a);
        assert_eq!(Pred::False.conj(a.clone()), Pred::False);
        assert_eq!(a.clone().conj(Pred::False), Pred::False);
        // Flattening on both sides, order preserved.
        let ab = a.clone().conj(b.clone());
        assert_eq!(ab, Pred::And(vec![a.clone(), b.clone()]));
        assert_eq!(
            ab.clone().conj(c.clone()),
            Pred::And(vec![a.clone(), b.clone(), c.clone()])
        );
        assert_eq!(
            c.clone().conj(ab.clone()),
            Pred::And(vec![c.clone(), a.clone(), b.clone()])
        );
        assert_eq!(
            ab.clone().conj(Pred::And(vec![c.clone()])),
            Pred::And(vec![a.clone(), b.clone(), c.clone()])
        );
        // Evaluation agrees with the unfused pair.
        let t = t(&[5, 2, 9]);
        assert_eq!(
            ab.eval(&t).unwrap(),
            a.eval(&t).unwrap() && b.eval(&t).unwrap()
        );
    }

    #[test]
    fn conj_all_folds() {
        assert_eq!(Pred::conj_all([]), Pred::True);
        assert_eq!(Pred::conj_all([Pred::True, Pred::True]), Pred::True);
        let a = Pred::eq_cols(0, 1);
        assert_eq!(Pred::conj_all([Pred::True, a.clone()]), a);
        assert_eq!(
            Pred::conj_all([a.clone(), Pred::False, Pred::eq_const(0, 1)]),
            Pred::False
        );
        assert_eq!(
            Pred::conj_all([a.clone(), Pred::eq_const(0, 1)]),
            Pred::And(vec![a, Pred::eq_const(0, 1)])
        );
    }

    #[test]
    fn conj_all_is_associative_and_order_preserving() {
        let a = Pred::eq_cols(0, 2);
        let b = Pred::neq_const(1, 7);
        let c = Pred::eq_cols(1, 3);
        // Every way of assembling a ∧ b ∧ c yields the same flat list —
        // this is what makes split_equijoin extraction deterministic.
        let flat = Pred::And(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(Pred::conj_all([a.clone(), b.clone(), c.clone()]), flat);
        assert_eq!(a.clone().conj(b.clone()).conj(c.clone()), flat);
        assert_eq!(a.clone().conj(b.clone().conj(c.clone())), flat);
        assert_eq!(
            Pred::and([a.clone(), b.clone()]).conj(c.clone()),
            flat,
            "left-nested And flattens"
        );
        assert_eq!(
            a.clone().conj(Pred::and([b.clone(), c.clone()])),
            flat,
            "right-nested And flattens"
        );
        // Deep nesting flattens too (the pre-fix instability: an And
        // inside an And survived one level of conj). `True` short-circuits
        // without normalizing, so conjoin with a real predicate.
        let deep = Pred::And(vec![Pred::And(vec![a.clone()]), b.clone()]);
        assert_eq!(deep.conj(c.clone()), flat);
        assert_eq!(
            Pred::conj_all([
                Pred::And(vec![Pred::And(vec![a.clone()]), b.clone()]),
                c.clone()
            ]),
            flat
        );
    }

    #[test]
    fn conjuncts_deep_flattens_in_order() {
        let a = Pred::eq_cols(0, 1);
        let b = Pred::neq_const(1, 2);
        let c = Pred::or([Pred::eq_const(0, 1)]);
        let p = Pred::And(vec![
            Pred::And(vec![a.clone(), Pred::True]),
            b.clone(),
            Pred::And(vec![c.clone()]),
        ]);
        assert_eq!(p.conjuncts(), vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(Pred::True.conjuncts(), Vec::<Pred>::new());
        assert_eq!(Pred::False.conjuncts(), vec![Pred::False]);
        assert_eq!(a.conjuncts(), vec![Pred::eq_cols(0, 1)]);
        // Or is a leaf from the conjunction's point of view.
        assert_eq!(c.conjuncts(), vec![Pred::or([Pred::eq_const(0, 1)])]);
    }

    #[test]
    fn split_equijoin_extracts_spanning_equalities() {
        // Over a product split 2 | 2: #0,#1 left; #2,#3 right.
        let p = Pred::and([
            Pred::eq_cols(0, 2),  // spanning → key
            Pred::eq_cols(3, 1),  // spanning, reversed → normalized key (1,3)
            Pred::eq_cols(0, 1),  // left-only → residual
            Pred::neq_cols(1, 2), // inequality → residual
            Pred::eq_const(2, 9), // column-constant → residual
            Pred::eq_cols(0, 2),  // duplicate key → deduped
        ]);
        let (on, residual) = p.split_equijoin(2);
        assert_eq!(on, vec![(0, 2), (1, 3)]);
        assert_eq!(
            residual,
            Pred::and([
                Pred::eq_cols(0, 1),
                Pred::neq_cols(1, 2),
                Pred::eq_const(2, 9),
            ])
        );
        // No spanning atoms → everything is residual, keys empty.
        let (on, residual) = Pred::eq_cols(0, 1).split_equijoin(2);
        assert!(on.is_empty());
        assert_eq!(residual, Pred::eq_cols(0, 1));
        // A lone spanning atom (not wrapped in And) is extracted.
        let (on, residual) = Pred::eq_cols(1, 2).split_equijoin(2);
        assert_eq!(on, vec![(1, 2)]);
        assert_eq!(residual, Pred::True);
        // Self-equality #2=#2 never spans.
        let (on, _) = Pred::eq_cols(2, 2).split_equijoin(2);
        assert!(on.is_empty());
        // Extraction is stable under re-association of the conjunction.
        let q1 = Pred::eq_cols(0, 2).conj(Pred::eq_cols(1, 3).conj(Pred::neq_const(0, 5)));
        let q2 = Pred::eq_cols(0, 2)
            .conj(Pred::eq_cols(1, 3))
            .conj(Pred::neq_const(0, 5));
        assert_eq!(q1.split_equijoin(2), q2.split_equijoin(2));
    }

    #[test]
    fn positivity() {
        assert!(Pred::eq_cols(0, 1).is_positive());
        assert!(Pred::and([Pred::eq_const(0, 1), Pred::True]).is_positive());
        assert!(!Pred::neq_cols(0, 1).is_positive());
        assert!(!Pred::not(Pred::eq_cols(0, 1)).is_positive());
        assert!(!Pred::or([Pred::False]).is_positive());
    }

    #[test]
    fn max_col_and_validate() {
        let p = Pred::and([Pred::eq_cols(0, 3), Pred::eq_const(1, 5)]);
        assert_eq!(p.max_col(), Some(3));
        assert!(p.validate(4).is_ok());
        assert!(p.validate(3).is_err());
        assert_eq!(Pred::True.max_col(), None);
        assert!(Pred::True.validate(0).is_ok());
    }

    #[test]
    fn shift_cols() {
        let p = Pred::eq_cols(0, 1).shift_cols(2);
        assert_eq!(p, Pred::eq_cols(2, 3));
        let q = Pred::eq_const(0, 7).shift_cols(1);
        assert!(q.eval(&t(&[0, 7])).unwrap());
    }

    #[test]
    fn min_col_is_dual_of_max_col() {
        let p = Pred::and([Pred::eq_cols(2, 3), Pred::neq_const(1, 5)]);
        assert_eq!(p.min_col(), Some(1));
        assert_eq!(p.max_col(), Some(3));
        assert_eq!(Pred::True.min_col(), None);
        assert_eq!(Pred::eq_const(4, 1).min_col(), Some(4));
        assert_eq!(
            Pred::not(Pred::or([Pred::eq_cols(3, 2)])).min_col(),
            Some(2)
        );
        let consts = Pred::Cmp(CmpOp::Eq, Operand::val(1), Operand::val(2));
        assert_eq!(consts.min_col(), None);
    }

    #[test]
    fn unshift_cols_inverts_shift_cols() {
        let p = Pred::and([Pred::eq_cols(1, 3), Pred::neq_const(2, 9)]);
        assert_eq!(p.shift_cols(4).unshift_cols(4), p);
        assert_eq!(
            Pred::not(Pred::eq_cols(2, 3)).unshift_cols(2),
            Pred::not(Pred::eq_cols(0, 1))
        );
        assert_eq!(Pred::True.unshift_cols(7), Pred::True);
    }

    #[test]
    #[should_panic(expected = "below delta")]
    fn unshift_cols_rejects_underflow() {
        let _ = Pred::eq_cols(0, 5).unshift_cols(1);
    }

    #[test]
    fn referenced_cols_collects_every_column() {
        let p = Pred::and([
            Pred::eq_cols(0, 3),
            Pred::not(Pred::or([Pred::neq_const(2, 7)])),
        ]);
        assert_eq!(
            p.referenced_cols().into_iter().collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert!(Pred::True.referenced_cols().is_empty());
        let consts = Pred::Cmp(CmpOp::Eq, Operand::val(1), Operand::val(2));
        assert!(consts.referenced_cols().is_empty());
    }

    #[test]
    fn map_cols_renumbers_arbitrarily() {
        let p = Pred::and([Pred::eq_cols(2, 5), Pred::neq_const(5, 9)]);
        let q = p.map_cols(|c| if c == 2 { 0 } else { 1 });
        assert_eq!(q, Pred::and([Pred::eq_cols(0, 1), Pred::neq_const(1, 9)]));
        // shift_cols is the special case map_cols(|c| c + d).
        assert_eq!(p.map_cols(|c| c + 3), p.shift_cols(3));
        assert_eq!(
            Pred::not(Pred::eq_const(1, 4)).map_cols(|c| c * 2),
            Pred::not(Pred::eq_const(2, 4))
        );
    }

    #[test]
    fn display_matches_paper_style() {
        let p = Pred::and([Pred::eq_cols(1, 2), Pred::neq_const(3, 2)]);
        assert_eq!(p.to_string(), "(#2=#3 ∧ #4≠2)");
    }
}
