//! Column-major execution batches.
//!
//! A [`ColumnarInstance`] stores a relation as per-column `Vec<Value>`
//! plus an optional *selection vector* — the classic columnar layout
//! (MonetDB/X100 style) that the execution engine batches over, as
//! opposed to the row-at-a-time `BTreeSet<Tuple>` of [`Instance`].
//!
//! The representation is **lossless** with respect to set semantics:
//! [`ColumnarInstance::from_rows`] / [`ColumnarInstance::to_rows`] round
//! trip exactly (an `Instance` is a set, and `to_rows` collapses any
//! duplicates a kernel may have produced). In between, the kernels work
//! positionally:
//!
//! * **select** — [`ColumnarInstance::eval_mask`] evaluates a [`Pred`]
//!   as a vectorized boolean mask, one column sweep per comparison atom,
//!   instead of re-walking the predicate tree per row;
//! * **project** — column gathering plus an index-sort deduplication
//!   (projection is the one operator that can merge distinct rows);
//! * **product** — positional materialization of the cross product;
//! * **equijoin** — hash join via [`JoinIndex`], always building on the
//!   smaller side, hashing key values in place (no per-row key vectors)
//!   and re-verifying key equality on probe to handle hash collisions.
//!
//! Columns are `Arc`-shared, so selection and projection are cheap: they
//! produce a new selection vector (or column subset) over the same
//! physical data. `ipdb-engine` builds its morsel-parallel executor on
//! the range-based entry points ([`ColumnarInstance::eval_mask_range`],
//! [`JoinIndex::probe_range`]): every kernel's output is independent of
//! how the input rows were chunked, which is what makes parallel
//! execution bit-identical to serial execution under set semantics.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::RelError;
use crate::pred::{normalize_join_keys, Pred};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Instance;

/// A relation stored column-major: one `Vec<Value>` per column, with an
/// optional selection vector mapping logical rows to physical rows.
///
/// Unlike [`Instance`] this is an ordered *multiset* of rows — kernels
/// may expose duplicates (only [`ColumnarInstance::project`] dedups,
/// mirroring the row path where projection is the only merging
/// operator); [`ColumnarInstance::to_rows`] collapses them back to a
/// set.
///
/// ```
/// use ipdb_rel::{instance, ColumnarInstance, Pred};
/// let i = instance![[1, 10], [2, 20], [3, 10]];
/// let c = ColumnarInstance::from_rows(&i);
/// assert_eq!(c.to_rows(), i); // lossless round trip
/// let kept = c.select(&Pred::eq_const(1, 10)).unwrap();
/// assert_eq!(kept.to_rows(), instance![[1, 10], [3, 10]]);
/// ```
#[derive(Debug, Clone)]
pub struct ColumnarInstance {
    arity: usize,
    /// Physical row count (columns may be empty when `arity == 0`).
    phys_rows: usize,
    /// One physical column per attribute, shared across derived batches.
    cols: Vec<Arc<Vec<Value>>>,
    /// Logical row `i` lives at physical row `sel[i]`; `None` means the
    /// identity selection over all physical rows.
    sel: Option<Arc<Vec<usize>>>,
}

impl ColumnarInstance {
    /// An empty batch of the given arity.
    pub fn empty(arity: usize) -> Self {
        ColumnarInstance {
            arity,
            phys_rows: 0,
            cols: (0..arity).map(|_| Arc::new(Vec::new())).collect(),
            sel: None,
        }
    }

    /// Converts a row-major instance to columns (lossless; see
    /// [`ColumnarInstance::to_rows`]).
    pub fn from_rows(i: &Instance) -> Self {
        let arity = i.arity();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(i.len())).collect();
        for t in i.iter() {
            for (c, v) in t.values().iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        ColumnarInstance {
            arity,
            phys_rows: i.len(),
            cols: cols.into_iter().map(Arc::new).collect(),
            sel: None,
        }
    }

    /// Builds a batch directly from column vectors (used by the c-table
    /// layer to expose its ground columns to the same kernels). Every
    /// column must have exactly `rows` entries.
    pub fn from_columns(columns: Vec<Vec<Value>>, rows: usize) -> Result<Self, RelError> {
        for col in &columns {
            if col.len() != rows {
                return Err(RelError::ArityMismatch {
                    expected: rows,
                    got: col.len(),
                });
            }
        }
        Ok(ColumnarInstance {
            arity: columns.len(),
            phys_rows: rows,
            cols: columns.into_iter().map(Arc::new).collect(),
            sel: None,
        })
    }

    /// Converts back to a row-major instance; duplicate rows (possible
    /// after kernels other than `project`, which dedups itself) collapse
    /// under set semantics.
    pub fn to_rows(&self) -> Instance {
        let mut out = Instance::empty(self.arity);
        for row in 0..self.len() {
            out.insert(self.tuple_at(row))
                .expect("columnar rows share the batch arity");
        }
        out
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Logical row count (after any selection vector).
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.phys_rows,
        }
    }

    /// Whether the batch has no logical rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn phys(&self, row: usize) -> usize {
        match &self.sel {
            Some(s) => s[row],
            None => row,
        }
    }

    /// The value at (logical row, column).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.cols[col][self.phys(row)]
    }

    /// Materializes one logical row as a [`Tuple`].
    pub fn tuple_at(&self, row: usize) -> Tuple {
        let p = self.phys(row);
        Tuple::new(self.cols.iter().map(|c| c[p].clone()))
    }

    /// A batch of the given logical rows (any order, repeats allowed) —
    /// the selection-vector composition at the heart of `select`.
    pub fn gather_rows(&self, rows: &[usize]) -> Self {
        let sel: Vec<usize> = rows.iter().map(|&r| self.phys(r)).collect();
        ColumnarInstance {
            arity: self.arity,
            phys_rows: self.phys_rows,
            cols: self.cols.clone(),
            sel: Some(Arc::new(sel)),
        }
    }

    /// Vectorized predicate evaluation: one `bool` per logical row.
    ///
    /// Comparison atoms become column sweeps; `∧`/`∨`/`¬` combine masks.
    /// Column references are validated up front, so (unlike the row
    /// path's short-circuit evaluation) every atom is evaluated — which
    /// is sound precisely because validation has already ruled out the
    /// only evaluation error, an out-of-range column.
    pub fn eval_mask(&self, p: &Pred) -> Result<Vec<bool>, RelError> {
        self.eval_mask_range(p, 0, self.len())
    }

    /// [`ColumnarInstance::eval_mask`] over the logical row range
    /// `lo..hi` — the morsel-sized unit the parallel executor fans out.
    pub fn eval_mask_range(&self, p: &Pred, lo: usize, hi: usize) -> Result<Vec<bool>, RelError> {
        p.validate(self.arity)?;
        Ok(self.mask_range(p, lo, hi))
    }

    fn mask_range(&self, p: &Pred, lo: usize, hi: usize) -> Vec<bool> {
        use crate::pred::{CmpOp, Operand};
        let n = hi - lo;
        match p {
            Pred::True => vec![true; n],
            Pred::False => vec![false; n],
            Pred::Cmp(op, l, r) => {
                let eq = match (l, r) {
                    (Operand::Col(i), Operand::Col(j)) => (lo..hi)
                        .map(|row| self.value(row, *i) == self.value(row, *j))
                        .collect::<Vec<bool>>(),
                    (Operand::Col(i), Operand::Const(v)) | (Operand::Const(v), Operand::Col(i)) => {
                        (lo..hi).map(|row| self.value(row, *i) == v).collect()
                    }
                    (Operand::Const(a), Operand::Const(b)) => vec![a == b; n],
                };
                match op {
                    CmpOp::Eq => eq,
                    CmpOp::Neq => eq.into_iter().map(|b| !b).collect(),
                }
            }
            Pred::And(ps) => {
                let mut m = vec![true; n];
                for q in ps {
                    for (acc, b) in m.iter_mut().zip(self.mask_range(q, lo, hi)) {
                        *acc &= b;
                    }
                }
                m
            }
            Pred::Or(ps) => {
                let mut m = vec![false; n];
                for q in ps {
                    for (acc, b) in m.iter_mut().zip(self.mask_range(q, lo, hi)) {
                        *acc |= b;
                    }
                }
                m
            }
            Pred::Not(q) => self.mask_range(q, lo, hi).into_iter().map(|b| !b).collect(),
        }
    }

    /// `σ_p`: rows whose mask bit is set, as a new selection vector over
    /// the shared columns.
    pub fn select(&self, p: &Pred) -> Result<Self, RelError> {
        let mask = self.eval_mask(p)?;
        let keep: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(row, &m)| m.then_some(row))
            .collect();
        Ok(self.gather_rows(&keep))
    }

    /// `π_cols`: column gathering plus deduplication (projection is the
    /// one kernel that can merge distinct input rows, so it dedups here
    /// to keep intermediate batch sizes aligned with the row path).
    pub fn project(&self, cols: &[usize]) -> Result<Self, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    col: c,
                    arity: self.arity,
                });
            }
        }
        // Sort logical rows by their projected values so duplicates are
        // adjacent, then dedup — columnar's analogue of the row path's
        // set insertion.
        let mut order: Vec<usize> = (0..self.len()).collect();
        // An explicitly *total* lexicographic order over the projected
        // key — `Iterator::cmp` over `Value`'s derived total `Ord`,
        // with no per-column fallback step that could silently absorb
        // an incomparable pair and break sort transitivity.
        let key_cmp = |&a: &usize, &b: &usize| {
            cols.iter()
                .map(|&c| self.value(a, c))
                .cmp(cols.iter().map(|&c| self.value(b, c)))
        };
        order.sort_unstable_by(key_cmp);
        order.dedup_by(|a, b| key_cmp(a, b).is_eq());
        let sel: Vec<usize> = order.into_iter().map(|r| self.phys(r)).collect();
        Ok(ColumnarInstance {
            arity: cols.len(),
            phys_rows: self.phys_rows,
            cols: cols.iter().map(|&c| self.cols[c].clone()).collect(),
            sel: Some(Arc::new(sel)),
        })
    }

    /// `×`: positional cross product (left-major order), materialized.
    pub fn product(&self, other: &ColumnarInstance) -> ColumnarInstance {
        let (n, m) = (self.len(), other.len());
        let rows = n * m;
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(self.arity + other.arity);
        for c in 0..self.arity {
            let mut col = Vec::with_capacity(rows);
            for i in 0..n {
                let v = self.value(i, c);
                col.extend(std::iter::repeat_with(|| v.clone()).take(m));
            }
            cols.push(col);
        }
        for c in 0..other.arity {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..n {
                col.extend((0..m).map(|j| other.value(j, c).clone()));
            }
            cols.push(col);
        }
        ColumnarInstance {
            arity: self.arity + other.arity,
            phys_rows: rows,
            cols: cols.into_iter().map(Arc::new).collect(),
            sel: None,
        }
    }

    /// Materializes `left ++ right` rows for matched `(left row, right
    /// row)` pairs — the gather stage of the hash join.
    pub fn concat_pairs(
        left: &ColumnarInstance,
        right: &ColumnarInstance,
        pairs: &[(usize, usize)],
    ) -> ColumnarInstance {
        let arity = left.arity + right.arity;
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for c in 0..left.arity {
            cols.push(
                pairs
                    .iter()
                    .map(|&(l, _)| left.value(l, c).clone())
                    .collect(),
            );
        }
        for c in 0..right.arity {
            cols.push(
                pairs
                    .iter()
                    .map(|&(_, r)| right.value(r, c).clone())
                    .collect(),
            );
        }
        ColumnarInstance {
            arity,
            phys_rows: pairs.len(),
            cols: cols.into_iter().map(Arc::new).collect(),
            sel: None,
        }
    }

    /// Vertically concatenates batches of arity `arity` into one batch,
    /// preserving row order across batch boundaries. Column storage is
    /// *moved* whenever a batch holds the sole reference to its columns
    /// and no selection vector (the common case for freshly built
    /// kernel outputs) — the merge step of the morsel executor's
    /// parallel gather, where per-morsel batches stack without
    /// re-cloning their values.
    pub fn vstack(
        arity: usize,
        batches: impl IntoIterator<Item = ColumnarInstance>,
    ) -> Result<ColumnarInstance, RelError> {
        let batches: Vec<ColumnarInstance> = batches.into_iter().collect();
        for b in &batches {
            if b.arity != arity {
                return Err(RelError::ArityMismatch {
                    expected: arity,
                    got: b.arity,
                });
            }
        }
        let total: usize = batches.iter().map(ColumnarInstance::len).sum();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(total)).collect();
        for b in batches {
            if b.sel.is_none() {
                for (c, col) in b.cols.into_iter().enumerate() {
                    match Arc::try_unwrap(col) {
                        Ok(owned) => cols[c].extend(owned),
                        Err(shared) => cols[c].extend_from_slice(&shared),
                    }
                }
            } else {
                for row in 0..b.len() {
                    for (c, col) in cols.iter_mut().enumerate() {
                        col.push(b.value(row, c).clone());
                    }
                }
            }
        }
        Ok(ColumnarInstance {
            arity,
            phys_rows: total,
            cols: cols.into_iter().map(Arc::new).collect(),
            sel: None,
        })
    }

    /// Hash equijoin with the same key normalization as
    /// [`Instance::equijoin`] ([`normalize_join_keys`], so the columnar
    /// and row paths can never diverge on key classification): builds a
    /// [`JoinIndex`] on the smaller side, probes with the other, and
    /// applies unhashable pairs plus `residual` as a vectorized
    /// post-filter. With no spanning keys it short-circuits to a
    /// (filtered) product.
    pub fn equijoin(
        &self,
        other: &ColumnarInstance,
        on: &[(usize, usize)],
        residual: Option<&Pred>,
    ) -> Result<ColumnarInstance, RelError> {
        let total = self.arity + other.arity;
        let (keys, extra) = normalize_join_keys(on, self.arity, total)?;
        if let Some(p) = residual {
            p.validate(total)?;
        }
        let filter = Pred::conj_all(extra.into_iter().chain(residual.cloned()));
        if keys.is_empty() {
            let prod = self.product(other);
            return if filter == Pred::True {
                Ok(prod)
            } else {
                prod.select(&filter)
            };
        }
        let build_left = self.len() <= other.len();
        let (build, probe) = if build_left {
            (self, other)
        } else {
            (other, self)
        };
        let (build_cols, probe_cols): (Vec<usize>, Vec<usize>) = if build_left {
            keys.iter().copied().unzip()
        } else {
            keys.iter().map(|&(i, j)| (j, i)).unzip()
        };
        let index = JoinIndex::build(build, build_cols);
        let mut matches = Vec::new();
        index.probe_range(build, probe, &probe_cols, 0, probe.len(), &mut matches);
        let pairs: Vec<(usize, usize)> = if build_left {
            matches
        } else {
            matches.into_iter().map(|(b, p)| (p, b)).collect()
        };
        let joined = ColumnarInstance::concat_pairs(self, other, &pairs);
        if filter == Pred::True {
            Ok(joined)
        } else {
            joined.select(&filter)
        }
    }

    /// A buffer of each logical row's key-column hash (used by
    /// [`JoinIndex::build`] and exposed so probes can be chunked).
    fn key_hashes(&self, cols: &[usize], lo: usize, hi: usize) -> Vec<u64> {
        (lo..hi)
            .map(|row| hash_cols_at(&self.cols, self.phys(row), cols))
            .collect()
    }

    fn keys_match(
        &self,
        row: usize,
        cols: &[usize],
        other: &ColumnarInstance,
        other_row: usize,
        other_cols: &[usize],
    ) -> bool {
        cols.iter()
            .zip(other_cols)
            .all(|(&i, &j)| self.value(row, i) == other.value(other_row, j))
    }
}

fn hash_cols_at(cols: &[Arc<Vec<Value>>], phys_row: usize, key_cols: &[usize]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &c in key_cols {
        cols[c][phys_row].hash(&mut h);
    }
    h.finish()
}

/// A hash index over one batch's key columns, grouping *logical* row ids
/// by key hash. Probes re-verify key equality, so hash collisions are
/// harmless.
///
/// The index stores no reference to its source batch; callers pass the
/// same batch back to [`JoinIndex::probe_range`] (the engine keeps both
/// alive across the morsel fan-out).
#[derive(Debug)]
pub struct JoinIndex {
    key_cols: Vec<usize>,
    buckets: HashMap<u64, Vec<usize>>,
}

impl JoinIndex {
    /// Indexes `table` on `key_cols`.
    pub fn build(table: &ColumnarInstance, key_cols: Vec<usize>) -> JoinIndex {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::with_capacity(table.len());
        let hashes = table.key_hashes(&key_cols, 0, table.len());
        for (row, h) in hashes.into_iter().enumerate() {
            buckets.entry(h).or_default().push(row);
        }
        JoinIndex { key_cols, buckets }
    }

    /// Probes logical rows `lo..hi` of `probe` against the index built
    /// over `build`, appending `(build row, probe row)` matches. The
    /// output for a row range depends only on the rows themselves, so
    /// morsel-chunked probes concatenate to exactly the serial result.
    pub fn probe_range(
        &self,
        build: &ColumnarInstance,
        probe: &ColumnarInstance,
        probe_cols: &[usize],
        lo: usize,
        hi: usize,
        out: &mut Vec<(usize, usize)>,
    ) {
        for row in lo..hi {
            let h = hash_cols_at(&probe.cols, probe.phys(row), probe_cols);
            let Some(bucket) = self.buckets.get(&h) else {
                continue;
            };
            for &b in bucket {
                if build.keys_match(b, &self.key_cols, probe, row, probe_cols) {
                    out.push((b, row));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instance, Query};

    #[test]
    fn roundtrip_is_lossless() {
        let i = instance![[1, "a"], [2, "b"], [3, "a"]];
        let c = ColumnarInstance::from_rows(&i);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(c.to_rows(), i);
        // Arity-0 relations: both the empty and the singleton one.
        let unit = Instance::singleton(Tuple::empty());
        assert_eq!(ColumnarInstance::from_rows(&unit).to_rows(), unit);
        let none = Instance::empty(0);
        assert_eq!(ColumnarInstance::from_rows(&none).to_rows(), none);
        assert!(ColumnarInstance::empty(3).to_rows().is_empty());
    }

    #[test]
    fn project_key_order_is_total_across_value_types() {
        // Regression pin for the projection sort: a key column mixing
        // all three `Value` variants. A comparator with a partial or
        // non-transitive fallback would make the sort-dedup pass
        // depend on comparison order; the row path is the oracle.
        let tuples: Vec<Tuple> = [
            vec![Value::from(true), Value::from(1)],
            vec![Value::from(false), Value::from(2)],
            vec![Value::from(7), Value::from(3)],
            vec![Value::from(-7), Value::from(4)],
            vec![Value::str("b"), Value::from(5)],
            vec![Value::str("a"), Value::from(6)],
            // Duplicate keys with distinct payloads: the key-only
            // projection must dedup them, the full one must not.
            vec![Value::from(7), Value::from(3)],
            vec![Value::str("a"), Value::from(8)],
        ]
        .into_iter()
        .map(Tuple::from)
        .collect();
        let i = Instance::from_tuple_batch(2, tuples).unwrap();
        let c = ColumnarInstance::from_rows(&i);
        for cols in [vec![0], vec![0, 1], vec![1, 0], vec![0, 0]] {
            let expected = Query::project(Query::Input, cols.clone()).eval(&i).unwrap();
            assert_eq!(
                c.project(&cols).unwrap().to_rows(),
                expected,
                "cols={cols:?}"
            );
        }
        assert_eq!(c.project(&[0]).unwrap().len(), 6, "mixed keys dedup");
    }

    #[test]
    fn from_columns_checks_lengths() {
        let cols = vec![vec![Value::from(1), Value::from(2)], vec![Value::from(3)]];
        assert_eq!(
            ColumnarInstance::from_columns(cols, 2).unwrap_err(),
            RelError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
        let ok =
            ColumnarInstance::from_columns(vec![vec![Value::from(1), Value::from(2)]], 2).unwrap();
        assert_eq!(ok.to_rows(), instance![[1], [2]]);
    }

    #[test]
    fn select_matches_row_path() {
        let i = instance![[1, 10], [2, 20], [3, 10], [2, 10]];
        let c = ColumnarInstance::from_rows(&i);
        for p in [
            Pred::True,
            Pred::False,
            Pred::eq_const(1, 10),
            Pred::and([Pred::eq_const(1, 10), Pred::neq_const(0, 3)]),
            Pred::or([Pred::eq_const(0, 2), Pred::eq_cols(0, 1)]),
            Pred::not(Pred::eq_const(1, 10)),
        ] {
            let row = Query::select(Query::Input, p.clone()).eval(&i).unwrap();
            assert_eq!(c.select(&p).unwrap().to_rows(), row, "pred {p}");
        }
        // Out-of-range columns are rejected up front.
        assert_eq!(
            c.select(&Pred::eq_cols(0, 9)).unwrap_err(),
            RelError::ColumnOutOfRange { col: 9, arity: 2 }
        );
    }

    #[test]
    fn project_dedups_like_the_row_path() {
        let i = instance![[1, 9], [1, 8], [2, 9]];
        let c = ColumnarInstance::from_rows(&i);
        assert_eq!(c.project(&[0]).unwrap().to_rows(), i.project(&[0]).unwrap());
        assert_eq!(
            c.project(&[1, 0, 1]).unwrap().to_rows(),
            i.project(&[1, 0, 1]).unwrap()
        );
        // Zero-column projection collapses to the 0-ary unit.
        let z = c.project(&[]).unwrap();
        assert_eq!(z.len(), 1);
        assert_eq!(z.to_rows(), i.project(&[]).unwrap());
        assert!(c.project(&[5]).is_err());
    }

    #[test]
    fn product_matches_row_path() {
        let a = instance![[1], [2]];
        let b = instance![[10, 20], [30, 40]];
        let ca = ColumnarInstance::from_rows(&a);
        let cb = ColumnarInstance::from_rows(&b);
        assert_eq!(ca.product(&cb).to_rows(), a.product(&b));
        let empty = ColumnarInstance::empty(2);
        assert_eq!(ca.product(&empty).to_rows(), a.product(&Instance::empty(2)));
    }

    #[test]
    fn equijoin_matches_row_path() {
        let l = instance![[1, 10], [2, 20], [3, 10]];
        let r = instance![[10, 7], [20, 8], [40, 9]];
        let cl = ColumnarInstance::from_rows(&l);
        let cr = ColumnarInstance::from_rows(&r);
        type JoinCase<'a> = (&'a [(usize, usize)], Option<Pred>);
        let cases: &[JoinCase] = &[
            (&[(1, 2)], None),
            (&[(1, 2)], Some(Pred::neq_const(0, 3))),
            (&[(2, 1)], None),
            (&[], None),
            (&[], Some(Pred::eq_cols(1, 2))),
            (&[(0, 1)], None), // non-spanning → filter
        ];
        for (on, residual) in cases {
            let row = l.equijoin(&r, on, residual.as_ref()).unwrap();
            let col = cl.equijoin(&cr, on, residual.as_ref()).unwrap();
            assert_eq!(col.to_rows(), row, "on {on:?}");
        }
        // Errors mirror the row path.
        assert!(cl.equijoin(&cr, &[(0, 9)], None).is_err());
        assert!(cl
            .equijoin(&cr, &[(1, 2)], Some(&Pred::eq_cols(0, 9)))
            .is_err());
    }

    #[test]
    fn equijoin_build_side_is_size_independent() {
        let small = Instance::from_rows(2, (0..3i64).map(|i| [i, i])).unwrap();
        let big = Instance::from_rows(2, (0..40i64).map(|i| [i % 5, i])).unwrap();
        for (l, r) in [(&small, &big), (&big, &small)] {
            let row = l.equijoin(r, &[(0, 2)], None).unwrap();
            let col = ColumnarInstance::from_rows(l)
                .equijoin(&ColumnarInstance::from_rows(r), &[(0, 2)], None)
                .unwrap();
            assert_eq!(col.to_rows(), row);
        }
    }

    #[test]
    fn masks_chunk_consistently() {
        // eval_mask over morsel-sized ranges concatenates to the full
        // mask — the invariant the parallel executor relies on.
        let i = Instance::from_rows(2, (0..37i64).map(|x| [x % 5, x % 3])).unwrap();
        let c = ColumnarInstance::from_rows(&i);
        let p = Pred::and([Pred::eq_cols(0, 1), Pred::neq_const(0, 2)]);
        let full = c.eval_mask(&p).unwrap();
        for chunk in [1usize, 7, 1024] {
            let mut glued = Vec::new();
            let mut lo = 0;
            while lo < c.len() {
                let hi = (lo + chunk).min(c.len());
                glued.extend(c.eval_mask_range(&p, lo, hi).unwrap());
                lo = hi;
            }
            assert_eq!(glued, full, "chunk {chunk}");
        }
    }

    #[test]
    fn probe_ranges_chunk_consistently() {
        let l = Instance::from_rows(2, (0..23i64).map(|x| [x % 4, x])).unwrap();
        let r = Instance::from_rows(2, (0..17i64).map(|x| [x, x % 4])).unwrap();
        let cl = ColumnarInstance::from_rows(&l);
        let cr = ColumnarInstance::from_rows(&r);
        let index = JoinIndex::build(&cl, vec![0]);
        let mut serial = Vec::new();
        index.probe_range(&cl, &cr, &[1], 0, cr.len(), &mut serial);
        for chunk in [1usize, 7, 1024] {
            let mut glued = Vec::new();
            let mut lo = 0;
            while lo < cr.len() {
                let hi = (lo + chunk).min(cr.len());
                index.probe_range(&cl, &cr, &[1], lo, hi, &mut glued);
                lo = hi;
            }
            assert_eq!(glued, serial, "chunk {chunk}");
        }
    }

    #[test]
    fn gather_rows_composes_selections() {
        let i = instance![[1], [2], [3], [4]];
        let c = ColumnarInstance::from_rows(&i);
        let odd = c
            .select(&Pred::or([Pred::eq_const(0, 1), Pred::eq_const(0, 3)]))
            .unwrap();
        // Selecting over an already-selected batch goes through the
        // composed selection vector.
        let three = odd.select(&Pred::eq_const(0, 3)).unwrap();
        assert_eq!(three.to_rows(), instance![[3]]);
        assert_eq!(odd.gather_rows(&[1, 0]).to_rows(), instance![[1], [3]]);
    }

    #[test]
    fn vstack_concatenates_batches_in_order() {
        let a = ColumnarInstance::from_rows(&instance![[1, 10], [2, 20]]);
        let b = ColumnarInstance::from_rows(&instance![[3, 30]]);
        // A selected batch (non-identity selection) exercises the
        // gather branch; the others the move branch.
        let c = ColumnarInstance::from_rows(&instance![[4, 40], [5, 50]])
            .select(&Pred::eq_const(0, 5))
            .unwrap();
        let stacked = ColumnarInstance::vstack(2, [a, b.clone(), c]).unwrap();
        assert_eq!(stacked.len(), 4);
        assert_eq!(stacked.tuple_at(0), Tuple::new([1, 10].map(Value::from)));
        assert_eq!(stacked.tuple_at(2), Tuple::new([3, 30].map(Value::from)));
        assert_eq!(stacked.tuple_at(3), Tuple::new([5, 50].map(Value::from)));
        // Shared columns survive a stack (clone instead of move).
        let _keep_alive = b.clone();
        assert_eq!(
            ColumnarInstance::vstack(2, [b.clone(), b]).unwrap().len(),
            2
        );
        // Arity mismatches are rejected; arity-0 batches count rows.
        assert_eq!(
            ColumnarInstance::vstack(2, [ColumnarInstance::from_rows(&instance![[1]])])
                .unwrap_err(),
            RelError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
        let unit = ColumnarInstance::from_rows(&Instance::from_rows(0, [[0i64; 0]]).unwrap());
        assert_eq!(
            ColumnarInstance::vstack(0, [unit.clone(), unit])
                .unwrap()
                .len(),
            2
        );
    }
}
