//! Proptest strategies for the relational substrate.
//!
//! Used by the property tests that check the paper's theorems on random
//! inputs: random values/instances, random predicates, and — crucially —
//! random *well-typed* queries confined to a chosen [`Fragment`], so that
//! closure (Thm 4) and completion (Thms 5–6) can be tested per fragment.

use proptest::prelude::*;

use crate::{
    CmpOp, Domain, Fragment, IDatabase, Instance, Operand, Pred, Query, SelectKind, Tuple, Value,
};

/// Strategy for a value drawn from a small integer universe (keeping
/// active domains overlapping so joins/selections are non-trivial).
pub fn arb_value(max_int: i64) -> impl Strategy<Value = Value> {
    (0..=max_int).prop_map(Value::Int)
}

/// Strategy for a tuple of the given arity over a small integer universe.
pub fn arb_tuple(arity: usize, max_int: i64) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(max_int), arity).prop_map(Tuple::new)
}

/// Strategy for an instance with up to `max_tuples` tuples.
pub fn arb_instance(
    arity: usize,
    max_tuples: usize,
    max_int: i64,
) -> impl Strategy<Value = Instance> {
    proptest::collection::btree_set(arb_tuple(arity, max_int), 0..=max_tuples)
        .prop_map(move |ts| Instance::from_tuples(arity, ts).expect("tuples share arity"))
}

/// Strategy for a finite incomplete database with 1..=`max_worlds` worlds.
pub fn arb_idb(
    arity: usize,
    max_worlds: usize,
    max_tuples: usize,
    max_int: i64,
) -> impl Strategy<Value = IDatabase> {
    proptest::collection::btree_set(arb_instance(arity, max_tuples, max_int), 1..=max_worlds)
        .prop_map(move |ws| IDatabase::from_instances(arity, ws).expect("worlds share arity"))
}

/// Strategy for a comparison operand over `arity` columns.
fn arb_operand(arity: usize, max_int: i64) -> BoxedStrategy<Operand> {
    if arity == 0 {
        arb_value(max_int).prop_map(Operand::Const).boxed()
    } else {
        prop_oneof![
            (0..arity).prop_map(Operand::Col),
            arb_value(max_int).prop_map(Operand::Const),
        ]
        .boxed()
    }
}

/// Strategy for a selection predicate on tuples of the given arity.
///
/// When `positive_only` is set, the predicate uses only `=` atoms, `∧`,
/// `∨`, and `true` (the `S⁺` class of Thm 6).
pub fn arb_pred(arity: usize, max_int: i64, positive_only: bool) -> BoxedStrategy<Pred> {
    let atom = {
        let op = if positive_only {
            Just(CmpOp::Eq).boxed()
        } else {
            prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Neq)].boxed()
        };
        (op, arb_operand(arity, max_int), arb_operand(arity, max_int))
            .prop_map(|(op, l, r)| Pred::Cmp(op, l, r))
    };
    let leaf = prop_oneof![3 => atom, 1 => Just(Pred::True)];
    leaf.prop_recursive(2, 8, 3, move |inner| {
        if positive_only {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..=3).prop_map(Pred::And),
                proptest::collection::vec(inner, 1..=3).prop_map(Pred::Or),
            ]
            .boxed()
        } else {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..=3).prop_map(Pred::And),
                proptest::collection::vec(inner.clone(), 1..=3).prop_map(Pred::Or),
                inner.prop_map(|p| Pred::Not(Box::new(p))),
            ]
            .boxed()
        }
    })
    .boxed()
}

/// Strategy for a well-typed query of a *given output arity*, confined to
/// `fragment`.
///
/// Recursion is bounded by `depth`; at depth 0 only `Input` (when the
/// arity matches) and literals remain.
pub fn arb_query_with_arity(
    input_arity: usize,
    target_arity: usize,
    depth: u32,
    fragment: Fragment,
    max_int: i64,
) -> BoxedStrategy<Query> {
    arb_query_with_arity_schema(
        vec![("V".to_string(), input_arity)],
        target_arity,
        depth,
        fragment,
        max_int,
    )
}

/// Strategy for a well-typed query of a given output arity over a
/// *named* schema (`(name, arity)` pairs; `"V"`/`"W"` canonicalize to
/// `Input`/`Second` via [`Query::rel`]).
///
/// Every schema relation whose arity matches the target is a candidate
/// leaf, so generated queries mix relations freely — the generator
/// behind the catalog differential oracles.
pub fn arb_query_with_arity_schema(
    schema: Vec<(String, usize)>,
    target_arity: usize,
    depth: u32,
    fragment: Fragment,
    max_int: i64,
) -> BoxedStrategy<Query> {
    let mut leaves: Vec<BoxedStrategy<Query>> = Vec::new();
    for (name, arity) in &schema {
        if *arity == target_arity {
            leaves.push(Just(Query::rel(name.clone())).boxed());
        }
    }
    leaves.push(
        arb_instance(target_arity, 3, max_int)
            .prop_map(Query::Lit)
            .boxed(),
    );
    let leaf = proptest::strategy::Union::new(leaves).boxed();
    if depth == 0 {
        return leaf;
    }

    let mut choices: Vec<BoxedStrategy<Query>> = vec![leaf];
    let max_rel_arity = schema.iter().map(|(_, a)| *a).max().unwrap_or(0);

    if fragment.project {
        // Project from a child of some arity ≥ max(1, needed indexes).
        let child_arities: Vec<usize> = (1..=max_rel_arity.max(target_arity).max(1) + 1).collect();
        let frag = fragment;
        let sch = schema.clone();
        choices.push(
            proptest::sample::select(child_arities)
                .prop_flat_map(move |child_arity| {
                    let cols = proptest::collection::vec(0..child_arity, target_arity);
                    (
                        arb_query_with_arity_schema(
                            sch.clone(),
                            child_arity,
                            depth - 1,
                            frag,
                            max_int,
                        ),
                        cols,
                    )
                        .prop_map(|(q, cols)| Query::project(q, cols))
                })
                .boxed(),
        );
    }

    if fragment.select != SelectKind::None {
        let kind = fragment.select;
        let frag = fragment;
        choices.push(
            arb_query_with_arity_schema(schema.clone(), target_arity, depth - 1, frag, max_int)
                .prop_flat_map(move |q| {
                    let pred: BoxedStrategy<Pred> = match kind {
                        SelectKind::ColEqOnly => {
                            if target_arity == 0 {
                                Just(Pred::True).boxed()
                            } else {
                                proptest::collection::vec(
                                    ((0..target_arity), (0..target_arity))
                                        .prop_map(|(i, j)| Pred::eq_cols(i, j)),
                                    1..=2,
                                )
                                .prop_map(Pred::And)
                                .boxed()
                            }
                        }
                        SelectKind::PositiveOnly => arb_pred(target_arity, max_int, true),
                        _ => arb_pred(target_arity, max_int, false),
                    };
                    pred.prop_map(move |p| Query::select(q.clone(), p))
                })
                .boxed(),
        );
    }

    if fragment.product && target_arity >= 2 {
        let frag = fragment;
        let sch = schema.clone();
        choices.push(
            (1..target_arity)
                .prop_flat_map(move |left| {
                    let right = target_arity - left;
                    (
                        arb_query_with_arity_schema(sch.clone(), left, depth - 1, frag, max_int),
                        arb_query_with_arity_schema(sch.clone(), right, depth - 1, frag, max_int),
                    )
                        .prop_map(|(a, b)| Query::product(a, b))
                })
                .boxed(),
        );
    }

    // Equijoin: a product with spanning key pairs (and, in the full
    // selection fragment, an arbitrary residual). Key equalities are
    // positive column-equality atoms, so any fragment admitting both
    // product and selection admits the bare join.
    if fragment.product && fragment.select != SelectKind::None && target_arity >= 2 {
        let frag = fragment;
        let sch = schema.clone();
        choices.push(
            (1..target_arity)
                .prop_flat_map(move |left| {
                    let right = target_arity - left;
                    let on = proptest::collection::vec(
                        ((0..left), (left..left + right)),
                        1..=2.min(left.min(right)),
                    );
                    let maybe = |p: BoxedStrategy<Pred>| {
                        prop_oneof![1 => Just(None), 2 => p.prop_map(Some)].boxed()
                    };
                    let residual: BoxedStrategy<Option<Pred>> = match frag.select {
                        SelectKind::Any => maybe(arb_pred(left + right, max_int, false)),
                        SelectKind::PositiveOnly => maybe(arb_pred(left + right, max_int, true)),
                        _ => Just(None).boxed(),
                    };
                    (
                        arb_query_with_arity_schema(sch.clone(), left, depth - 1, frag, max_int),
                        arb_query_with_arity_schema(sch.clone(), right, depth - 1, frag, max_int),
                        on,
                        residual,
                    )
                        .prop_map(|(a, b, on, residual)| Query::join(a, b, on, residual))
                })
                .boxed(),
        );
    }

    type BinCtor = fn(Query, Query) -> Query;
    let binary_ops: Vec<(bool, BinCtor)> = vec![
        (fragment.union, Query::union as BinCtor),
        (fragment.difference, Query::diff),
        (fragment.intersection, Query::intersect),
    ];
    for (enabled, ctor) in binary_ops {
        if enabled {
            let frag = fragment;
            let sch = schema.clone();
            choices.push(
                (
                    arb_query_with_arity_schema(
                        sch.clone(),
                        target_arity,
                        depth - 1,
                        frag,
                        max_int,
                    ),
                    arb_query_with_arity_schema(sch, target_arity, depth - 1, frag, max_int),
                )
                    .prop_map(move |(a, b)| ctor(a, b))
                    .boxed(),
            );
        }
    }

    proptest::strategy::Union::new(choices).boxed()
}

/// Strategy for a well-typed full-RA query with output arity in
/// `1..=max_arity`.
pub fn arb_query(
    input_arity: usize,
    max_arity: usize,
    depth: u32,
    max_int: i64,
) -> BoxedStrategy<Query> {
    (1..=max_arity)
        .prop_flat_map(move |target| {
            arb_query_with_arity(input_arity, target, depth, Fragment::RA, max_int)
        })
        .boxed()
}

/// Strategy for a well-typed full-RA query over a named schema, with
/// output arity in `1..=max_arity`.
pub fn arb_query_schema(
    schema: Vec<(String, usize)>,
    max_arity: usize,
    depth: u32,
    max_int: i64,
) -> BoxedStrategy<Query> {
    (1..=max_arity)
        .prop_flat_map(move |target| {
            arb_query_with_arity_schema(schema.clone(), target, depth, Fragment::RA, max_int)
        })
        .boxed()
}

/// Strategy for a random named schema of 2–3 relations (`R`, `S`, and
/// sometimes `T`) with arities in `1..=max_arity` — the schemas the
/// catalog differential oracles run over.
pub fn arb_schema(max_arity: usize) -> BoxedStrategy<Vec<(String, usize)>> {
    let arity = 1..=max_arity;
    proptest::collection::vec(arity, 2..=3)
        .prop_map(|arities| {
            ["R", "S", "T"]
                .iter()
                .zip(arities)
                .map(|(n, a)| (n.to_string(), a))
                .collect()
        })
        .boxed()
}

/// A schema, a query over it, and one payload per relation (the schema
/// has at most three relations; ignore the tail payloads when it has
/// two) — the case shape of the catalog differential oracles.
pub type CatalogCase<T> = (Vec<(String, usize)>, Query, T, T, T);

/// Strategy for a random catalog workload: a 2–3 relation schema from
/// [`arb_schema`] (arities in `1..=max_arity`), a full-RA query over it
/// with output arity in `1..=max_arity`, and one payload per relation
/// built by `per_rel` from that relation's arity. Always three
/// payloads, so one generator serves every payload type (instances,
/// c-tables, pc-tables) without a variable-length strategy.
pub fn arb_catalog_case<T: std::fmt::Debug>(
    max_arity: usize,
    query_depth: u32,
    max_int: i64,
    per_rel: impl Fn(usize) -> BoxedStrategy<T> + 'static,
) -> BoxedStrategy<CatalogCase<T>> {
    arb_schema(max_arity)
        .prop_flat_map(move |schema| {
            let arities: Vec<usize> = schema.iter().map(|(_, a)| *a).collect();
            let a = move |k: usize| arities.get(k).copied().unwrap_or(1);
            (
                Just(schema.clone()),
                arb_query_schema(schema, max_arity, query_depth, max_int),
                per_rel(a(0)),
                per_rel(a(1)),
                per_rel(a(2)),
            )
        })
        .boxed()
}

/// A small shared domain for property tests.
pub fn small_domain() -> Domain {
    Domain::ints(0..=3)
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_queries_are_well_typed(q in arb_query(2, 3, 3, 3)) {
            prop_assert!(q.arity(2).is_ok());
        }

        #[test]
        fn generated_queries_respect_fragment(
            q in arb_query_with_arity(2, 2, 3, Fragment::SPJU, 3)
        ) {
            prop_assert!(Fragment::SPJU.admits_query(&q, 2).unwrap());
        }

        #[test]
        fn positive_fragment_queries_have_positive_selects(
            q in arb_query_with_arity(2, 2, 3, Fragment::S_PLUS_PJ, 3)
        ) {
            prop_assert!(Fragment::S_PLUS_PJ.admits_query(&q, 2).unwrap());
        }

        #[test]
        fn generated_queries_evaluate(
            q in arb_query(2, 3, 3, 3),
            i in arb_instance(2, 4, 3)
        ) {
            let out = q.eval(&i).unwrap();
            prop_assert_eq!(out.arity(), q.arity(2).unwrap());
        }

        #[test]
        fn eval_idb_agrees_with_per_world_eval(
            q in arb_query(2, 2, 2, 3),
            db in arb_idb(2, 4, 3, 3)
        ) {
            let image = q.eval_idb(&db).unwrap();
            for w in db.iter() {
                prop_assert!(image.contains(&q.eval(w).unwrap()));
            }
            prop_assert!(image.len() <= db.len());
        }

        #[test]
        fn schema_queries_are_well_typed_and_evaluate(
            (schema, q, i0, i1, i2) in arb_schema(2).prop_flat_map(|schema| {
                let arities: Vec<usize> = schema.iter().map(|(_, a)| *a).collect();
                let a = move |k: usize| arities.get(k).copied().unwrap_or(1);
                (
                    Just(schema.clone()),
                    arb_query_schema(schema, 2, 3, 3),
                    arb_instance(a(0), 3, 3),
                    arb_instance(a(1), 3, 3),
                    arb_instance(a(2), 3, 3),
                )
            })
        ) {
            let s = crate::Schema::new(schema.clone()).unwrap();
            let arity = q.arity_in(&s).unwrap();
            let cat = schema
                .iter()
                .zip([i0, i1, i2])
                .map(|((n, _), i)| (n.clone(), i))
                .collect::<std::collections::BTreeMap<_, _>>();
            let out = q.eval_catalog(&cat).unwrap();
            prop_assert_eq!(out.arity(), arity);
        }

        #[test]
        fn predicates_evaluate_without_error(
            p in arb_pred(3, 3, false),
            t in arb_tuple(3, 3)
        ) {
            prop_assert!(p.eval(t.values()).is_ok());
        }

        #[test]
        fn positive_predicates_report_positive(p in arb_pred(2, 3, true)) {
            prop_assert!(p.is_positive() || matches!(p, Pred::False));
        }
    }
}
