//! Property tests: BDD compilation agrees with condition semantics, and
//! the counting engines agree with brute force.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_bdd::{compile_condition, var_order, BddManager};
use ipdb_logic::strategies::arb_boolean_condition;
use ipdb_logic::{sat, Valuation, Var};
use ipdb_rel::{Domain, Value};

const NVARS: u32 = 4;

fn all_assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_bdd_agrees_with_eval(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len() as u32;
        for asg in all_assignments(n) {
            let nu: Valuation = order
                .iter()
                .map(|(v, &i)| (*v, Value::from(asg[i as usize])))
                .collect();
            prop_assert_eq!(m.eval(f, &asg), c.eval(&nu).unwrap());
        }
    }

    #[test]
    fn bdd_sat_count_matches_logic_count(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let doms: BTreeMap<Var, Domain> = order.keys().map(|v| (*v, Domain::bools())).collect();
        prop_assert_eq!(
            m.sat_count(f, order.len() as u32),
            sat::count_models(&c, &doms).unwrap()
        );
    }

    #[test]
    fn wmc_uniform_weights_match_sat_count(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len();
        let weights = vec![(0.5f64, 0.5f64); n];
        let p = m.wmc(f, &weights);
        let frac = m.sat_count(f, n as u32) as f64 / (1u128 << n) as f64;
        prop_assert!((p - frac).abs() < 1e-12);
    }

    #[test]
    fn restrict_agrees_with_semantics(c in arb_boolean_condition(2, 3)) {
        let order = var_order(&c);
        if order.is_empty() {
            return Ok(());
        }
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len() as u32;
        // Restrict BDD index 0 to true; must agree with eval forcing it.
        let g = m.restrict(f, 0, true);
        for asg in all_assignments(n) {
            let mut forced = asg.clone();
            forced[0] = true;
            prop_assert_eq!(m.eval(g, &asg), m.eval(f, &forced));
        }
    }
}
