//! Property tests: BDD compilation agrees with condition semantics, the
//! counting engines agree with brute force, and the finite-domain
//! encoding agrees with Shannon-style enumeration.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_bdd::{compile_condition, var_order, BddManager, FdEncoding};
use ipdb_logic::strategies::{arb_boolean_condition, arb_condition};
use ipdb_logic::{sat, Valuation, Var};
use ipdb_rel::{Domain, Value};

const NVARS: u32 = 4;

fn all_assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_bdd_agrees_with_eval(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len() as u32;
        for asg in all_assignments(n) {
            let nu: Valuation = order
                .iter()
                .map(|(v, &i)| (*v, Value::from(asg[i as usize])))
                .collect();
            prop_assert_eq!(m.eval(f, &asg), c.eval(&nu).unwrap());
        }
    }

    #[test]
    fn bdd_sat_count_matches_logic_count(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let doms: BTreeMap<Var, Domain> = order.keys().map(|v| (*v, Domain::bools())).collect();
        prop_assert_eq!(
            m.sat_count(f, order.len() as u32).unwrap(),
            sat::count_models(&c, &doms).unwrap()
        );
    }

    #[test]
    fn wmc_uniform_weights_match_sat_count(c in arb_boolean_condition(NVARS, 3)) {
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len();
        let weights = vec![(0.5f64, 0.5f64); n];
        let p = m.wmc(f, &weights).unwrap();
        let frac = m.sat_count(f, n as u32).unwrap() as f64 / (1u128 << n) as f64;
        prop_assert!((p - frac).abs() < 1e-12);
    }

    /// The finite-domain encoding agrees with plain condition evaluation
    /// on every valuation of the variables over their domains.
    #[test]
    fn fd_encoding_agrees_with_eval(c in arb_condition(3, 2, 3)) {
        let domain: Vec<Value> = (0..=2i64).map(Value::from).collect();
        let mut m = BddManager::new();
        let enc = FdEncoding::new(
            &mut m,
            c.vars().into_iter().map(|v| (v, domain.clone())),
        ).unwrap();
        let f = enc.compile(&mut m, &c).unwrap();
        let doms: BTreeMap<Var, Domain> =
            c.vars().into_iter().map(|v| (v, Domain::ints(0..=2))).collect();
        for nu in Valuation::all_over(&doms) {
            let asg = enc.encode_valuation(&nu).unwrap();
            prop_assert_eq!(m.eval(f, &asg), c.eval(&nu).unwrap(), "valuation {}", nu);
        }
    }

    /// Domain-aware WMC over uniform weights equals the model fraction
    /// computed by the logic crate's enumeration counter.
    #[test]
    fn fd_wmc_matches_enumeration(c in arb_condition(3, 2, 3)) {
        let nvars = c.vars().len() as u32;
        let domain: Vec<Value> = (0..=2i64).map(Value::from).collect();
        let mut m = BddManager::new();
        let enc = FdEncoding::new(
            &mut m,
            c.vars().into_iter().map(|v| (v, domain.clone())),
        ).unwrap();
        let f = enc.compile(&mut m, &c).unwrap();
        let weights: BTreeMap<Var, BTreeMap<Value, f64>> = c
            .vars()
            .into_iter()
            .map(|v| (v, domain.iter().map(|val| (val.clone(), 1.0 / 3.0)).collect()))
            .collect();
        let p = enc.wmc(&mut m, f, &weights).unwrap();
        let doms: BTreeMap<Var, Domain> =
            c.vars().into_iter().map(|v| (v, Domain::ints(0..=2))).collect();
        let models = sat::count_models(&c, &doms).unwrap() as f64;
        let frac = models / 3f64.powi(nvars as i32);
        prop_assert!((p - frac).abs() < 1e-9, "wmc {} vs fraction {}", p, frac);
    }

    #[test]
    fn restrict_agrees_with_semantics(c in arb_boolean_condition(2, 3)) {
        let order = var_order(&c);
        if order.is_empty() {
            return Ok(());
        }
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        let n = order.len() as u32;
        // Restrict BDD index 0 to true; must agree with eval forcing it.
        let g = m.restrict(f, 0, true);
        for asg in all_assignments(n) {
            let mut forced = asg.clone();
            forced[0] = true;
            prop_assert_eq!(m.eval(g, &asg), m.eval(f, &forced));
        }
    }
}
