//! # `ipdb-bdd` — reduced ordered BDDs and weighted model counting
//!
//! Why this substrate exists: §7–§8 of Green & Tannen reduce query
//! answering on probabilistic tables to computing the probability of the
//! *event expression* (boolean condition) attached to each answer tuple —
//! exactly the "event expressions / paths / traces" of Fuhr–Rölleke,
//! Zimányi, and ProbView that the paper unifies. Computing such a
//! probability is weighted model counting (WMC), and the standard data
//! structure making the tractable cases fast is the reduced ordered
//! binary decision diagram. The probabilistic-database engines descending
//! from this line of work (MystiQ, MayBMS, Trio) all ship such a
//! component; we build it from scratch.
//!
//! * [`BddManager`] — hash-consed ROBDD store with an apply cache:
//!   `var`, `not`, `and`, `or`, `xor`, `ite`, `restrict`, evaluation,
//!   exact satisfying-assignment counting.
//! * [`Weight`] — the numeric abstraction for WMC (implemented here for
//!   `f64`; `ipdb-prob` adds exact rationals).
//! * [`compile`] — translates *boolean* `ipdb-logic` conditions (the
//!   conditions of boolean c-tables / boolean pc-tables, §3/§8) into
//!   BDDs.
//! * [`encode`] — the finite-domain layer: [`FdEncoding`] one-hot-encodes
//!   multi-valued variables into indicator blocks (with the exactly-one
//!   domain-consistency constraint), so *arbitrary* `Eq`/`Neq` conditions
//!   compile, and its domain-aware `wmc` consumes per-variable
//!   `(value → weight)` maps. This is what lets `ipdb-prob` answer
//!   general pc-table queries without enumerating the §8 valuation
//!   product space.
//!
//! The probability engines in `ipdb-prob::answering` (naive enumeration,
//! Shannon expansion, boolean BDD+WMC, finite-domain BDD+WMC) are checked
//! against each other; the benches in `ipdb-bench` measure where the BDD
//! pays off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod encode;
pub mod error;
pub mod manager;
pub mod weight;

pub use compile::{compile_condition, var_order};
pub use encode::FdEncoding;
pub use error::BddError;
pub use manager::{BddManager, BddStats, NodeRef, FALSE, TRUE};
pub use weight::Weight;
