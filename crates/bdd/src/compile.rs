//! Compiling boolean conditions to BDDs.
//!
//! The conditions of boolean c-tables (§3) and boolean pc-tables (§8) —
//! equivalently, the *event expressions* of the §7 models — are boolean
//! combinations of literals `x = true` / `x = false`. [`compile_condition`]
//! turns such a condition into a BDD over a caller-chosen variable order;
//! `ipdb-prob` then computes answer-tuple probabilities by weighted model
//! counting.

use std::collections::BTreeMap;

use ipdb_logic::{Condition, Term, Var};
use ipdb_rel::Value;

use crate::error::BddError;
use crate::manager::{BddManager, NodeRef};

/// The default variable order for a condition: its variables in
/// ascending `Var` order, mapped to BDD indexes `0, 1, …`.
pub fn var_order(cond: &Condition) -> BTreeMap<Var, u32> {
    cond.vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i as u32))
        .collect()
}

/// Compiles a *boolean* condition into a BDD under the given variable
/// order.
///
/// Fails with [`BddError::NonBooleanAtom`] on atoms that are not boolean
/// literals and [`BddError::UnknownVar`] on variables missing from
/// `order`.
///
/// ```
/// use ipdb_bdd::{compile_condition, var_order, BddManager};
/// use ipdb_logic::{Condition, Var};
/// let c = Condition::or([Condition::bvar(Var(0)), Condition::nbvar(Var(1))]);
/// let order = var_order(&c);
/// let mut m = BddManager::new();
/// let f = compile_condition(&mut m, &c, &order).unwrap();
/// assert!(m.eval(f, &[true, true]));
/// assert!(!m.eval(f, &[false, true]));
/// ```
pub fn compile_condition(
    mgr: &mut BddManager,
    cond: &Condition,
    order: &BTreeMap<Var, u32>,
) -> Result<NodeRef, BddError> {
    match cond {
        Condition::True => Ok(crate::manager::TRUE),
        Condition::False => Ok(crate::manager::FALSE),
        Condition::Eq(a, b) => literal(mgr, a, b, order, false),
        Condition::Neq(a, b) => literal(mgr, a, b, order, true),
        Condition::Not(c) => {
            let f = compile_condition(mgr, c, order)?;
            Ok(mgr.not(f))
        }
        Condition::And(cs) => {
            let mut acc = crate::manager::TRUE;
            for c in cs {
                let f = compile_condition(mgr, c, order)?;
                acc = mgr.and(acc, f);
            }
            Ok(acc)
        }
        Condition::Or(cs) => {
            let mut acc = crate::manager::FALSE;
            for c in cs {
                let f = compile_condition(mgr, c, order)?;
                acc = mgr.or(acc, f);
            }
            Ok(acc)
        }
    }
}

fn literal(
    mgr: &mut BddManager,
    a: &Term,
    b: &Term,
    order: &BTreeMap<Var, u32>,
    negated: bool,
) -> Result<NodeRef, BddError> {
    let (var, val) = match (a, b) {
        (Term::Var(v), Term::Const(Value::Bool(c)))
        | (Term::Const(Value::Bool(c)), Term::Var(v)) => (*v, *c),
        _ => {
            return Err(BddError::NonBooleanAtom(format!(
                "{a}{}{b}",
                if negated { "≠" } else { "=" }
            )))
        }
    };
    let idx = *order.get(&var).ok_or(BddError::UnknownVar(var))?;
    // x = true is the positive literal; x = false the negative one;
    // negation flips.
    let positive = val != negated;
    Ok(if positive {
        mgr.var(idx)
    } else {
        mgr.nvar(idx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::Valuation;

    fn assignment_to_valuation(order: &BTreeMap<Var, u32>, asg: &[bool]) -> Valuation {
        order
            .iter()
            .map(|(v, &i)| (*v, Value::from(asg[i as usize])))
            .collect()
    }

    #[test]
    fn literals_compile() {
        let mut m = BddManager::new();
        let c = Condition::bvar(Var(3));
        let order = var_order(&c);
        let f = compile_condition(&mut m, &c, &order).unwrap();
        assert!(m.eval(f, &[true]));
        assert!(!m.eval(f, &[false]));
    }

    #[test]
    fn neq_literal_is_negation() {
        let mut m = BddManager::new();
        // x ≠ true == x = false
        let c = Condition::Neq(Term::var(Var(0)), Term::constant(true));
        let order = BTreeMap::from([(Var(0), 0u32)]);
        let f = compile_condition(&mut m, &c, &order).unwrap();
        assert!(m.eval(f, &[false]));
        assert!(!m.eval(f, &[true]));
    }

    #[test]
    fn non_boolean_atom_rejected() {
        let mut m = BddManager::new();
        let c = Condition::eq_vc(Var(0), 3);
        let order = BTreeMap::from([(Var(0), 0u32)]);
        assert!(matches!(
            compile_condition(&mut m, &c, &order),
            Err(BddError::NonBooleanAtom(_))
        ));
        let vv = Condition::eq_vv(Var(0), Var(1));
        assert!(matches!(
            compile_condition(&mut m, &vv, &order),
            Err(BddError::NonBooleanAtom(_))
        ));
    }

    #[test]
    fn unknown_var_rejected() {
        let mut m = BddManager::new();
        let c = Condition::bvar(Var(7));
        assert_eq!(
            compile_condition(&mut m, &c, &BTreeMap::new()),
            Err(BddError::UnknownVar(Var(7)))
        );
    }

    #[test]
    fn compilation_agrees_with_condition_eval() {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let c = Condition::and([
            Condition::or([Condition::bvar(x), Condition::nbvar(y)]),
            Condition::Not(Box::new(Condition::and([
                Condition::bvar(y),
                Condition::bvar(z),
            ]))),
        ]);
        let order = var_order(&c);
        let mut m = BddManager::new();
        let f = compile_condition(&mut m, &c, &order).unwrap();
        for bits in 0..8u32 {
            let asg = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let nu = assignment_to_valuation(&order, &asg);
            assert_eq!(m.eval(f, &asg), c.eval(&nu).unwrap(), "bits={bits:03b}");
        }
    }

    #[test]
    fn constants_compile_to_terminals() {
        let mut m = BddManager::new();
        assert_eq!(
            compile_condition(&mut m, &Condition::True, &BTreeMap::new()).unwrap(),
            crate::manager::TRUE
        );
        assert_eq!(
            compile_condition(&mut m, &Condition::False, &BTreeMap::new()).unwrap(),
            crate::manager::FALSE
        );
    }
}
