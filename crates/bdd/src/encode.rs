//! Finite-domain encoding: multi-valued conditions over Boolean BDDs.
//!
//! The conditions of general (p)c-tables (§2, §8) compare variables with
//! *arbitrary* constants and with each other — not just with `true` /
//! `false` — so they cannot go through [`crate::compile_condition`]
//! directly. [`FdEncoding`] closes the gap with the standard one-hot
//! (direct) encoding from knowledge compilation: a variable `x` with
//! finite domain `{v₁, …, v_d}` becomes a block of `d` Boolean
//! *indicator* variables, indicator `i` meaning `x = vᵢ`, guarded by the
//! per-block **domain-consistency constraint** "exactly one indicator is
//! true".
//!
//! Weighted model counting then recovers `P[φ]` for a pc-table condition
//! exactly: give indicator `(x, vᵢ)` the branch weights
//! `(w_false, w_true) = (1, P[x = vᵢ])` and count `φ ∧ consistency`.
//! Every consistent assignment selects one value per variable and
//! carries weight `Π_x P[x = value]`, which is precisely the §8 product
//! space; inconsistent assignments are excluded by the constraint.
//!
//! Why the generic [`BddManager::wmc`] skip-scaling is exact here even
//! though the indicator weight pairs do not sum to 1: with the
//! consistency constraint conjoined for *every* block, any restriction
//! of the function that is not identically false still depends on every
//! unassigned indicator (flipping one indicator of a block always breaks
//! exactly-one), so the ROBDD skips levels only on edges into the FALSE
//! terminal — whose contribution is zero regardless of the scaling.
//!
//! ```
//! use ipdb_bdd::{BddManager, FdEncoding};
//! use ipdb_logic::{Condition, Var};
//! use ipdb_rel::Value;
//! use std::collections::BTreeMap;
//!
//! // x uniform over {1, 2, 3}; φ = (x ≠ 2).
//! let x = Var(0);
//! let mut m = BddManager::new();
//! let enc = FdEncoding::new(
//!     &mut m,
//!     [(x, vec![Value::from(1), Value::from(2), Value::from(3)])],
//! )
//! .unwrap();
//! let f = enc.compile(&mut m, &Condition::neq_vc(x, 2)).unwrap();
//! let weights = BTreeMap::from([(
//!     x,
//!     BTreeMap::from([
//!         (Value::from(1), 0.25f64),
//!         (Value::from(2), 0.5),
//!         (Value::from(3), 0.25),
//!     ]),
//! )]);
//! assert_eq!(enc.wmc(&mut m, f, &weights).unwrap(), 0.5);
//! ```

use std::collections::BTreeMap;

use ipdb_logic::{Condition, Term, Valuation, Var};
use ipdb_rel::Value;

use crate::error::BddError;
use crate::manager::{BddManager, NodeRef, FALSE, TRUE};
use crate::weight::Weight;

/// One encoded variable: its first indicator index and its domain values
/// in canonical (ascending) order.
#[derive(Debug, Clone)]
struct Block {
    base: u32,
    values: Vec<Value>,
}

/// A one-hot encoding of finite-domain variables into Boolean BDD
/// variables, with the domain-consistency constraint cached.
///
/// The encoding is tied to the [`BddManager`] it was built with (the
/// consistency constraint lives in that manager's arena); all later
/// [`FdEncoding::compile`] / [`FdEncoding::wmc`] calls must use the same
/// manager.
#[derive(Debug, Clone)]
pub struct FdEncoding {
    blocks: BTreeMap<Var, Block>,
    nvars: u32,
    consistency: NodeRef,
}

impl FdEncoding {
    /// Builds the encoding: each `(variable, domain)` pair gets a block
    /// of one indicator per distinct domain value (values are sorted and
    /// deduplicated; blocks are laid out in ascending variable order).
    /// Errors on an empty domain — a variable with no possible value
    /// makes every condition vacuous.
    pub fn new(
        mgr: &mut BddManager,
        domains: impl IntoIterator<Item = (Var, Vec<Value>)>,
    ) -> Result<FdEncoding, BddError> {
        let mut doms: BTreeMap<Var, Vec<Value>> = BTreeMap::new();
        for (v, mut vals) in domains {
            vals.sort();
            vals.dedup();
            if vals.is_empty() {
                return Err(BddError::EmptyDomain(v));
            }
            doms.insert(v, vals);
        }
        let mut blocks = BTreeMap::new();
        let mut base = 0u32;
        for (v, values) in doms {
            let d = values.len() as u32;
            blocks.insert(v, Block { base, values });
            base += d;
        }
        let nvars = base;
        // Exactly-one per block, conjoined. Built bottom-up from the last
        // indicator so `mk`'s ordering invariant holds by construction.
        let mut consistency = TRUE;
        for block in blocks.values().rev() {
            let d = block.values.len() as u32;
            // Linear exactly-one chain, seeded with the constraint of the
            // later blocks so the conjunction is built in one sweep:
            // one(i) = pick indicator i and none after, or skip it and
            // pick exactly one later.
            let mut one = FALSE;
            let mut none = consistency;
            for i in (0..d).rev() {
                let idx = block.base + i;
                let y = mgr.var(idx);
                let ny = mgr.nvar(idx);
                let pick = mgr.and(y, none);
                let skip = mgr.and(ny, one);
                one = mgr.or(pick, skip);
                none = mgr.and(ny, none);
            }
            consistency = one;
        }
        Ok(FdEncoding {
            blocks,
            nvars,
            consistency,
        })
    }

    /// Total number of Boolean (indicator) variables.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// The encoded variables, in block order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.blocks.keys().copied()
    }

    /// The canonical domain of an encoded variable.
    pub fn domain(&self, v: Var) -> Option<&[Value]> {
        self.blocks.get(&v).map(|b| b.values.as_slice())
    }

    /// The Boolean index of the indicator `x = value`, if both the
    /// variable and the value are encoded.
    pub fn indicator(&self, v: Var, value: &Value) -> Option<u32> {
        let block = self.blocks.get(&v)?;
        let i = block.values.binary_search(value).ok()?;
        Some(block.base + i as u32)
    }

    /// The conjoined exactly-one constraints of all blocks. Conjoin this
    /// with any compiled condition before counting over raw assignments;
    /// [`FdEncoding::wmc`] does so internally.
    pub fn consistency(&self) -> NodeRef {
        self.consistency
    }

    /// Compiles an arbitrary finite-domain condition: atoms may compare
    /// encoded variables with any [`Value`] or with each other.
    ///
    /// The result is meaningful on *consistent* assignments (one
    /// indicator per block); a constant outside a variable's domain
    /// compiles to the constant-false atom. Errors with
    /// [`BddError::UnknownVar`] on variables missing from the encoding.
    pub fn compile(&self, mgr: &mut BddManager, cond: &Condition) -> Result<NodeRef, BddError> {
        match cond {
            Condition::True => Ok(TRUE),
            Condition::False => Ok(FALSE),
            Condition::Eq(a, b) => self.atom_eq(mgr, a, b),
            Condition::Neq(a, b) => {
                let f = self.atom_eq(mgr, a, b)?;
                Ok(mgr.not(f))
            }
            Condition::Not(c) => {
                let f = self.compile(mgr, c)?;
                Ok(mgr.not(f))
            }
            Condition::And(cs) => {
                let mut acc = TRUE;
                for c in cs {
                    let f = self.compile(mgr, c)?;
                    acc = mgr.and(acc, f);
                }
                Ok(acc)
            }
            Condition::Or(cs) => {
                let mut acc = FALSE;
                for c in cs {
                    let f = self.compile(mgr, c)?;
                    acc = mgr.or(acc, f);
                }
                Ok(acc)
            }
        }
    }

    fn atom_eq(&self, mgr: &mut BddManager, a: &Term, b: &Term) -> Result<NodeRef, BddError> {
        match (a, b) {
            (Term::Const(u), Term::Const(v)) => Ok(mgr.constant(u == v)),
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                if !self.blocks.contains_key(x) {
                    return Err(BddError::UnknownVar(*x));
                }
                Ok(match self.indicator(*x, c) {
                    Some(idx) => mgr.var(idx),
                    // A constant outside dom(x) can never be x's value.
                    None => FALSE,
                })
            }
            (Term::Var(x), Term::Var(y)) => {
                let bx = self.blocks.get(x).ok_or(BddError::UnknownVar(*x))?;
                let by = self.blocks.get(y).ok_or(BddError::UnknownVar(*y))?;
                if x == y {
                    return Ok(TRUE);
                }
                // x = y ⇔ ⋁_{v ∈ dom(x) ∩ dom(y)} (x = v ∧ y = v).
                let mut acc = FALSE;
                for (i, v) in bx.values.iter().enumerate() {
                    if let Ok(j) = by.values.binary_search(v) {
                        let lx = mgr.var(bx.base + i as u32);
                        let ly = mgr.var(by.base + j as u32);
                        let both = mgr.and(lx, ly);
                        acc = mgr.or(acc, both);
                    }
                }
                Ok(acc)
            }
        }
    }

    /// Encodes a valuation of the encoded variables as a Boolean
    /// assignment (for evaluating compiled conditions with
    /// [`BddManager::eval`]). Every encoded variable must be bound to one
    /// of its domain values.
    pub fn encode_valuation(&self, nu: &Valuation) -> Result<Vec<bool>, BddError> {
        let mut asg = vec![false; self.nvars as usize];
        for v in self.blocks.keys() {
            let val = nu.get(*v).ok_or(BddError::UnknownVar(*v))?;
            let idx = self
                .indicator(*v, val)
                .ok_or_else(|| BddError::ValueOutOfDomain(*v, val.clone()))?;
            asg[idx as usize] = true;
        }
        Ok(asg)
    }

    /// Builds the Boolean branch-weight vector for the generic
    /// [`BddManager::wmc`] from a flat stream of
    /// `(variable, value, weight)` triples — the single home of the
    /// one-hot weight convention: indicator `(x, v)` gets
    /// `(w_false, w_true) = (1, w)`. Errors on triples naming unencoded
    /// variables or out-of-domain values, and if any indicator is left
    /// without a weight.
    pub fn weights_from<W: Weight>(
        &self,
        weights: impl IntoIterator<Item = (Var, Value, W)>,
    ) -> Result<Vec<(W, W)>, BddError> {
        let mut out: Vec<Option<(W, W)>> = vec![None; self.nvars as usize];
        for (v, val, w) in weights {
            if !self.blocks.contains_key(&v) {
                return Err(BddError::UnknownVar(v));
            }
            let idx = self
                .indicator(v, &val)
                .ok_or(BddError::ValueOutOfDomain(v, val))?;
            out[idx as usize] = Some((W::one(), w));
        }
        for (v, block) in &self.blocks {
            for (i, val) in block.values.iter().enumerate() {
                if out[block.base as usize + i].is_none() {
                    return Err(BddError::MissingValueWeight(*v, val.clone()));
                }
            }
        }
        Ok(out.into_iter().map(|o| o.expect("checked above")).collect())
    }

    /// [`FdEncoding::weights_from`] over per-variable `(value → weight)`
    /// maps. Errors if a map is missing for any encoded variable or a
    /// weight is missing for any domain value.
    pub fn boolean_weights<W: Weight>(
        &self,
        weights: &BTreeMap<Var, BTreeMap<Value, W>>,
    ) -> Result<Vec<(W, W)>, BddError> {
        for v in self.blocks.keys() {
            if !weights.contains_key(v) {
                return Err(BddError::UnknownVar(*v));
            }
        }
        self.weights_from(weights.iter().flat_map(|(v, per_value)| {
            per_value
                .iter()
                .map(move |(val, w)| (*v, val.clone(), w.clone()))
        }))
    }

    /// Domain-aware weighted model count under a prebuilt Boolean weight
    /// vector (see [`FdEncoding::boolean_weights`]): counts
    /// `f ∧ consistency`, which over one-hot blocks equals
    /// `Σ_{ν ⊨ f} Π_x w_x(ν(x))` — for probability weights, exactly
    /// `P[f]`.
    pub fn wmc_with<W: Weight>(
        &self,
        mgr: &mut BddManager,
        f: NodeRef,
        boolean_weights: &[(W, W)],
    ) -> Result<W, BddError> {
        let g = mgr.and(f, self.consistency);
        mgr.wmc(g, boolean_weights)
    }

    /// Domain-aware weighted model count of a compiled condition under
    /// per-variable `(value → weight)` maps.
    pub fn wmc<W: Weight>(
        &self,
        mgr: &mut BddManager,
        f: NodeRef,
        weights: &BTreeMap<Var, BTreeMap<Value, W>>,
    ) -> Result<W, BddError> {
        let bw = self.boolean_weights(weights)?;
        self.wmc_with(mgr, f, &bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::from(*v)).collect()
    }

    fn uniform_weights(enc: &FdEncoding) -> BTreeMap<Var, BTreeMap<Value, f64>> {
        enc.vars()
            .map(|v| {
                let dom = enc.domain(v).unwrap();
                let p = 1.0 / dom.len() as f64;
                (v, dom.iter().map(|val| (val.clone(), p)).collect())
            })
            .collect()
    }

    #[test]
    fn blocks_are_contiguous_and_sorted() {
        let mut m = BddManager::new();
        let enc = FdEncoding::new(
            &mut m,
            [(Var(3), ints(&[5, 1, 5, 3])), (Var(1), ints(&[7, 2]))],
        )
        .unwrap();
        assert_eq!(enc.nvars(), 5);
        // Var 1 first (ascending var order), values sorted + deduped.
        assert_eq!(enc.domain(Var(1)).unwrap(), &ints(&[2, 7])[..]);
        assert_eq!(enc.domain(Var(3)).unwrap(), &ints(&[1, 3, 5])[..]);
        assert_eq!(enc.indicator(Var(1), &Value::from(2)), Some(0));
        assert_eq!(enc.indicator(Var(1), &Value::from(7)), Some(1));
        assert_eq!(enc.indicator(Var(3), &Value::from(1)), Some(2));
        assert_eq!(enc.indicator(Var(3), &Value::from(9)), None);
    }

    #[test]
    fn empty_domain_rejected() {
        let mut m = BddManager::new();
        assert_eq!(
            FdEncoding::new(&mut m, [(Var(0), vec![])]).unwrap_err(),
            BddError::EmptyDomain(Var(0))
        );
    }

    #[test]
    fn consistency_counts_product_of_domain_sizes() {
        let mut m = BddManager::new();
        let enc = FdEncoding::new(
            &mut m,
            [(Var(0), ints(&[1, 2, 3])), (Var(1), ints(&[0, 1]))],
        )
        .unwrap();
        // Consistent assignments = 3 × 2 valuations.
        assert_eq!(m.sat_count(enc.consistency(), enc.nvars()).unwrap(), 6);
        // And they carry total probability 1 under any distribution.
        let w = uniform_weights(&enc);
        let p = enc.wmc(&mut m, TRUE, &w).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq_and_neq_constants() {
        let x = Var(0);
        let mut m = BddManager::new();
        let enc = FdEncoding::new(&mut m, [(x, ints(&[1, 2, 3, 4]))]).unwrap();
        let w = uniform_weights(&enc);
        let eq = enc.compile(&mut m, &Condition::eq_vc(x, 2)).unwrap();
        assert!((enc.wmc(&mut m, eq, &w).unwrap() - 0.25).abs() < 1e-12);
        let neq = enc.compile(&mut m, &Condition::neq_vc(x, 2)).unwrap();
        assert!((enc.wmc(&mut m, neq, &w).unwrap() - 0.75).abs() < 1e-12);
        // Out-of-domain constants fold to false / true.
        let never = enc.compile(&mut m, &Condition::eq_vc(x, 9)).unwrap();
        assert_eq!(enc.wmc(&mut m, never, &w).unwrap(), 0.0);
        let always = enc.compile(&mut m, &Condition::neq_vc(x, 9)).unwrap();
        assert!((enc.wmc(&mut m, always, &w).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq_between_variables_over_shared_domain() {
        let (x, y) = (Var(0), Var(1));
        let mut m = BddManager::new();
        let enc = FdEncoding::new(&mut m, [(x, ints(&[1, 2, 3])), (y, ints(&[2, 3, 4]))]).unwrap();
        let w = uniform_weights(&enc);
        // P[x = y] over independent uniforms = |{2,3}| / 9.
        let f = enc.compile(&mut m, &Condition::eq_vv(x, y)).unwrap();
        let p = enc.wmc(&mut m, f, &w).unwrap();
        assert!((p - 2.0 / 9.0).abs() < 1e-12, "got {p}");
        let g = enc.compile(&mut m, &Condition::neq_vv(x, y)).unwrap();
        let q = enc.wmc(&mut m, g, &w).unwrap();
        assert!((q - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn compound_conditions_match_hand_computation() {
        let (x, y) = (Var(0), Var(1));
        let mut m = BddManager::new();
        let enc = FdEncoding::new(&mut m, [(x, ints(&[0, 1])), (y, ints(&[0, 1]))]).unwrap();
        let w = uniform_weights(&enc);
        // (x = 0 ∨ y = 1) ∧ ¬(x = y): outcomes (0,0)✗, (0,1)✓, (1,0)✗, (1,1)✗.
        let c = Condition::and([
            Condition::or([Condition::eq_vc(x, 0), Condition::eq_vc(y, 1)]),
            Condition::Not(Box::new(Condition::eq_vv(x, y))),
        ]);
        let f = enc.compile(&mut m, &c).unwrap();
        assert!((enc.wmc(&mut m, f, &w).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn boolean_domains_match_boolean_compiler() {
        use crate::compile::{compile_condition, var_order};
        let (a, b) = (Var(0), Var(1));
        let c = Condition::or([
            Condition::bvar(a),
            Condition::and([Condition::nbvar(a), Condition::bvar(b)]),
        ]);
        // Boolean path.
        let mut m1 = BddManager::new();
        let order = var_order(&c);
        let f1 = compile_condition(&mut m1, &c, &order).unwrap();
        let p1 = m1.wmc(f1, &[(0.5, 0.5), (0.75, 0.25)]).unwrap();
        // Finite-domain path over {false, true}.
        let bools = vec![Value::Bool(false), Value::Bool(true)];
        let mut m2 = BddManager::new();
        let enc = FdEncoding::new(&mut m2, [(a, bools.clone()), (b, bools)]).unwrap();
        let f2 = enc.compile(&mut m2, &c).unwrap();
        let w = BTreeMap::from([
            (
                a,
                BTreeMap::from([(Value::Bool(false), 0.5f64), (Value::Bool(true), 0.5)]),
            ),
            (
                b,
                BTreeMap::from([(Value::Bool(false), 0.75f64), (Value::Bool(true), 0.25)]),
            ),
        ]);
        let p2 = enc.wmc(&mut m2, f2, &w).unwrap();
        assert!((p1 - p2).abs() < 1e-12, "{p1} vs {p2}");
    }

    #[test]
    fn unknown_var_and_missing_weight_error() {
        let x = Var(0);
        let mut m = BddManager::new();
        let enc = FdEncoding::new(&mut m, [(x, ints(&[1, 2]))]).unwrap();
        assert_eq!(
            enc.compile(&mut m, &Condition::eq_vc(Var(9), 1))
                .unwrap_err(),
            BddError::UnknownVar(Var(9))
        );
        assert_eq!(
            enc.compile(&mut m, &Condition::eq_vv(x, Var(9)))
                .unwrap_err(),
            BddError::UnknownVar(Var(9))
        );
        // Weight map missing a domain value.
        let partial = BTreeMap::from([(x, BTreeMap::from([(Value::from(1), 1.0f64)]))]);
        let f = enc.compile(&mut m, &Condition::eq_vc(x, 1)).unwrap();
        assert_eq!(
            enc.wmc(&mut m, f, &partial).unwrap_err(),
            BddError::MissingValueWeight(x, Value::from(2))
        );
        // Weight map missing the variable entirely.
        let none: BTreeMap<Var, BTreeMap<Value, f64>> = BTreeMap::new();
        assert_eq!(
            enc.wmc(&mut m, f, &none).unwrap_err(),
            BddError::UnknownVar(x)
        );
        // Flat triples are validated the same way: unknown variables,
        // out-of-domain values, and incomplete coverage all error.
        assert_eq!(
            enc.weights_from([(Var(9), Value::from(1), 1.0f64)])
                .unwrap_err(),
            BddError::UnknownVar(Var(9))
        );
        assert_eq!(
            enc.weights_from([(x, Value::from(9), 1.0f64)]).unwrap_err(),
            BddError::ValueOutOfDomain(x, Value::from(9))
        );
        assert_eq!(
            enc.weights_from([(x, Value::from(1), 1.0f64)]).unwrap_err(),
            BddError::MissingValueWeight(x, Value::from(2))
        );
        let full = enc
            .weights_from([(x, Value::from(1), 0.25f64), (x, Value::from(2), 0.75)])
            .unwrap();
        assert_eq!(full, vec![(1.0, 0.25), (1.0, 0.75)]);
    }

    #[test]
    fn encode_valuation_round_trips_through_eval() {
        let (x, y) = (Var(0), Var(1));
        let mut m = BddManager::new();
        let enc = FdEncoding::new(&mut m, [(x, ints(&[1, 2])), (y, ints(&[1, 2]))]).unwrap();
        let c = Condition::eq_vv(x, y);
        let f = enc.compile(&mut m, &c).unwrap();
        for (a, b) in [(1i64, 1i64), (1, 2), (2, 1), (2, 2)] {
            let nu = Valuation::from_iter([(x, Value::from(a)), (y, Value::from(b))]);
            let asg = enc.encode_valuation(&nu).unwrap();
            assert_eq!(m.eval(f, &asg), a == b, "x={a}, y={b}");
            // Every encoded valuation is consistent.
            assert!(m.eval(enc.consistency(), &asg));
        }
        let partial = Valuation::from_iter([(x, Value::from(1))]);
        assert_eq!(
            enc.encode_valuation(&partial).unwrap_err(),
            BddError::UnknownVar(y)
        );
        let outside = Valuation::from_iter([(x, Value::from(9)), (y, Value::from(1))]);
        assert_eq!(
            enc.encode_valuation(&outside).unwrap_err(),
            BddError::ValueOutOfDomain(x, Value::from(9))
        );
    }
}
