//! The numeric abstraction for weighted model counting.
//!
//! Probability computations in this workspace run either on `f64` (fast,
//! benchmarkable) or on exact rationals (`ipdb-prob::Rat`, so the
//! distribution-equality theorems — Thms 8/9 — are testable without
//! tolerances). [`Weight`] is the small commutative-semiring-with-
//! subtraction interface both satisfy; every engine (BDD WMC, Shannon
//! expansion, naive enumeration) is generic over it.

/// A weight type for model counting: a commutative semiring with
/// subtraction and division (a field restricted to the operations WMC
/// needs).
pub trait Weight: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction (used for complements `1 − p`).
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division (used for conditioning / normalization; callers never
    /// divide by zero).
    fn div(&self, other: &Self) -> Self;

    /// `1 − self`, the complement of a probability.
    fn complement(&self) -> Self {
        Self::one().sub(self)
    }

    /// Whether this equals the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Checked addition: `None` when the result leaves the type's
    /// representable range. The default forwards to [`Weight::add`] —
    /// right for types that saturate or lose precision instead of
    /// overflowing (`f64`); exact types (`Rat`) override it so model
    /// counting and normalization can report
    /// overflow instead of panicking.
    fn checked_add(&self, other: &Self) -> Option<Self> {
        Some(self.add(other))
    }

    /// Checked subtraction (see [`Weight::checked_add`]).
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        Some(self.sub(other))
    }

    /// Checked multiplication (see [`Weight::checked_add`]).
    fn checked_mul(&self, other: &Self) -> Option<Self> {
        Some(self.mul(other))
    }

    /// Checked division. Exact types override this to return `None` on
    /// overflow *or* a zero divisor; the default forwards to
    /// [`Weight::div`], so lossy types (`f64`) keep their own division
    /// semantics (`Some(inf)`/`Some(NaN)` rather than `None`).
    fn checked_div(&self, other: &Self) -> Option<Self> {
        Some(self.div(other))
    }
}

impl Weight for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_weight_ops() {
        let a = 0.25f64;
        assert_eq!(a.add(&0.5), 0.75);
        assert_eq!(a.mul(&2.0), 0.5);
        assert_eq!(a.sub(&0.25), 0.0);
        assert_eq!(a.div(&0.5), 0.5);
        assert_eq!(a.complement(), 0.75);
        assert!(f64::zero().is_zero());
        assert!(!f64::one().is_zero());
    }
}
