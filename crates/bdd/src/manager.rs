//! The ROBDD node store and its operations.
//!
//! Classic Bryant-style implementation: nodes are hash-consed through a
//! unique table (so structural equality is pointer equality and the
//! diagram is canonical for a fixed variable order), and the binary
//! `apply` recursion is memoized. Variable order is simply the numeric
//! order of the variable indexes `0 < 1 < …`.

use std::cell::Cell;
use std::collections::HashMap;

use crate::error::BddError;
use crate::weight::Weight;

/// Reference to a BDD node (index into the manager's node table).
pub type NodeRef = u32;

/// The constant-false terminal.
pub const FALSE: NodeRef = 0;
/// The constant-true terminal.
pub const TRUE: NodeRef = 1;

/// Sentinel "variable" of the terminals: larger than every real variable,
/// so terminals sort below all decision nodes.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// Binary operation tags for the apply cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A store of reduced ordered BDDs sharing one variable order.
///
/// All nodes live in one arena; [`NodeRef`]s from one manager must not be
/// used with another.
///
/// ```
/// use ipdb_bdd::{BddManager, TRUE};
/// let mut m = BddManager::new();
/// let x0 = m.var(0);
/// let x1 = m.var(1);
/// let f = m.or(x0, x1);
/// let nx0 = m.not(x0);
/// let g = m.not(f);
/// let h = m.and(nx0, g);
/// // ¬(x0 ∨ x1) ∧ ¬x0 == ¬(x0 ∨ x1): canonicity makes this pointer-equal.
/// assert_eq!(h, g);
/// assert_eq!(m.sat_count(TRUE, 2).unwrap(), 4);
/// ```
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeRef, NodeRef), NodeRef>,
    apply_cache: HashMap<(Op, NodeRef, NodeRef), NodeRef>,
    unique_hits: u64,
    unique_misses: u64,
    apply_hits: u64,
    apply_misses: u64,
    // `wmc` takes `&self` (it only reads the diagram), so its call
    // counter is interior-mutable. Managers are not `Sync`-shared.
    wmc_calls: Cell<u64>,
}

/// Lifetime counters of one [`BddManager`] — what the hash-consing and
/// memoization actually did, exposed by [`BddManager::stats`].
///
/// The counters are always on: each is a plain integer bump on a path
/// that already performs a hash-table probe, so there is no flag to
/// check and nothing to opt into.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Decision nodes allocated (terminals excluded).
    pub nodes_allocated: u64,
    /// `mk` calls answered from the unique table (hash-consing shares).
    pub unique_hits: u64,
    /// `mk` calls that had to allocate a fresh node.
    pub unique_misses: u64,
    /// Binary `apply` calls answered from the memo cache (terminal
    /// shortcuts resolve before the cache and count as neither).
    pub apply_cache_hits: u64,
    /// Binary `apply` calls that recursed.
    pub apply_cache_misses: u64,
    /// Peak live node count, terminals included. The arena never frees,
    /// so this equals [`BddManager::node_count`] — kept as its own
    /// field so the meaning survives a garbage-collecting manager.
    pub peak_live_nodes: u64,
    /// Weighted-model-count invocations ([`BddManager::wmc`]).
    pub wmc_calls: u64,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// An empty manager containing only the two terminals.
    pub fn new() -> Self {
        BddManager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            unique_hits: 0,
            unique_misses: 0,
            apply_hits: 0,
            apply_misses: 0,
            wmc_calls: Cell::new(0),
        }
    }

    /// This manager's lifetime counters (see [`BddStats`]).
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes_allocated: (self.nodes.len() - 2) as u64,
            unique_hits: self.unique_hits,
            unique_misses: self.unique_misses,
            apply_cache_hits: self.apply_hits,
            apply_cache_misses: self.apply_misses,
            peak_live_nodes: self.nodes.len() as u64,
            wmc_calls: self.wmc_calls.get(),
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `f` (a size measure for benches).
    pub fn reachable_count(&self, f: NodeRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && n > TRUE {
                let node = self.nodes[n as usize];
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        seen.len()
    }

    fn var_of(&self, f: NodeRef) -> u32 {
        self.nodes[f as usize].var
    }

    /// The (variable, low, high) triple of a decision node; `None` for
    /// terminals.
    pub fn expand(&self, f: NodeRef) -> Option<(u32, NodeRef, NodeRef)> {
        if f <= TRUE {
            None
        } else {
            let n = self.nodes[f as usize];
            Some((n.var, n.lo, n.hi))
        }
    }

    /// Hash-consed node constructor: applies the reduction rules
    /// (identical children collapse; duplicate nodes share).
    pub fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        assert!(var < TERMINAL_VAR, "variable index out of range");
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.var_of(lo) && var < self.var_of(hi),
            "children must be below var in the order"
        );
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            self.unique_hits += 1;
            return n;
        }
        self.unique_misses += 1;
        let n = self.nodes.len() as NodeRef;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), n);
        n
    }

    /// The single-variable function `xᵢ`.
    pub fn var(&mut self, i: u32) -> NodeRef {
        self.mk(i, FALSE, TRUE)
    }

    /// The negative literal `¬xᵢ`.
    pub fn nvar(&mut self, i: u32) -> NodeRef {
        self.mk(i, TRUE, FALSE)
    }

    /// Constant from a boolean.
    pub fn constant(&self, b: bool) -> NodeRef {
        if b {
            TRUE
        } else {
            FALSE
        }
    }

    /// `¬f`.
    pub fn not(&mut self, f: NodeRef) -> NodeRef {
        self.xor(f, TRUE)
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::And, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::Or, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::Xor, f, g)
    }

    /// `if f then g else h`.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> NodeRef {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// n-ary conjunction.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter().fold(TRUE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter().fold(FALSE, |acc, f| self.or(acc, f))
    }

    fn apply(&mut self, op: Op, f: NodeRef, g: NodeRef) -> NodeRef {
        // Terminal / idempotence shortcuts.
        match op {
            Op::And => {
                if f == FALSE || g == FALSE {
                    return FALSE;
                }
                if f == TRUE {
                    return g;
                }
                if g == TRUE || f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == TRUE || g == TRUE {
                    return TRUE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE || f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return FALSE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE {
                    return f;
                }
                if f == TRUE && g == TRUE {
                    return FALSE;
                }
            }
        }
        // Commutative: normalize operand order for cache hits.
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.apply_cache.get(&key) {
            self.apply_hits += 1;
            return r;
        }
        self.apply_misses += 1;
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f_lo, f_hi) = if vf == top {
            let n = self.nodes[f as usize];
            (n.lo, n.hi)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if vg == top {
            let n = self.nodes[g as usize];
            (n.lo, n.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, f_lo, g_lo);
        let hi = self.apply(op, f_hi, g_hi);
        let r = self.mk(top, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Restriction `f[xᵢ := b]`.
    pub fn restrict(&mut self, f: NodeRef, i: u32, b: bool) -> NodeRef {
        if f <= TRUE {
            return f;
        }
        let node = self.nodes[f as usize];
        if node.var > i {
            return f;
        }
        if node.var == i {
            return if b { node.hi } else { node.lo };
        }
        let lo = self.restrict(node.lo, i, b);
        let hi = self.restrict(node.hi, i, b);
        self.mk(node.var, lo, hi)
    }

    /// Evaluates `f` under a total assignment (index `i` holds `xᵢ`).
    pub fn eval(&self, f: NodeRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        while cur > TRUE {
            let node = self.nodes[cur as usize];
            let v = assignment
                .get(node.var as usize)
                .copied()
                .unwrap_or_else(|| panic!("assignment missing x{}", node.var));
            cur = if v { node.hi } else { node.lo };
        }
        cur == TRUE
    }

    /// Exact number of satisfying assignments over variables `0..nvars`.
    ///
    /// Errors with [`BddError::VarOutOfRange`] if `f` decides a variable
    /// `≥ nvars` (the count would otherwise silently ignore it); the
    /// check rides along the memoized recursion, so each node is still
    /// visited exactly once.
    pub fn sat_count(&self, f: NodeRef, nvars: u32) -> Result<u128, BddError> {
        let mut memo: HashMap<NodeRef, u128> = HashMap::new();
        // count(n) = models over variables strictly below var_of(n)'s level
        // (i.e. vars var_of(n)..nvars); terminals count 1 or 0, scaled by
        // skipped levels at each edge.
        fn level(mgr: &BddManager, n: NodeRef, nvars: u32) -> u32 {
            if n <= TRUE {
                nvars
            } else {
                mgr.var_of(n)
            }
        }
        fn rec(
            mgr: &BddManager,
            n: NodeRef,
            nvars: u32,
            memo: &mut HashMap<NodeRef, u128>,
        ) -> Result<u128, BddError> {
            if n == FALSE {
                return Ok(0);
            }
            if n == TRUE {
                return Ok(1);
            }
            if let Some(&c) = memo.get(&n) {
                return Ok(c);
            }
            let node = mgr.nodes[n as usize];
            if node.var >= nvars {
                return Err(BddError::VarOutOfRange {
                    var: node.var,
                    nvars,
                });
            }
            let lo = rec(mgr, node.lo, nvars, memo)?;
            let hi = rec(mgr, node.hi, nvars, memo)?;
            let lo_skip = level(mgr, node.lo, nvars) - node.var - 1;
            let hi_skip = level(mgr, node.hi, nvars) - node.var - 1;
            let c = (1u128 << lo_skip) * lo + (1u128 << hi_skip) * hi;
            memo.insert(n, c);
            Ok(c)
        }
        let count = rec(self, f, nvars, &mut memo)?;
        let root_skip = level(self, f, nvars).min(nvars);
        Ok((1u128 << root_skip) * count)
    }

    /// Weighted model count of `f` over variables `0..weights.len()`.
    ///
    /// `weights[i] = (w_false, w_true)` are the branch weights of `xᵢ`.
    /// For probabilities the pair sums to 1 and the result is
    /// `P[f]`; the implementation handles arbitrary weights by scaling
    /// skipped levels with `(w_false + w_true)`.
    ///
    /// Errors with [`BddError::VarOutOfRange`] if `f` decides a variable
    /// with no weight pair (instead of panicking on the index); the
    /// check rides along the memoized recursion, so each node is still
    /// visited exactly once. All weight arithmetic goes through the
    /// checked [`Weight`] operations, so exact weights that leave their
    /// representable range report [`BddError::Overflow`] instead of
    /// panicking mid-count.
    pub fn wmc<W: Weight>(&self, f: NodeRef, weights: &[(W, W)]) -> Result<W, BddError> {
        self.wmc_calls.set(self.wmc_calls.get() + 1);
        let nvars = weights.len() as u32;
        let mut memo: HashMap<NodeRef, W> = HashMap::new();
        let skip = |from: u32, to: u32| -> Result<W, BddError> {
            let mut acc = W::one();
            for i in from..to {
                let (wf, wt) = &weights[i as usize];
                acc = wf
                    .checked_add(wt)
                    .and_then(|s| acc.checked_mul(&s))
                    .ok_or(BddError::Overflow)?;
            }
            Ok(acc)
        };
        fn level(mgr: &BddManager, n: NodeRef, nvars: u32) -> u32 {
            if n <= TRUE {
                nvars
            } else {
                mgr.var_of(n)
            }
        }
        fn rec<W: Weight>(
            mgr: &BddManager,
            n: NodeRef,
            weights: &[(W, W)],
            memo: &mut HashMap<NodeRef, W>,
            skip: &dyn Fn(u32, u32) -> Result<W, BddError>,
        ) -> Result<W, BddError> {
            if n == FALSE {
                return Ok(W::zero());
            }
            if n == TRUE {
                return Ok(W::one());
            }
            if let Some(c) = memo.get(&n) {
                return Ok(c.clone());
            }
            let node = mgr.nodes[n as usize];
            let nvars = weights.len() as u32;
            if node.var >= nvars {
                return Err(BddError::VarOutOfRange {
                    var: node.var,
                    nvars,
                });
            }
            // Recurse before touching the children's levels, so an
            // out-of-range node deeper down errors before `skip` could
            // index past the weight vector.
            let lo = rec(mgr, node.lo, weights, memo, skip)?;
            let hi = rec(mgr, node.hi, weights, memo, skip)?;
            let (wf, wt) = &weights[node.var as usize];
            let lo_level = level(mgr, node.lo, nvars);
            let hi_level = level(mgr, node.hi, nvars);
            let lo_arm = wf
                .checked_mul(&skip(node.var + 1, lo_level)?)
                .and_then(|w| w.checked_mul(&lo))
                .ok_or(BddError::Overflow)?;
            let hi_arm = wt
                .checked_mul(&skip(node.var + 1, hi_level)?)
                .and_then(|w| w.checked_mul(&hi))
                .ok_or(BddError::Overflow)?;
            let c = lo_arm.checked_add(&hi_arm).ok_or(BddError::Overflow)?;
            memo.insert(n, c.clone());
            Ok(c)
        }
        let count = rec(self, f, weights, &mut memo, &skip)?;
        let top = level(self, f, nvars).min(nvars);
        skip(0, top)?.checked_mul(&count).ok_or(BddError::Overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut m = BddManager::new();
        assert_eq!(m.constant(true), TRUE);
        assert_eq!(m.constant(false), FALSE);
        let x = m.var(0);
        assert!(m.eval(x, &[true]));
        assert!(!m.eval(x, &[false]));
        let nx = m.nvar(0);
        assert!(m.eval(nx, &[false]));
    }

    #[test]
    fn reduction_rules() {
        let mut m = BddManager::new();
        // mk with equal children collapses.
        assert_eq!(m.mk(0, TRUE, TRUE), TRUE);
        // Hash-consing: same triple, same node.
        let a = m.mk(0, FALSE, TRUE);
        let b = m.mk(0, FALSE, TRUE);
        assert_eq!(a, b);
    }

    #[test]
    fn boolean_ops_truth_tables() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let and = m.and(x, y);
        let or = m.or(x, y);
        let xor = m.xor(x, y);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let asg = [a, b];
            assert_eq!(m.eval(and, &asg), a && b);
            assert_eq!(m.eval(or, &asg), a || b);
            assert_eq!(m.eval(xor, &asg), a ^ b);
        }
    }

    #[test]
    fn not_is_involutive() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
        assert_eq!(m.not(TRUE), FALSE);
    }

    #[test]
    fn ite_works() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.ite(x, y, z);
        for bits in 0..8u32 {
            let asg = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expect = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn canonicity_syntactic_equality() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        // x ∧ y built two different ways is the same node.
        let a = m.and(x, y);
        let ny = m.not(y);
        let x_and_ny = m.and(x, ny);
        let b = m.xor(x_and_ny, x); // x ⊕ (x ∧ ¬y) = x ∧ y
        assert_eq!(a, b);
    }

    #[test]
    fn restrict() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        assert_eq!(m.restrict(f, 0, true), y);
        assert_eq!(m.restrict(f, 0, false), FALSE);
        assert_eq!(m.restrict(f, 5, true), f); // var below all of f's
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let or = m.or(x, y);
        assert_eq!(m.sat_count(or, 2).unwrap(), 3);
        let and = m.and(x, y);
        assert_eq!(m.sat_count(and, 2).unwrap(), 1);
        assert_eq!(m.sat_count(TRUE, 3).unwrap(), 8);
        assert_eq!(m.sat_count(FALSE, 3).unwrap(), 0);
        // Skipped variables are counted: f = x1 over 3 vars has 4 models.
        let y1 = m.var(1);
        assert_eq!(m.sat_count(y1, 3).unwrap(), 4);
    }

    #[test]
    fn wmc_matches_probability_semantics() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let or = m.or(x, y);
        // P[x]=0.5, P[y]=0.25 → P[x ∨ y] = 1 - 0.5*0.75 = 0.625
        let w = [(0.5, 0.5), (0.75, 0.25)];
        let p = m.wmc(or, &w).unwrap();
        assert!((p - 0.625).abs() < 1e-12);
        // Skipped var at the root: f = y alone.
        let p_y = m.wmc(y, &w).unwrap();
        assert!((p_y - 0.25).abs() < 1e-12);
        assert!((m.wmc(TRUE, &w).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.wmc(FALSE, &w).unwrap(), 0.0);
    }

    #[test]
    fn wmc_with_unnormalized_weights_counts_models() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let or = m.or(x, y);
        // Weight 1 on both branches = plain model counting.
        let w = [(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(m.wmc(or, &w).unwrap(), 3.0);
    }

    #[test]
    fn counting_rejects_out_of_range_variables() {
        // Regression: a node deciding x2 with only 2 declared variables
        // used to panic (wmc) or silently miscount (sat_count); both now
        // return VarOutOfRange.
        let mut m = BddManager::new();
        let x = m.var(0);
        let z = m.var(2);
        let f = m.and(x, z);
        assert_eq!(
            m.wmc(f, &[(0.5, 0.5), (0.5, 0.5)]),
            Err(BddError::VarOutOfRange { var: 2, nvars: 2 })
        );
        assert_eq!(
            m.sat_count(f, 2),
            Err(BddError::VarOutOfRange { var: 2, nvars: 2 })
        );
        // The same function over enough variables counts fine.
        assert_eq!(m.sat_count(f, 3).unwrap(), 2);
        let w3 = [(0.5, 0.5), (0.5, 0.5), (0.5, 0.5)];
        assert!((m.wmc(f, &w3).unwrap() - 0.25).abs() < 1e-12);
        // Terminals are in range for any nvars, including zero.
        assert_eq!(m.sat_count(TRUE, 0).unwrap(), 1);
        assert_eq!(m.wmc::<f64>(FALSE, &[]).unwrap(), 0.0);
    }

    #[test]
    fn stats_track_consing_memoization_and_wmc() {
        let mut m = BddManager::new();
        // A fresh manager has zero counters; only the two terminals live.
        assert_eq!(
            m.stats(),
            BddStats {
                peak_live_nodes: 2,
                ..BddStats::default()
            }
        );
        let x = m.var(0);
        let y = m.var(1);
        // Two fresh nodes so far, no sharing yet.
        let s = m.stats();
        assert_eq!(s.nodes_allocated, 2);
        assert_eq!(s.unique_misses, 2);
        assert_eq!(s.unique_hits, 0);
        assert_eq!(s.peak_live_nodes, m.node_count() as u64);
        // Rebuilding x hits the unique table.
        let x2 = m.var(0);
        assert_eq!(x2, x);
        assert_eq!(m.stats().unique_hits, 1);
        // First apply recurses (miss); repeating it hits the memo.
        let f = m.and(x, y);
        let misses = m.stats().apply_cache_misses;
        assert!(misses >= 1);
        let f2 = m.and(x, y);
        assert_eq!(f2, f);
        let s = m.stats();
        assert_eq!(s.apply_cache_hits, 1);
        assert_eq!(s.apply_cache_misses, misses);
        // Terminal shortcuts bypass the cache entirely.
        m.and(FALSE, f);
        assert_eq!(m.stats().apply_cache_hits, 1);
        // wmc takes &self and still counts.
        assert_eq!(m.stats().wmc_calls, 0);
        let w = [(0.5, 0.5), (0.5, 0.5)];
        m.wmc(f, &w).unwrap();
        m.wmc(f, &w).unwrap();
        assert_eq!(m.stats().wmc_calls, 2);
    }

    #[test]
    fn reachable_count() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        // Nodes: f-node, y-node, TRUE, FALSE.
        assert_eq!(m.reachable_count(f), 4);
        assert_eq!(m.reachable_count(TRUE), 1);
    }

    #[test]
    fn big_parity_function_stays_small() {
        // Parity of 16 vars: ROBDD has 2 nodes per level + terminals.
        let mut m = BddManager::new();
        let mut f = FALSE;
        for i in 0..16 {
            let x = m.var(i);
            f = m.xor(f, x);
        }
        assert!(m.reachable_count(f) <= 2 * 16 + 2);
        assert_eq!(m.sat_count(f, 16).unwrap(), 1 << 15);
    }
}
