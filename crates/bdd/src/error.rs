//! Errors for condition compilation.

use std::fmt;

use ipdb_logic::Var;

/// Errors raised when compiling conditions to BDDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The condition contains an atom that is not a boolean literal
    /// (only *boolean* conditions — variables compared with boolean
    /// constants — compile directly; finite-domain conditions go through
    /// the Shannon-expansion engine in `ipdb-prob` instead).
    NonBooleanAtom(String),
    /// The condition mentions a variable missing from the compilation
    /// order.
    UnknownVar(Var),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NonBooleanAtom(s) => {
                write!(f, "condition atom is not a boolean literal: {s}")
            }
            BddError::UnknownVar(v) => write!(f, "variable {v} missing from the BDD order"),
        }
    }
}

impl std::error::Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BddError::NonBooleanAtom("x0=3".into())
            .to_string()
            .contains("x0=3"));
        assert!(BddError::UnknownVar(Var(2)).to_string().contains("x2"));
    }
}
