//! Errors for condition compilation and model counting.

use std::fmt;

use ipdb_logic::Var;
use ipdb_rel::Value;

/// Errors raised when compiling conditions to BDDs or counting models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The condition contains an atom that is not a boolean literal
    /// (only *boolean* conditions — variables compared with boolean
    /// constants — compile directly through [`crate::compile_condition`];
    /// arbitrary finite-domain conditions go through
    /// [`crate::FdEncoding`] instead).
    NonBooleanAtom(String),
    /// The condition mentions a variable missing from the compilation
    /// order (or from the finite-domain encoding).
    UnknownVar(Var),
    /// A model-counting call met a decision node whose variable index
    /// lies outside the declared variable range (`weights.len()` for
    /// [`crate::BddManager::wmc`], `nvars` for
    /// [`crate::BddManager::sat_count`]): the function depends on a
    /// variable the caller supplied no weight/level for, so any count
    /// would be meaningless.
    VarOutOfRange {
        /// The decision variable encountered in the diagram.
        var: u32,
        /// The number of variables the caller declared.
        nvars: u32,
    },
    /// A finite-domain WMC call supplied no weight for one of a
    /// variable's domain values (every value of every encoded variable
    /// needs a weight for the count to be well-defined).
    MissingValueWeight(Var, Value),
    /// A finite-domain encoding was asked to encode a variable with an
    /// empty domain; such a variable has no possible value, so every
    /// condition over it would be vacuously false.
    EmptyDomain(Var),
    /// A valuation bound an encoded variable to a value outside its
    /// encoded domain — no indicator exists for that binding.
    ValueOutOfDomain(Var, Value),
    /// Weight arithmetic overflowed during model counting (a checked
    /// [`Weight`](crate::Weight) operation returned `None`). Exact
    /// rational weights with adversarial denominators reach this; it is
    /// an error, not a panic, so callers can degrade gracefully.
    Overflow,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NonBooleanAtom(s) => {
                write!(f, "condition atom is not a boolean literal: {s}")
            }
            BddError::UnknownVar(v) => write!(f, "variable {v} missing from the BDD order"),
            BddError::VarOutOfRange { var, nvars } => write!(
                f,
                "BDD node decides variable index {var}, but the caller declared \
                 only {nvars} variables"
            ),
            BddError::MissingValueWeight(v, val) => {
                write!(f, "no weight supplied for {v} = {val}")
            }
            BddError::EmptyDomain(v) => {
                write!(f, "variable {v} has an empty domain; nothing to encode")
            }
            BddError::ValueOutOfDomain(v, val) => {
                write!(f, "value {val} is outside the encoded domain of {v}")
            }
            BddError::Overflow => {
                write!(f, "weight arithmetic overflowed during model counting")
            }
        }
    }
}

impl std::error::Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BddError::NonBooleanAtom("x0=3".into())
            .to_string()
            .contains("x0=3"));
        assert!(BddError::UnknownVar(Var(2)).to_string().contains("x2"));
        let e = BddError::VarOutOfRange { var: 7, nvars: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        assert!(BddError::MissingValueWeight(Var(1), Value::from(9))
            .to_string()
            .contains("x1 = 9"));
        let e = BddError::ValueOutOfDomain(Var(1), Value::from(9)).to_string();
        assert!(e.contains("x1") && e.contains('9'));
        assert!(BddError::EmptyDomain(Var(0)).to_string().contains("x0"));
    }
}
