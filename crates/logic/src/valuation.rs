//! Valuations: assignments of domain values to variables.
//!
//! The paper's `ν : Var(T) → D` (§2). A [`Valuation`] may be partial —
//! total evaluation errors on unbound variables, while residual
//! evaluation ([`crate::Condition::partial_eval`]) folds what it can.
//! [`Valuation::all_over`] enumerates every total valuation over
//! per-variable finite domains: the outcome space of finite-domain tables
//! (Def. 6) and of pc-tables (Def. 13).

use std::collections::BTreeMap;
use std::fmt;

use ipdb_rel::{Domain, Value};

use crate::var::Var;

/// A (possibly partial) assignment `Var → Value`.
///
/// ```
/// use ipdb_logic::{Valuation, Var};
/// use ipdb_rel::Value;
/// let nu = Valuation::from_iter([(Var(0), Value::from(1))]);
/// assert_eq!(nu.get(Var(0)), Some(&Value::from(1)));
/// assert_eq!(nu.get(Var(1)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Valuation {
    map: BTreeMap<Var, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Binds `v` to `val`, returning the previous binding if any.
    pub fn bind(&mut self, v: Var, val: impl Into<Value>) -> Option<Value> {
        self.map.insert(v, val.into())
    }

    /// Removes the binding of `v`.
    pub fn unbind(&mut self, v: Var) -> Option<Value> {
        self.map.remove(&v)
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Value> {
        self.map.get(&v)
    }

    /// Whether `v` is bound.
    pub fn binds(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, Var, Value> {
        self.map.iter()
    }

    /// Merges `other`'s bindings into `self` (right-biased).
    pub fn extend(&mut self, other: &Valuation) {
        for (v, val) in &other.map {
            self.map.insert(*v, val.clone());
        }
    }

    /// The restriction of the valuation to `vars`.
    pub fn restrict<'a, I: IntoIterator<Item = &'a Var>>(&self, vars: I) -> Valuation {
        let mut out = Valuation::new();
        for v in vars {
            if let Some(val) = self.map.get(v) {
                out.map.insert(*v, val.clone());
            }
        }
        out
    }

    /// Every total valuation over the given per-variable domains — the
    /// product space `Π_x dom(x)` as a plain iterator (probabilities are
    /// layered on in `ipdb-prob`).
    ///
    /// Yields exactly one (empty) valuation when `doms` is empty, and
    /// nothing if some domain is empty.
    pub fn all_over(doms: &BTreeMap<Var, Domain>) -> ValuationIter<'_> {
        ValuationIter::new(doms)
    }
}

impl FromIterator<(Var, Value)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Var, Value)>>(iter: I) -> Self {
        Valuation {
            map: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, val)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}↦{val}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over all total valuations of a finite-domain variable set
/// (odometer order: last variable varies fastest).
pub struct ValuationIter<'a> {
    vars: Vec<(Var, &'a Domain)>,
    idx: Vec<usize>,
    done: bool,
}

impl<'a> ValuationIter<'a> {
    fn new(doms: &'a BTreeMap<Var, Domain>) -> Self {
        let vars: Vec<(Var, &Domain)> = doms.iter().map(|(v, d)| (*v, d)).collect();
        let done = vars.iter().any(|(_, d)| d.is_empty());
        ValuationIter {
            idx: vec![0; vars.len()],
            vars,
            done,
        }
    }

    /// Total number of valuations (product of domain sizes).
    pub fn count_total(doms: &BTreeMap<Var, Domain>) -> u128 {
        doms.values().map(|d| d.len() as u128).product()
    }
}

impl Iterator for ValuationIter<'_> {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        if self.done {
            return None;
        }
        let nu: Valuation = self
            .vars
            .iter()
            .zip(&self.idx)
            .map(|((v, d), &i)| (*v, d.values()[i].clone()))
            .collect();
        // Advance odometer.
        let mut pos = self.vars.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.idx[pos] += 1;
            if self.idx[pos] < self.vars[pos].1.len() {
                break;
            }
            self.idx[pos] = 0;
        }
        Some(nu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut nu = Valuation::new();
        assert!(nu.is_empty());
        assert_eq!(nu.bind(Var(0), 1), None);
        assert_eq!(nu.bind(Var(0), 2), Some(Value::from(1)));
        assert_eq!(nu.get(Var(0)), Some(&Value::from(2)));
        assert!(nu.binds(Var(0)));
        assert_eq!(nu.unbind(Var(0)), Some(Value::from(2)));
        assert!(!nu.binds(Var(0)));
    }

    #[test]
    fn extend_is_right_biased() {
        let mut a = Valuation::from_iter([(Var(0), Value::from(1))]);
        let b = Valuation::from_iter([(Var(0), Value::from(9)), (Var(1), Value::from(2))]);
        a.extend(&b);
        assert_eq!(a.get(Var(0)), Some(&Value::from(9)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn restrict() {
        let nu = Valuation::from_iter([(Var(0), Value::from(1)), (Var(1), Value::from(2))]);
        let r = nu.restrict(&[Var(1), Var(7)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(Var(1)), Some(&Value::from(2)));
    }

    #[test]
    fn all_over_enumerates_product() {
        let doms = BTreeMap::from([(Var(0), Domain::ints(1..=2)), (Var(1), Domain::ints(1..=3))]);
        let all: Vec<Valuation> = Valuation::all_over(&doms).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(ValuationIter::count_total(&doms), 6);
        // All distinct.
        let set: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn all_over_empty_varset() {
        let doms = BTreeMap::new();
        let all: Vec<Valuation> = Valuation::all_over(&doms).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn all_over_empty_domain() {
        let doms = BTreeMap::from([(Var(0), Domain::empty())]);
        assert_eq!(Valuation::all_over(&doms).count(), 0);
    }

    #[test]
    fn display() {
        let nu = Valuation::from_iter([(Var(0), Value::from(1))]);
        assert_eq!(nu.to_string(), "{x0↦1}");
    }
}
