//! Terms: variables or constants.
//!
//! The entries of v-/c-table tuples and the operands of condition atoms.

use std::fmt;

use ipdb_rel::Value;

use crate::valuation::Valuation;
use crate::var::Var;
use crate::LogicError;

/// A term: either a variable or a constant from `D`.
///
/// ```
/// use ipdb_logic::{Term, Var};
/// let t = Term::var(Var(0));
/// assert!(t.as_var().is_some());
/// let c = Term::constant(5);
/// assert!(c.as_const().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Variable term.
    pub const fn var(v: Var) -> Term {
        Term::Var(v)
    }

    /// Constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// Whether the term is ground (a constant).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Resolves the term under a total valuation.
    pub fn eval(&self, nu: &Valuation) -> Result<Value, LogicError> {
        match self {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(x) => nu.get(*x).cloned().ok_or(LogicError::UnboundVar(*x)),
        }
    }

    /// Resolves under a partial valuation: bound variables become their
    /// values, unbound variables stay.
    pub fn partial_eval(&self, nu: &Valuation) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(x) => match nu.get(*x) {
                Some(v) => Term::Const(v.clone()),
                None => self.clone(),
            },
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let x = Term::var(Var(1));
        assert_eq!(x.as_var(), Some(Var(1)));
        assert_eq!(x.as_const(), None);
        assert!(!x.is_ground());
        let c = Term::constant("a");
        assert!(c.is_ground());
        assert_eq!(c.as_const(), Some(&Value::from("a")));
    }

    #[test]
    fn eval_requires_binding() {
        let x = Term::var(Var(0));
        let nu = Valuation::new();
        assert_eq!(x.eval(&nu), Err(LogicError::UnboundVar(Var(0))));
        let nu = Valuation::from_iter([(Var(0), Value::from(3))]);
        assert_eq!(x.eval(&nu).unwrap(), Value::from(3));
        assert_eq!(Term::constant(9).eval(&nu).unwrap(), Value::from(9));
    }

    #[test]
    fn partial_eval_substitutes_bound_only() {
        let nu = Valuation::from_iter([(Var(0), Value::from(3))]);
        assert_eq!(Term::var(Var(0)).partial_eval(&nu), Term::constant(3));
        assert_eq!(Term::var(Var(1)).partial_eval(&nu), Term::var(Var(1)));
    }

    #[test]
    fn display() {
        assert_eq!(Term::var(Var(2)).to_string(), "x2");
        assert_eq!(Term::constant("q").to_string(), "'q'");
    }
}
