//! Satisfiability, validity, and equivalence over finite domains.
//!
//! Finite-domain tables (Def. 6) attach a finite `dom(x)` to every
//! variable; deciding which worlds exist, whether a tuple is
//! certain/possible, and whether two conditions agree are all
//! finite-domain satisfiability questions. The solver is a plain
//! backtracking search that re-folds the condition after each binding
//! ([`crate::Condition::partial_eval`]) so contradictory branches are cut
//! early; [`count_models`] multiplies out untouched variables instead of
//! enumerating them.

use std::collections::BTreeMap;

use ipdb_rel::Domain;

use crate::condition::Condition;
use crate::valuation::Valuation;
use crate::var::Var;
use crate::LogicError;

/// Checks every variable of `cond` has a domain in `doms`.
fn check_domains(cond: &Condition, doms: &BTreeMap<Var, Domain>) -> Result<(), LogicError> {
    for v in cond.vars() {
        if !doms.contains_key(&v) {
            return Err(LogicError::MissingDomain(v));
        }
    }
    Ok(())
}

/// Finds a valuation of `cond`'s variables (over their domains) that
/// satisfies `cond`, if one exists.
///
/// The returned valuation binds exactly the variables of `cond`.
///
/// ```
/// use std::collections::BTreeMap;
/// use ipdb_logic::{sat, Condition, Var};
/// use ipdb_rel::Domain;
/// let c = Condition::and([Condition::eq_vv(Var(0), Var(1)), Condition::neq_vc(Var(0), 1)]);
/// let doms = BTreeMap::from([(Var(0), Domain::ints(1..=2)), (Var(1), Domain::ints(1..=2))]);
/// let nu = sat::satisfying(&c, &doms).unwrap().expect("x=y=2 works");
/// assert!(c.eval(&nu).unwrap());
/// ```
pub fn satisfying(
    cond: &Condition,
    doms: &BTreeMap<Var, Domain>,
) -> Result<Option<Valuation>, LogicError> {
    check_domains(cond, doms)?;
    let vars: Vec<Var> = cond.vars().into_iter().collect();
    let mut nu = Valuation::new();
    // Fold through the smart constructors first: `search` relies on the
    // invariant that ground (sub)conditions are the constants True/False,
    // which raw conditions like `Not(True)` violate.
    let folded = cond.simplify();
    if search(&folded, &vars, doms, &mut nu) {
        Ok(Some(nu))
    } else {
        Ok(None)
    }
}

fn search(
    residual: &Condition,
    unbound: &[Var],
    doms: &BTreeMap<Var, Domain>,
    nu: &mut Valuation,
) -> bool {
    match residual {
        Condition::True => {
            // Any completion works; fill remaining vars with their first
            // domain value so the caller gets a total witness.
            for v in unbound {
                let dom = &doms[v];
                if dom.is_empty() {
                    return false;
                }
                nu.bind(*v, dom.values()[0].clone());
            }
            true
        }
        Condition::False => false,
        _ => {
            let Some((&v, rest)) = unbound.split_first() else {
                // No unbound vars but residual is not constant: cannot
                // happen, since partial_eval folds ground conditions.
                unreachable!("ground residual must fold to a constant");
            };
            for val in &doms[&v] {
                nu.bind(v, val.clone());
                let step = Valuation::from_iter([(v, val.clone())]);
                let next = residual.partial_eval(&step);
                if search(&next, rest, doms, nu) {
                    return true;
                }
                nu.unbind(v);
            }
            false
        }
    }
}

/// Whether `cond` has at least one satisfying valuation.
pub fn satisfiable(cond: &Condition, doms: &BTreeMap<Var, Domain>) -> Result<bool, LogicError> {
    Ok(satisfying(cond, doms)?.is_some())
}

/// Whether `cond` holds under *every* valuation.
pub fn valid(cond: &Condition, doms: &BTreeMap<Var, Domain>) -> Result<bool, LogicError> {
    Ok(!satisfiable(&cond.clone().negate(), doms)?)
}

/// Whether `a` and `b` agree under every valuation over `doms` (which
/// must cover the variables of both).
pub fn equivalent(
    a: &Condition,
    b: &Condition,
    doms: &BTreeMap<Var, Domain>,
) -> Result<bool, LogicError> {
    let differ = Condition::or([
        Condition::and([a.clone(), b.clone().negate()]),
        Condition::and([a.clone().negate(), b.clone()]),
    ]);
    Ok(!satisfiable(&differ, doms)?)
}

/// Counts the satisfying valuations of `cond` over the domains of *all*
/// variables in `doms` (variables absent from `cond` contribute a factor
/// `|dom|` each).
///
/// This is unweighted model counting; `ipdb-prob` layers probabilities on
/// the same recursion.
pub fn count_models(cond: &Condition, doms: &BTreeMap<Var, Domain>) -> Result<u128, LogicError> {
    check_domains(cond, doms)?;
    let cond = cond.simplify(); // see `satisfying`: rec needs folded input
    let vars: Vec<Var> = doms.keys().copied().collect();
    fn rec(residual: &Condition, unbound: &[Var], doms: &BTreeMap<Var, Domain>) -> u128 {
        match residual {
            Condition::True => unbound.iter().map(|v| doms[v].len() as u128).product(),
            Condition::False => 0,
            _ => {
                let (&v, rest) = unbound
                    .split_first()
                    .expect("ground residual must fold to a constant");
                if !residual.vars().contains(&v) {
                    // v is irrelevant to the residual: multiply instead of
                    // branching.
                    return (doms[&v].len() as u128) * rec(residual, rest, doms);
                }
                let mut total = 0u128;
                for val in &doms[&v] {
                    let step = Valuation::from_iter([(v, val.clone())]);
                    total += rec(&residual.partial_eval(&step), rest, doms);
                }
                total
            }
        }
    }
    Ok(rec(&cond, &vars, doms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms2(n: i64) -> BTreeMap<Var, Domain> {
        BTreeMap::from([(Var(0), Domain::ints(1..=n)), (Var(1), Domain::ints(1..=n))])
    }

    #[test]
    fn satisfying_finds_witness() {
        let c = Condition::and([
            Condition::eq_vv(Var(0), Var(1)),
            Condition::neq_vc(Var(0), 1),
        ]);
        let nu = satisfying(&c, &doms2(3)).unwrap().unwrap();
        assert!(c.eval(&nu).unwrap());
    }

    #[test]
    fn unsatisfiable_over_small_domain() {
        // x ≠ 1 ∧ x ≠ 2 over dom {1,2} has no model.
        let c = Condition::and([Condition::neq_vc(Var(0), 1), Condition::neq_vc(Var(0), 2)]);
        let doms = BTreeMap::from([(Var(0), Domain::ints(1..=2))]);
        assert!(!satisfiable(&c, &doms).unwrap());
        // ... but over {1,2,3} it is satisfiable.
        let doms3 = BTreeMap::from([(Var(0), Domain::ints(1..=3))]);
        assert!(satisfiable(&c, &doms3).unwrap());
    }

    #[test]
    fn missing_domain_errors() {
        let c = Condition::eq_vc(Var(9), 1);
        assert_eq!(
            satisfiable(&c, &BTreeMap::new()),
            Err(LogicError::MissingDomain(Var(9)))
        );
    }

    #[test]
    fn validity() {
        // x = 1 ∨ x = 2 is valid over dom {1,2}.
        let c = Condition::or([Condition::eq_vc(Var(0), 1), Condition::eq_vc(Var(0), 2)]);
        let doms = BTreeMap::from([(Var(0), Domain::ints(1..=2))]);
        assert!(valid(&c, &doms).unwrap());
        let doms3 = BTreeMap::from([(Var(0), Domain::ints(1..=3))]);
        assert!(!valid(&c, &doms3).unwrap());
    }

    #[test]
    fn equivalence_of_de_morgan_duals() {
        let a = Condition::Not(Box::new(Condition::And(vec![
            Condition::eq_vc(Var(0), 1),
            Condition::eq_vc(Var(1), 2),
        ])));
        let b = Condition::or([Condition::neq_vc(Var(0), 1), Condition::neq_vc(Var(1), 2)]);
        assert!(equivalent(&a, &b, &doms2(3)).unwrap());
        assert!(!equivalent(&a, &Condition::True, &doms2(3)).unwrap());
    }

    #[test]
    fn count_models_basics() {
        let doms = doms2(3);
        assert_eq!(count_models(&Condition::True, &doms).unwrap(), 9);
        assert_eq!(count_models(&Condition::False, &doms).unwrap(), 0);
        assert_eq!(
            count_models(&Condition::eq_vv(Var(0), Var(1)), &doms).unwrap(),
            3
        );
        assert_eq!(
            count_models(&Condition::neq_vv(Var(0), Var(1)), &doms).unwrap(),
            6
        );
    }

    #[test]
    fn count_models_with_irrelevant_vars() {
        // Condition only mentions x0; x1's domain multiplies the count.
        let doms = doms2(4);
        assert_eq!(
            count_models(&Condition::eq_vc(Var(0), 1), &doms).unwrap(),
            4
        );
    }

    #[test]
    fn count_matches_enumeration() {
        let c = Condition::or([
            Condition::and([
                Condition::eq_vv(Var(0), Var(1)),
                Condition::neq_vc(Var(0), 2),
            ]),
            Condition::eq_vc(Var(1), 3),
        ]);
        let doms = doms2(3);
        let brute = Valuation::all_over(&doms)
            .filter(|nu| c.eval(nu).unwrap())
            .count() as u128;
        assert_eq!(count_models(&c, &doms).unwrap(), brute);
    }

    #[test]
    fn boolean_conditions_count() {
        let doms = BTreeMap::from([(Var(0), Domain::bools()), (Var(1), Domain::bools())]);
        // x0=true ∨ x1=true has 3 of 4 models.
        let c = Condition::or([Condition::bvar(Var(0)), Condition::bvar(Var(1))]);
        assert_eq!(count_models(&c, &doms).unwrap(), 3);
    }
}
