//! Proptest strategies for conditions and valuations.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_rel::{Domain, Value};

use crate::{Condition, Term, Valuation, Var};

/// Strategy for a term over the variables `x0..x{nvars}` and small
/// integer constants.
pub fn arb_term(nvars: u32, max_int: i64) -> BoxedStrategy<Term> {
    if nvars == 0 {
        (0..=max_int).prop_map(Term::constant).boxed()
    } else {
        prop_oneof![
            (0..nvars).prop_map(|i| Term::var(Var(i))),
            (0..=max_int).prop_map(Term::constant),
        ]
        .boxed()
    }
}

/// Strategy for a condition over `x0..x{nvars}` with small integer
/// constants. Uses the raw constructors (not the smart ones) so that
/// simplification has real work to do in tests.
pub fn arb_condition(nvars: u32, max_int: i64, depth: u32) -> BoxedStrategy<Condition> {
    let atom = (
        arb_term(nvars, max_int),
        arb_term(nvars, max_int),
        any::<bool>(),
    )
        .prop_map(|(l, r, eq)| {
            if eq {
                Condition::Eq(l, r)
            } else {
                Condition::Neq(l, r)
            }
        });
    let leaf = prop_oneof![
        6 => atom,
        1 => Just(Condition::True),
        1 => Just(Condition::False),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..=3).prop_map(Condition::And),
            proptest::collection::vec(inner.clone(), 1..=3).prop_map(Condition::Or),
            inner.prop_map(|c| Condition::Not(Box::new(c))),
        ]
    })
    .boxed()
}

/// Strategy for a *boolean* condition over boolean variables
/// `x0..x{nvars}` (the conditions of boolean (p)c-tables).
pub fn arb_boolean_condition(nvars: u32, depth: u32) -> BoxedStrategy<Condition> {
    let nvars = nvars.max(1);
    let atom = (0..nvars, any::<bool>()).prop_map(|(i, pos)| {
        if pos {
            Condition::bvar(Var(i))
        } else {
            Condition::nbvar(Var(i))
        }
    });
    let leaf = prop_oneof![6 => atom, 1 => Just(Condition::True), 1 => Just(Condition::False)];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..=3).prop_map(Condition::And),
            proptest::collection::vec(inner.clone(), 1..=3).prop_map(Condition::Or),
            inner.prop_map(|c| Condition::Not(Box::new(c))),
        ]
    })
    .boxed()
}

/// Integer domains `{0..=max_int}` for `x0..x{nvars}`.
pub fn int_domains(nvars: u32, max_int: i64) -> BTreeMap<Var, Domain> {
    (0..nvars)
        .map(|i| (Var(i), Domain::ints(0..=max_int)))
        .collect()
}

/// Boolean domains for `x0..x{nvars}`.
pub fn bool_domains(nvars: u32) -> BTreeMap<Var, Domain> {
    (0..nvars).map(|i| (Var(i), Domain::bools())).collect()
}

/// Strategy for a total valuation of `x0..x{nvars}` over `{0..=max_int}`.
pub fn arb_valuation(nvars: u32, max_int: i64) -> BoxedStrategy<Valuation> {
    proptest::collection::vec(0..=max_int, nvars as usize)
        .prop_map(|vals| {
            vals.into_iter()
                .enumerate()
                .map(|(i, v)| (Var(i as u32), Value::from(v)))
                .collect()
        })
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `simplify` is sound: the simplified condition agrees with the
        /// original under every valuation.
        #[test]
        fn simplify_preserves_semantics(
            c in arb_condition(3, 2, 3),
            nu in arb_valuation(3, 2)
        ) {
            prop_assert_eq!(c.eval(&nu).unwrap(), c.simplify().eval(&nu).unwrap());
        }

        /// `nnf` is sound and produces no `Not` nodes.
        #[test]
        fn nnf_preserves_semantics(
            c in arb_condition(3, 2, 3),
            nu in arb_valuation(3, 2)
        ) {
            let n = c.nnf();
            prop_assert_eq!(c.eval(&nu).unwrap(), n.eval(&nu).unwrap());
            fn no_not(c: &Condition) -> bool {
                match c {
                    Condition::Not(_) => false,
                    Condition::And(cs) | Condition::Or(cs) => cs.iter().all(no_not),
                    _ => true,
                }
            }
            prop_assert!(no_not(&n));
        }

        /// `partial_eval` under a total valuation folds to the constant
        /// `eval` returns.
        #[test]
        fn partial_eval_total_matches_eval(
            c in arb_condition(3, 2, 3),
            nu in arb_valuation(3, 2)
        ) {
            let folded = c.partial_eval(&nu);
            let expect = if c.eval(&nu).unwrap() { Condition::True } else { Condition::False };
            prop_assert_eq!(folded, expect);
        }

        /// Binding variables one at a time agrees with binding all at once.
        #[test]
        fn partial_eval_composes(
            c in arb_condition(3, 2, 3),
            nu in arb_valuation(3, 2)
        ) {
            let mut step = c.clone();
            for (v, val) in nu.iter() {
                let one = Valuation::from_iter([(*v, val.clone())]);
                step = step.partial_eval(&one);
            }
            prop_assert_eq!(step, c.partial_eval(&nu));
        }

        /// The satisfiability witness really satisfies, and `count_models`
        /// matches brute force.
        #[test]
        fn sat_agrees_with_enumeration(c in arb_condition(3, 2, 3)) {
            let doms = int_domains(3, 2);
            let brute: Vec<Valuation> = Valuation::all_over(&doms)
                .filter(|nu| c.eval(nu).unwrap())
                .collect();
            let witness = sat::satisfying(&c, &doms).unwrap();
            prop_assert_eq!(witness.is_some(), !brute.is_empty());
            if let Some(nu) = witness {
                // The witness binds c's vars; extend to all domain vars.
                let mut total = nu.clone();
                for (v, d) in &doms {
                    if !total.binds(*v) {
                        total.bind(*v, d.values()[0].clone());
                    }
                }
                prop_assert!(c.eval(&total).unwrap());
            }
            prop_assert_eq!(
                sat::count_models(&c, &doms).unwrap(),
                brute.len() as u128
            );
        }

        /// `negate` really negates.
        #[test]
        fn negate_flips_semantics(
            c in arb_condition(3, 2, 3),
            nu in arb_valuation(3, 2)
        ) {
            prop_assert_eq!(
                c.eval(&nu).unwrap(),
                !c.clone().negate().eval(&nu).unwrap()
            );
        }

        /// Boolean conditions report `is_boolean` and count models
        /// consistently with enumeration over boolean domains.
        #[test]
        fn boolean_condition_counting(c in arb_boolean_condition(3, 3)) {
            prop_assert!(c.is_boolean());
            let doms = bool_domains(3);
            let brute = Valuation::all_over(&doms)
                .filter(|nu| c.eval(nu).unwrap())
                .count() as u128;
            prop_assert_eq!(sat::count_models(&c, &doms).unwrap(), brute);
        }
    }
}
