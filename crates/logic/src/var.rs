//! Variables and fresh-variable generation.

use std::fmt;

/// A variable, identified by a small integer.
///
/// Variables are pure identities; tables and conditions attach domains and
/// probability distributions to them externally. Display is `x{id}`
/// (`x0`, `x1`, …), matching the paper's `x, y, z` up to renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The numeric id.
    pub const fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(id: u32) -> Self {
        Var(id)
    }
}

/// A source of fresh variables.
///
/// The c-table algebra (difference, the completion constructions, Thm 3's
/// boolean encodings) all need variables guaranteed not to clash with the
/// ones already in play; `VarGen` hands them out monotonically.
///
/// ```
/// use ipdb_logic::VarGen;
/// let mut g = VarGen::new();
/// let a = g.fresh();
/// let b = g.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator starting at `x0`.
    pub fn new() -> Self {
        VarGen { next: 0 }
    }

    /// A generator whose output is disjoint from `used`.
    pub fn avoiding<I: IntoIterator<Item = Var>>(used: I) -> Self {
        let next = used.into_iter().map(|v| v.0 + 1).max().unwrap_or(0);
        VarGen { next }
    }

    /// Mints the next fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next = self.next.checked_add(1).expect("variable ids exhausted");
        v
    }

    /// Mints `n` fresh variables.
    pub fn fresh_n(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// The id the next call to [`fresh`](Self::fresh) will return.
    pub fn peek(&self) -> Var {
        Var(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_monotone_and_distinct() {
        let mut g = VarGen::new();
        let vs = g.fresh_n(5);
        for w in vs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn avoiding_skips_used_ids() {
        let mut g = VarGen::avoiding([Var(3), Var(7), Var(1)]);
        assert_eq!(g.fresh(), Var(8));
    }

    #[test]
    fn avoiding_empty_starts_at_zero() {
        let mut g = VarGen::avoiding([]);
        assert_eq!(g.fresh(), Var(0));
    }

    #[test]
    fn display() {
        assert_eq!(Var(4).to_string(), "x4");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut g = VarGen::new();
        assert_eq!(g.peek(), Var(0));
        assert_eq!(g.fresh(), Var(0));
        assert_eq!(g.peek(), Var(1));
    }
}
