//! Errors for the condition language.

use std::fmt;

use crate::var::Var;

/// Errors raised when evaluating or solving conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicError {
    /// A condition was evaluated under a valuation that does not bind one
    /// of its variables.
    UnboundVar(Var),
    /// A satisfiability query mentioned a variable with no attached
    /// domain.
    MissingDomain(Var),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::UnboundVar(v) => write!(f, "variable {v} is not bound by the valuation"),
            LogicError::MissingDomain(v) => write!(f, "variable {v} has no attached domain"),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LogicError::UnboundVar(Var(1)).to_string().contains("x1"));
        assert!(LogicError::MissingDomain(Var(2)).to_string().contains("x2"));
    }
}
