//! # `ipdb-logic` — the c-table condition language
//!
//! Imieliński–Lipski c-tables attach to each tuple a *condition*: "a
//! boolean combination of equalities involving variables and constants"
//! (paper §2). This crate is that logic, self-contained:
//!
//! * [`Var`] / [`VarGen`] — variables and a fresh-variable source;
//! * [`Term`] — a variable or a constant from the domain `D`;
//! * [`Condition`] — `true | false | t₁ = t₂ | t₁ ≠ t₂ | ¬φ | ⋀φᵢ | ⋁φᵢ`,
//!   with smart constructors, recursive simplification, substitution, and
//!   negation normal form;
//! * [`Valuation`] — (partial) assignments `ν : Var → D`, total evaluation
//!   and *residual* (partial) evaluation — the workhorse of world
//!   enumeration, satisfiability, and the Shannon-expansion probability
//!   engine in `ipdb-prob`;
//! * [`sat`] — satisfiability / validity / equivalence of conditions over
//!   per-variable finite domains (Def. 6's `dom(x)`), by backtracking with
//!   residual pruning.
//!
//! Boolean c-tables (§3) need no special machinery: a boolean variable is
//! a variable whose domain is `{false, true}` and whose atoms compare it
//! with boolean constants ([`Condition::bvar`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condition;
pub mod error;
pub mod sat;
pub mod term;
pub mod valuation;
pub mod var;

#[cfg(feature = "strategies")]
pub mod strategies;

pub use condition::Condition;
pub use error::LogicError;
pub use term::Term;
pub use valuation::Valuation;
pub use var::{Var, VarGen};
