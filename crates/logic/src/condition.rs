//! Conditions: boolean combinations of (in)equalities over terms.
//!
//! This is the language decorating c-table tuples (paper §2): atoms are
//! `t₁ = t₂` / `t₁ ≠ t₂` with terms over variables and constants, closed
//! under `¬`, `∧`, `∨`. The smart constructors perform the local
//! simplifications the c-table algebra relies on to stay readable
//! (constant folding, unit laws, flattening, deduplication, complementary
//! literals), and [`Condition::simplify`] applies them bottom-up.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ipdb_rel::Value;

use crate::term::Term;
use crate::valuation::Valuation;
use crate::var::Var;
use crate::LogicError;

/// A c-table condition.
///
/// Invariant-light by design: any shape is a valid condition; the smart
/// constructors ([`Condition::eq`], [`Condition::and`], …) additionally
/// keep things flattened and folded, and are what the rest of the
/// workspace uses.
///
/// ```
/// use ipdb_logic::{Condition, Term, Var};
/// let (x, y) = (Var(0), Var(1));
/// // x = y ∧ x ≠ 2
/// let c = Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(x, 2)]);
/// assert_eq!(c.vars().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Condition {
    /// Always satisfied (the condition of every v-table tuple).
    True,
    /// Never satisfied.
    False,
    /// `t₁ = t₂`.
    Eq(Term, Term),
    /// `t₁ ≠ t₂`.
    Neq(Term, Term),
    /// `¬φ`.
    Not(Box<Condition>),
    /// `φ₁ ∧ … ∧ φₙ` (empty conjunction = `True`).
    And(Vec<Condition>),
    /// `φ₁ ∨ … ∨ φₙ` (empty disjunction = `False`).
    Or(Vec<Condition>),
}

impl Condition {
    // ------------------------------------------------------------------
    // Smart constructors
    // ------------------------------------------------------------------

    /// `l = r`, constant-folding and canonically ordering the operands.
    pub fn eq(l: impl Into<Term>, r: impl Into<Term>) -> Condition {
        let (l, r) = (l.into(), r.into());
        match (&l, &r) {
            (Term::Const(a), Term::Const(b)) => {
                if a == b {
                    Condition::True
                } else {
                    Condition::False
                }
            }
            _ if l == r => Condition::True,
            _ => {
                if l <= r {
                    Condition::Eq(l, r)
                } else {
                    Condition::Eq(r, l)
                }
            }
        }
    }

    /// `l ≠ r`, constant-folding and canonically ordering the operands.
    pub fn neq(l: impl Into<Term>, r: impl Into<Term>) -> Condition {
        match Condition::eq(l, r) {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Eq(a, b) => Condition::Neq(a, b),
            _ => unreachable!("eq returns True/False/Eq"),
        }
    }

    /// `x = y` between variables.
    pub fn eq_vv(x: Var, y: Var) -> Condition {
        Condition::eq(Term::Var(x), Term::Var(y))
    }

    /// `x ≠ y` between variables.
    pub fn neq_vv(x: Var, y: Var) -> Condition {
        Condition::neq(Term::Var(x), Term::Var(y))
    }

    /// `x = c` between a variable and a constant.
    pub fn eq_vc(x: Var, c: impl Into<Value>) -> Condition {
        Condition::eq(Term::Var(x), Term::Const(c.into()))
    }

    /// `x ≠ c` between a variable and a constant.
    pub fn neq_vc(x: Var, c: impl Into<Value>) -> Condition {
        Condition::neq(Term::Var(x), Term::Const(c.into()))
    }

    /// The positive boolean literal `x = true` (boolean c-tables, §3).
    pub fn bvar(x: Var) -> Condition {
        Condition::eq_vc(x, true)
    }

    /// The negative boolean literal `x = false`.
    pub fn nbvar(x: Var) -> Condition {
        Condition::eq_vc(x, false)
    }

    /// Conjunction: flattens nested `And`s, drops `true`, short-circuits
    /// on `false` and on complementary members, deduplicates.
    pub fn and(parts: impl IntoIterator<Item = Condition>) -> Condition {
        let mut set: BTreeSet<Condition> = BTreeSet::new();
        let mut stack: Vec<Condition> = parts.into_iter().collect();
        // Consume left-to-right so nested Ands flatten.
        stack.reverse();
        while let Some(c) = stack.pop() {
            match c {
                Condition::True => {}
                Condition::False => return Condition::False,
                Condition::And(inner) => {
                    for i in inner.into_iter().rev() {
                        stack.push(i);
                    }
                }
                other => {
                    set.insert(other);
                }
            }
        }
        for c in &set {
            if set.contains(&c.clone().negate()) {
                return Condition::False;
            }
        }
        let mut v: Vec<Condition> = set.into_iter().collect();
        match v.len() {
            0 => Condition::True,
            1 => v.pop().expect("len checked"),
            _ => Condition::And(v),
        }
    }

    /// Disjunction: dual of [`Condition::and`].
    pub fn or(parts: impl IntoIterator<Item = Condition>) -> Condition {
        let mut set: BTreeSet<Condition> = BTreeSet::new();
        let mut stack: Vec<Condition> = parts.into_iter().collect();
        stack.reverse();
        while let Some(c) = stack.pop() {
            match c {
                Condition::False => {}
                Condition::True => return Condition::True,
                Condition::Or(inner) => {
                    for i in inner.into_iter().rev() {
                        stack.push(i);
                    }
                }
                other => {
                    set.insert(other);
                }
            }
        }
        for c in &set {
            if set.contains(&c.clone().negate()) {
                return Condition::True;
            }
        }
        let mut v: Vec<Condition> = set.into_iter().collect();
        match v.len() {
            0 => Condition::False,
            1 => v.pop().expect("len checked"),
            _ => Condition::Or(v),
        }
    }

    /// Negation with local folding: `¬true = false`, `¬(t₁=t₂) = t₁≠t₂`,
    /// `¬¬φ = φ`. Compound negations stay as `Not` (see
    /// [`Condition::nnf`] for full pushing).
    pub fn negate(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Eq(a, b) => Condition::Neq(a, b),
            Condition::Neq(a, b) => Condition::Eq(a, b),
            Condition::Not(c) => *c,
            other => Condition::Not(Box::new(other)),
        }
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The variables occurring in the condition.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Accumulates variables into `out` (avoids re-allocating sets when
    /// scanning whole tables).
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(a, b) | Condition::Neq(a, b) => {
                if let Term::Var(v) = a {
                    out.insert(*v);
                }
                if let Term::Var(v) = b {
                    out.insert(*v);
                }
            }
            Condition::Not(c) => c.collect_vars(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Condition::True | Condition::False | Condition::Eq(..) | Condition::Neq(..) => 1,
            Condition::Not(c) => 1 + c.size(),
            Condition::And(cs) | Condition::Or(cs) => {
                1 + cs.iter().map(Condition::size).sum::<usize>()
            }
        }
    }

    /// Whether this condition is *boolean*: every atom compares a
    /// variable with a boolean constant. These are the conditions of
    /// boolean c-tables (§3) and boolean pc-tables (§8); only they can be
    /// compiled to BDDs directly.
    pub fn is_boolean(&self) -> bool {
        match self {
            Condition::True | Condition::False => true,
            Condition::Eq(a, b) | Condition::Neq(a, b) => matches!(
                (a, b),
                (Term::Var(_), Term::Const(Value::Bool(_)))
                    | (Term::Const(Value::Bool(_)), Term::Var(_))
            ),
            Condition::Not(c) => c.is_boolean(),
            Condition::And(cs) | Condition::Or(cs) => cs.iter().all(Condition::is_boolean),
        }
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluates under a total valuation (errors on unbound variables).
    pub fn eval(&self, nu: &Valuation) -> Result<bool, LogicError> {
        Ok(match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Eq(a, b) => a.eval(nu)? == b.eval(nu)?,
            Condition::Neq(a, b) => a.eval(nu)? != b.eval(nu)?,
            Condition::Not(c) => !c.eval(nu)?,
            Condition::And(cs) => {
                for c in cs {
                    if !c.eval(nu)? {
                        return Ok(false);
                    }
                }
                true
            }
            Condition::Or(cs) => {
                for c in cs {
                    if c.eval(nu)? {
                        return Ok(true);
                    }
                }
                false
            }
        })
    }

    /// Residual evaluation under a partial valuation: bound variables are
    /// substituted and the result folded through the smart constructors.
    ///
    /// `c.partial_eval(ν) == True/False` exactly when every completion of
    /// `ν` (over any domain) agrees — this is what makes backtracking
    /// satisfiability and the Shannon-expansion model counter prune.
    pub fn partial_eval(&self, nu: &Valuation) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Eq(a, b) => Condition::eq(a.partial_eval(nu), b.partial_eval(nu)),
            Condition::Neq(a, b) => Condition::neq(a.partial_eval(nu), b.partial_eval(nu)),
            Condition::Not(c) => c.partial_eval(nu).negate(),
            Condition::And(cs) => Condition::and(cs.iter().map(|c| c.partial_eval(nu))),
            Condition::Or(cs) => Condition::or(cs.iter().map(|c| c.partial_eval(nu))),
        }
    }

    /// Bottom-up re-application of the smart constructors. Sound
    /// (`simplify(c)` is logically equivalent to `c` — property-tested)
    /// but not canonical: equivalence is still checked semantically.
    pub fn simplify(&self) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Eq(a, b) => Condition::eq(a.clone(), b.clone()),
            Condition::Neq(a, b) => Condition::neq(a.clone(), b.clone()),
            Condition::Not(c) => c.simplify().negate(),
            Condition::And(cs) => Condition::and(cs.iter().map(Condition::simplify)),
            Condition::Or(cs) => Condition::or(cs.iter().map(Condition::simplify)),
        }
    }

    /// Negation normal form: `¬` pushed onto atoms (which absorb it as
    /// `≠`/`=`), so the result contains no `Not` nodes at all.
    pub fn nnf(&self) -> Condition {
        fn pos(c: &Condition) -> Condition {
            match c {
                Condition::True => Condition::True,
                Condition::False => Condition::False,
                Condition::Eq(a, b) => Condition::eq(a.clone(), b.clone()),
                Condition::Neq(a, b) => Condition::neq(a.clone(), b.clone()),
                Condition::Not(c) => neg(c),
                Condition::And(cs) => Condition::and(cs.iter().map(pos)),
                Condition::Or(cs) => Condition::or(cs.iter().map(pos)),
            }
        }
        fn neg(c: &Condition) -> Condition {
            match c {
                Condition::True => Condition::False,
                Condition::False => Condition::True,
                Condition::Eq(a, b) => Condition::neq(a.clone(), b.clone()),
                Condition::Neq(a, b) => Condition::eq(a.clone(), b.clone()),
                Condition::Not(c) => pos(c),
                Condition::And(cs) => Condition::or(cs.iter().map(neg)),
                Condition::Or(cs) => Condition::and(cs.iter().map(neg)),
            }
        }
        pos(self)
    }

    /// Applies a substitution `Var → Term` simultaneously.
    pub fn substitute(&self, map: &BTreeMap<Var, Term>) -> Condition {
        let sub_term = |t: &Term| match t {
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        };
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Eq(a, b) => Condition::eq(sub_term(a), sub_term(b)),
            Condition::Neq(a, b) => Condition::neq(sub_term(a), sub_term(b)),
            Condition::Not(c) => c.substitute(map).negate(),
            Condition::And(cs) => Condition::and(cs.iter().map(|c| c.substitute(map))),
            Condition::Or(cs) => Condition::or(cs.iter().map(|c| c.substitute(map))),
        }
    }

    /// Renames variables (injective renamings preserve semantics; used to
    /// keep the two operands of a c-table product variable-disjoint when
    /// callers want fresh copies).
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Condition {
        let term_map: BTreeMap<Var, Term> = map.iter().map(|(k, v)| (*k, Term::Var(*v))).collect();
        self.substitute(&term_map)
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(c: &Condition, f: &mut fmt::Formatter<'_>, parent_compound: bool) -> fmt::Result {
            match c {
                Condition::True => write!(f, "true"),
                Condition::False => write!(f, "false"),
                Condition::Eq(a, b) => write!(f, "{a}={b}"),
                Condition::Neq(a, b) => write!(f, "{a}≠{b}"),
                Condition::Not(inner) => {
                    write!(f, "¬(")?;
                    rec(inner, f, false)?;
                    write!(f, ")")
                }
                Condition::And(cs) => {
                    if parent_compound {
                        write!(f, "(")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        rec(c, f, true)?;
                    }
                    if parent_compound {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Condition::Or(cs) => {
                    if parent_compound {
                        write!(f, "(")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        rec(c, f, true)?;
                    }
                    if parent_compound {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        rec(self, f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var(0)
    }
    fn y() -> Var {
        Var(1)
    }

    #[test]
    fn eq_constant_folds() {
        assert_eq!(
            Condition::eq(Term::constant(1), Term::constant(1)),
            Condition::True
        );
        assert_eq!(
            Condition::eq(Term::constant(1), Term::constant(2)),
            Condition::False
        );
        assert_eq!(
            Condition::eq(Term::var(x()), Term::var(x())),
            Condition::True
        );
        assert_eq!(
            Condition::neq(Term::constant(1), Term::constant(2)),
            Condition::True
        );
    }

    #[test]
    fn eq_orders_operands() {
        let a = Condition::eq(Term::constant(5), Term::var(x()));
        let b = Condition::eq(Term::var(x()), Term::constant(5));
        assert_eq!(a, b);
    }

    #[test]
    fn and_or_unit_laws() {
        let c = Condition::eq_vv(x(), y());
        assert_eq!(Condition::and([Condition::True, c.clone()]), c);
        assert_eq!(
            Condition::and([Condition::False, c.clone()]),
            Condition::False
        );
        assert_eq!(Condition::or([Condition::False, c.clone()]), c);
        assert_eq!(Condition::or([Condition::True, c.clone()]), Condition::True);
        assert_eq!(Condition::and([]), Condition::True);
        assert_eq!(Condition::or([]), Condition::False);
    }

    #[test]
    fn and_flattens_and_dedupes() {
        let c = Condition::eq_vv(x(), y());
        let nested = Condition::and([
            Condition::and([c.clone(), c.clone()]),
            c.clone(),
            Condition::neq_vc(x(), 3),
        ]);
        match nested {
            Condition::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn complementary_literals_short_circuit() {
        let c = Condition::eq_vv(x(), y());
        assert_eq!(
            Condition::and([c.clone(), c.clone().negate()]),
            Condition::False
        );
        assert_eq!(Condition::or([c.clone(), c.negate()]), Condition::True);
    }

    #[test]
    fn negate_folds_atoms() {
        assert_eq!(Condition::True.negate(), Condition::False);
        let e = Condition::eq_vv(x(), y());
        assert_eq!(e.clone().negate(), Condition::neq_vv(x(), y()));
        assert_eq!(e.clone().negate().negate(), e);
        let compound = Condition::and([Condition::eq_vc(x(), 1), Condition::eq_vc(y(), 2)]);
        assert!(matches!(compound.negate(), Condition::Not(_)));
    }

    #[test]
    fn vars_collects_all() {
        let c = Condition::and([Condition::eq_vv(x(), y()), Condition::neq_vc(Var(5), 2)]);
        let vs = c.vars();
        assert_eq!(vs.len(), 3);
        assert!(vs.contains(&Var(5)));
    }

    #[test]
    fn eval_total() {
        let c = Condition::and([Condition::eq_vv(x(), y()), Condition::neq_vc(x(), 9)]);
        let nu = Valuation::from_iter([(x(), Value::from(3)), (y(), Value::from(3))]);
        assert!(c.eval(&nu).unwrap());
        let nu2 = Valuation::from_iter([(x(), Value::from(9)), (y(), Value::from(9))]);
        assert!(!c.eval(&nu2).unwrap());
        let empty = Valuation::new();
        assert_eq!(c.eval(&empty), Err(LogicError::UnboundVar(x())));
    }

    #[test]
    fn partial_eval_folds_bound_parts() {
        let c = Condition::or([Condition::eq_vc(x(), 1), Condition::eq_vc(y(), 2)]);
        let nu = Valuation::from_iter([(x(), Value::from(1))]);
        assert_eq!(c.partial_eval(&nu), Condition::True);
        let nu2 = Valuation::from_iter([(x(), Value::from(0))]);
        assert_eq!(c.partial_eval(&nu2), Condition::eq_vc(y(), 2));
    }

    #[test]
    fn nnf_removes_nots() {
        let c = Condition::Not(Box::new(Condition::And(vec![
            Condition::eq_vv(x(), y()),
            Condition::Not(Box::new(Condition::neq_vc(x(), 1))),
        ])));
        let n = c.nnf();
        fn has_not(c: &Condition) -> bool {
            match c {
                Condition::Not(_) => true,
                Condition::And(cs) | Condition::Or(cs) => cs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&n));
        // ¬(x=y ∧ ¬(x≠1)) = x≠y ∨ x≠1
        assert_eq!(
            n,
            Condition::or([Condition::neq_vv(x(), y()), Condition::neq_vc(x(), 1)])
        );
    }

    #[test]
    fn substitution() {
        let c = Condition::eq_vv(x(), y());
        let map = BTreeMap::from([(x(), Term::constant(3))]);
        assert_eq!(c.substitute(&map), Condition::eq_vc(y(), 3));
        let map2 = BTreeMap::from([(x(), Term::constant(3)), (y(), Term::constant(3))]);
        assert_eq!(c.substitute(&map2), Condition::True);
    }

    #[test]
    fn rename() {
        let c = Condition::eq_vv(x(), y());
        let map = BTreeMap::from([(x(), Var(10)), (y(), Var(11))]);
        assert_eq!(c.rename(&map), Condition::eq_vv(Var(10), Var(11)));
    }

    #[test]
    fn is_boolean() {
        assert!(Condition::bvar(x()).is_boolean());
        assert!(Condition::and([Condition::bvar(x()), Condition::nbvar(y())]).is_boolean());
        assert!(!Condition::eq_vc(x(), 3).is_boolean());
        assert!(!Condition::eq_vv(x(), y()).is_boolean());
        assert!(Condition::True.is_boolean());
    }

    #[test]
    fn size_counts_nodes() {
        let c = Condition::and([Condition::eq_vv(x(), y()), Condition::neq_vc(x(), 1)]);
        assert_eq!(c.size(), 3);
        assert_eq!(Condition::True.size(), 1);
    }

    #[test]
    fn display_paper_style() {
        let c = Condition::And(vec![
            Condition::eq_vv(x(), y()),
            Condition::Or(vec![Condition::neq_vc(x(), 1), Condition::eq_vc(y(), 2)]),
        ]);
        assert_eq!(c.to_string(), "x0=x1 ∧ (x0≠1 ∨ x1=2)");
    }

    #[test]
    fn simplify_is_idempotent_on_examples() {
        let c = Condition::And(vec![
            Condition::True,
            Condition::Or(vec![Condition::False, Condition::eq_vv(x(), y())]),
            Condition::Eq(Term::constant(2), Term::constant(2)),
        ]);
        let s = c.simplify();
        assert_eq!(s, Condition::eq_vv(x(), y()));
        assert_eq!(s.simplify(), s);
    }
}
