//! Boolean c-tables (paper §3, before Theorem 3).
//!
//! The fragment of finite-domain c-tables "where the variables take only
//! boolean values and are only allowed to appear in conditions (never as
//! attribute values)". Despite the restriction they remain *finitely
//! complete* (Thm 3) — and their probabilistic counterpart is *complete*
//! for probabilistic databases (Thm 8). Every p-`?`-table is a restricted
//! boolean (p)c-table (§8).
//!
//! [`BooleanCTable`] is a validated wrapper around [`CTable`]; the
//! invariants are enforced at construction so downstream code (BDD
//! compilation, Thm 8) can rely on them.

use std::fmt;

use ipdb_logic::{Condition, Term, Var, VarGen};
use ipdb_rel::{Domain, IDatabase, Tuple};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::repsys::RepresentationSystem;

/// A boolean c-table: ground tuples, boolean conditions, boolean
/// variable domains.
///
/// ```
/// use ipdb_logic::{Condition, Var};
/// use ipdb_rel::tuple;
/// use ipdb_tables::{BooleanCTable, RepresentationSystem};
/// let mut t = BooleanCTable::new(1);
/// t.push(tuple![1], Condition::bvar(Var(0))).unwrap();
/// t.push(tuple![2], Condition::nbvar(Var(0))).unwrap();
/// // x0=true → {(1)}; x0=false → {(2)}.
/// assert_eq!(t.worlds().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanCTable {
    inner: CTable,
}

impl BooleanCTable {
    /// An empty boolean c-table of the given arity.
    pub fn new(arity: usize) -> Self {
        BooleanCTable {
            inner: CTable::new(arity, vec![]).expect("no rows to check"),
        }
    }

    /// Appends a ground tuple guarded by a boolean condition.
    pub fn push(&mut self, tuple: Tuple, cond: Condition) -> Result<(), TableError> {
        if tuple.arity() != self.inner.arity() {
            return Err(TableError::RowArity {
                expected: self.inner.arity(),
                got: tuple.arity(),
            });
        }
        if !cond.is_boolean() {
            return Err(TableError::NotBoolean(format!(
                "condition {cond} has non-boolean atoms"
            )));
        }
        let vars = cond.vars();
        let mut rows: Vec<CRow> = self.inner.rows().to_vec();
        rows.push(CRow::new(
            tuple.iter().map(|v| Term::Const(v.clone())),
            cond,
        ));
        let mut domains = self.inner.domains().clone();
        for v in vars {
            domains.insert(v, Domain::bools());
        }
        self.inner = CTable::with_domains(self.inner.arity(), rows, domains)?;
        Ok(())
    }

    /// Builds from `(tuple, condition)` pairs.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = (Tuple, Condition)>,
    ) -> Result<Self, TableError> {
        let mut t = BooleanCTable::new(arity);
        for (tup, cond) in rows {
            t.push(tup, cond)?;
        }
        Ok(t)
    }

    /// Validates an arbitrary c-table as boolean: ground tuples, boolean
    /// conditions, boolean domains for all variables.
    pub fn from_ctable(t: CTable) -> Result<Self, TableError> {
        for row in t.rows() {
            if !row.is_ground() {
                return Err(TableError::NotBoolean(format!(
                    "tuple {:?} contains variables",
                    row.tuple
                )));
            }
            if !row.cond.is_boolean() {
                return Err(TableError::NotBoolean(format!(
                    "condition {} has non-boolean atoms",
                    row.cond
                )));
            }
        }
        let mut t = t;
        for v in t.vars() {
            match t.domains().get(&v) {
                None => t.set_domain(v, Domain::bools())?,
                Some(d) if *d == Domain::bools() => {}
                Some(d) => {
                    return Err(TableError::NotBoolean(format!(
                        "variable {v} has non-boolean domain {d}"
                    )))
                }
            }
        }
        Ok(BooleanCTable { inner: t })
    }

    /// The underlying c-table.
    pub fn as_ctable(&self) -> &CTable {
        &self.inner
    }

    /// Consumes the wrapper.
    pub fn into_ctable(self) -> CTable {
        self.inner
    }

    /// The boolean variables in use.
    pub fn vars(&self) -> std::collections::BTreeSet<Var> {
        self.inner.vars()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[CRow] {
        self.inner.rows()
    }
}

impl RepresentationSystem for BooleanCTable {
    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        self.inner.mod_finite()
    }

    fn to_ctable(&self, _gen: &mut VarGen) -> Result<CTable, TableError> {
        Ok(self.inner.clone())
    }
}

impl fmt::Display for BooleanCTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "boolean {}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::{t_const, t_var};
    use ipdb_rel::{instance, tuple};

    #[test]
    fn push_validates() {
        let mut t = BooleanCTable::new(1);
        assert!(t.push(tuple![1, 2], Condition::True).is_err());
        assert!(matches!(
            t.push(tuple![1], Condition::eq_vc(Var(0), 3)),
            Err(TableError::NotBoolean(_))
        ));
        assert!(t.push(tuple![1], Condition::bvar(Var(0))).is_ok());
    }

    #[test]
    fn from_ctable_rejects_variables_in_tuples() {
        let x = Var(0);
        let c = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .domain(x, Domain::bools())
            .build()
            .unwrap();
        assert!(matches!(
            BooleanCTable::from_ctable(c),
            Err(TableError::NotBoolean(_))
        ));
    }

    #[test]
    fn from_ctable_rejects_wrong_domain() {
        let x = Var(0);
        let c = CTable::builder(1)
            .row([t_const(1)], Condition::bvar(x))
            .domain(x, Domain::ints(0..=1))
            .build()
            .unwrap();
        assert!(matches!(
            BooleanCTable::from_ctable(c),
            Err(TableError::NotBoolean(_))
        ));
    }

    #[test]
    fn from_ctable_fills_missing_domains() {
        let x = Var(0);
        let c = CTable::builder(1)
            .row([t_const(1)], Condition::bvar(x))
            .build()
            .unwrap();
        let b = BooleanCTable::from_ctable(c).unwrap();
        assert_eq!(b.as_ctable().domains()[&x], Domain::bools());
    }

    #[test]
    fn worlds_of_mutually_exclusive_rows() {
        let x = Var(0);
        let t = BooleanCTable::from_rows(
            1,
            [
                (tuple![1], Condition::bvar(x)),
                (tuple![2], Condition::nbvar(x)),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&instance![[1]]));
        assert!(w.contains(&instance![[2]]));
    }

    #[test]
    fn shared_variables_correlate_rows() {
        let (x, y) = (Var(0), Var(1));
        let t = BooleanCTable::from_rows(
            1,
            [
                (
                    tuple![1],
                    Condition::and([Condition::bvar(x), Condition::bvar(y)]),
                ),
                (tuple![2], Condition::bvar(x)),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        // x=F: {} ; x=T,y=F: {2}; x=T,y=T: {1,2}
        assert_eq!(w.len(), 3);
        assert!(w.contains(&instance![[1], [2]]));
        assert!(!w.contains(&instance![[1]]));
    }
}
