//! c-tables with global conditions (the \[17\] variant the paper's §9
//! lists as not-considered; implemented here as an extension).
//!
//! A *global* condition `Φ` filters valuations before they produce
//! worlds: `Mod(T, Φ) = { ν(T) | ν ⊨ Φ }`. Globals add real power over
//! plain c-tables in one specific way: they can make the set of worlds
//! *smaller than any row-local filtering can* — e.g. force every world
//! to satisfy a constraint tying rows together — while staying closed
//! under the same algebra `q̄` (the global is untouched by row-level
//! operations). The embedding [`GlobalCTable::to_ctable`] shows plain
//! c-tables simulate satisfiable globals by conjoining `Φ` onto every
//! row *when the empty world is acceptable*; the difference surfaces
//! exactly when `Φ` is unsatisfiable or when `ν ⊭ Φ` should yield *no*
//! world rather than the empty one — which is why Grahne \[17\] treats
//! globals as a separate device.

use std::fmt;

use ipdb_logic::{Condition, Valuation};
use ipdb_rel::{Domain, IDatabase, Query, Tuple};

use crate::ctable::CTable;
use crate::error::TableError;

/// A c-table together with a global condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalCTable {
    table: CTable,
    global: Condition,
}

impl GlobalCTable {
    /// Wraps a c-table with a global condition.
    pub fn new(table: CTable, global: Condition) -> Self {
        GlobalCTable { table, global }
    }

    /// The underlying c-table.
    pub fn table(&self) -> &CTable {
        &self.table
    }

    /// The global condition `Φ`.
    pub fn global(&self) -> &Condition {
        &self.global
    }

    /// All variables (table + global).
    pub fn vars(&self) -> std::collections::BTreeSet<ipdb_logic::Var> {
        let mut vs = self.table.vars();
        self.global.collect_vars(&mut vs);
        vs
    }

    /// `ν(T)` under the global: `None` when `ν ⊭ Φ` (the valuation is
    /// ruled out entirely).
    pub fn apply_valuation(
        &self,
        nu: &Valuation,
    ) -> Result<Option<ipdb_rel::Instance>, TableError> {
        if !self.global.eval(nu).map_err(TableError::Logic)? {
            return Ok(None);
        }
        Ok(Some(self.table.apply_valuation(nu)?))
    }

    /// `Mod(T, Φ)` over a finite slice (declared finite domains take
    /// precedence, as for plain c-tables). May be *empty* — the one
    /// thing plain c-tables can never express.
    pub fn mod_over(&self, slice: &Domain) -> Result<IDatabase, TableError> {
        let mut doms = self.table.effective_domains(slice);
        for v in self.global.vars() {
            doms.entry(v).or_insert_with(|| slice.clone());
        }
        for (v, d) in &doms {
            if d.is_empty() {
                return Err(TableError::EmptyDomain(*v));
            }
        }
        let mut out = IDatabase::empty(self.table.arity());
        for nu in Valuation::all_over(&doms) {
            if let Some(world) = self.apply_valuation(&nu)? {
                out.insert(world)?;
            }
        }
        Ok(out)
    }

    /// Closure under RA: `q̄` acts on the rows, the global rides along
    /// (Lemma 1 extends: `ν(q̄(T), Φ) = q(ν(T, Φ))` for `ν ⊨ Φ`, and
    /// both sides are undefined otherwise).
    pub fn eval_query(&self, q: &Query) -> Result<GlobalCTable, TableError> {
        Ok(GlobalCTable {
            table: self.table.eval_query(q)?,
            global: self.global.clone(),
        })
    }

    /// The plain-c-table simulation: conjoin `Φ` onto every row. Sound
    /// for world *contents*, but the simulation maps "ν ruled out" to
    /// "ν yields the empty world": `Mod` of the result equals
    /// `Mod(T, Φ) ∪ {∅}` whenever some valuation violates `Φ`.
    pub fn to_ctable(&self) -> CTable {
        let rows = self
            .table
            .rows()
            .iter()
            .map(|r| {
                crate::ctable::CRow::new(
                    r.tuple.iter().cloned(),
                    Condition::and([self.global.clone(), r.cond.clone()]),
                )
            })
            .collect();
        CTable::with_domains(self.table.arity(), rows, self.table.domains().clone())
            .expect("same arities and domains")
    }

    /// Certain membership of `t` over the slice (∅ of worlds ⇒ nothing
    /// is certain, by convention).
    pub fn certain_tuple_over(&self, t: &Tuple, slice: &Domain) -> Result<bool, TableError> {
        Ok(self.mod_over(slice)?.is_certain(t))
    }
}

impl fmt::Display for GlobalCTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} global: {}", self.table, self.global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::{t_const, t_var};
    use ipdb_logic::Var;
    use ipdb_rel::instance;

    fn xy() -> (Var, Var) {
        (Var(0), Var(1))
    }

    #[test]
    fn global_filters_valuations() {
        let (x, y) = xy();
        let t = CTable::builder(2)
            .row([t_var(x), t_var(y)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .domain(y, Domain::ints(1..=2))
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::neq_vv(x, y));
        let worlds = g.mod_over(&Domain::empty()).unwrap();
        // Only x≠y valuations survive: {(1,2)}, {(2,1)}.
        assert_eq!(worlds.len(), 2);
        assert!(worlds.contains(&instance![[1, 2]]));
        assert!(worlds.contains(&instance![[2, 1]]));
    }

    #[test]
    fn unsatisfiable_global_empties_mod() {
        let (x, _) = xy();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::False);
        // No worlds at all — inexpressible by any plain c-table.
        assert_eq!(g.mod_over(&Domain::empty()).unwrap().len(), 0);
    }

    #[test]
    fn simulation_differs_exactly_by_empty_world() {
        let (x, y) = xy();
        let t = CTable::builder(2)
            .row([t_var(x), t_var(y)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .domain(y, Domain::ints(1..=2))
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::neq_vv(x, y));
        let simulated = g.to_ctable().mod_finite().unwrap();
        let real = g.mod_over(&Domain::empty()).unwrap();
        // Simulation = real worlds plus the empty world (from ν ⊭ Φ).
        assert_eq!(simulated.len(), real.len() + 1);
        assert!(simulated.contains(&ipdb_rel::Instance::empty(2)));
        for w in real.iter() {
            assert!(simulated.contains(w));
        }
    }

    #[test]
    fn closure_keeps_global() {
        let (x, y) = xy();
        let t = CTable::builder(2)
            .row([t_var(x), t_var(y)], Condition::True)
            .row([t_const(9), t_var(x)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .domain(y, Domain::ints(1..=2))
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::neq_vv(x, y));
        let q = Query::project(Query::Input, vec![1]);
        let answered = g.eval_query(&q).unwrap();
        assert_eq!(answered.global(), g.global());
        // Worldwise image agrees.
        let lhs = answered.mod_over(&Domain::empty()).unwrap();
        let rhs = q.eval_idb(&g.mod_over(&Domain::empty()).unwrap()).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn global_with_fresh_vars_only_in_global() {
        // A global over a variable absent from the table: acts as a
        // side-constraint; with dom {1,2} and Φ: z=1, half the
        // valuations survive but the worlds coincide.
        let (x, _) = xy();
        let z = Var(7);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::eq_vc(z, 1));
        let worlds = g.mod_over(&Domain::ints(1..=2)).unwrap();
        assert_eq!(worlds.len(), 2);
    }

    #[test]
    fn display_mentions_global() {
        let (x, _) = xy();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let g = GlobalCTable::new(t, Condition::neq_vc(x, 3));
        assert!(g.to_string().contains("global: x0≠3"));
    }
}
