//! The c-table algebra `q̄` (Imieliński–Lipski; paper Theorem 4).
//!
//! For each relational operation `u` there is an operation `ū` on
//! c-tables such that (Lemma 1) `ν(q̄(T)) = q(ν(T))` for every valuation
//! `ν`, hence `Mod(q̄(T)) = q(Mod(T))`: c-tables are **closed** under the
//! full relational algebra. The definitions implemented here are the ones
//! the paper spells out in the proof of Theorem 4:
//!
//! * projection merges coinciding projected rows by disjoining their
//!   conditions;
//! * selection conjoins `c(t)` — the selection predicate instantiated on
//!   the row's *terms* — onto the row condition;
//! * cross product / union combine rows pairwise / by concatenation;
//! * difference ("handled similarly") conjoins, for every row `s` of the
//!   subtrahend, `¬ψ_s ∨ t ≠ s`, where `t ≠ s` is the disjunction of
//!   component-wise inequalities; intersection is the dual.
//!
//! Lemma 1 is enforced by property tests (`strategies` module and the
//! crate's integration tests).

use std::collections::BTreeMap;

use ipdb_logic::Condition;
use ipdb_logic::Term;
use ipdb_rel::{CmpOp, Instance, Operand, Pred, Query, RelError};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;

/// Instantiates a selection predicate on a row of terms, producing the
/// condition `c(t)` of the paper's `σ̄`: column references become the
/// row's terms, comparisons become condition atoms.
///
/// For ground rows this folds to `true`/`false`; for rows with variables
/// it is "in general a boolean formula on constants and variables"
/// (paper, proof of Thm 4).
pub fn pred_on_terms(pred: &Pred, tuple: &[Term]) -> Result<Condition, TableError> {
    let operand = |o: &Operand| -> Result<Term, TableError> {
        match o {
            Operand::Col(c) => {
                tuple
                    .get(*c)
                    .cloned()
                    .ok_or(TableError::Rel(RelError::ColumnOutOfRange {
                        col: *c,
                        arity: tuple.len(),
                    }))
            }
            Operand::Const(v) => Ok(Term::Const(v.clone())),
        }
    };
    Ok(match pred {
        Pred::True => Condition::True,
        Pred::False => Condition::False,
        Pred::Cmp(op, l, r) => {
            let (l, r) = (operand(l)?, operand(r)?);
            match op {
                CmpOp::Eq => Condition::eq(l, r),
                CmpOp::Neq => Condition::neq(l, r),
            }
        }
        Pred::And(ps) => Condition::and(
            ps.iter()
                .map(|p| pred_on_terms(p, tuple))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Pred::Or(ps) => Condition::or(
            ps.iter()
                .map(|p| pred_on_terms(p, tuple))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Pred::Not(p) => pred_on_terms(p, tuple)?.negate(),
    })
}

/// The condition `t = s` between two term tuples: component-wise
/// conjunction of equalities (used by `∩̄`).
pub fn tuples_eq(t: &[Term], s: &[Term]) -> Condition {
    Condition::and(
        t.iter()
            .zip(s.iter())
            .map(|(a, b)| Condition::eq(a.clone(), b.clone())),
    )
}

/// The condition `t ≠ s`: component-wise disjunction of inequalities
/// (used by `−̄`).
pub fn tuples_neq(t: &[Term], s: &[Term]) -> Condition {
    Condition::or(
        t.iter()
            .zip(s.iter())
            .map(|(a, b)| Condition::neq(a.clone(), b.clone())),
    )
}

impl CTable {
    /// `π̄_cols(T)`: projected rows, with coinciding projections merged
    /// under the disjunction of their conditions.
    pub fn project_bar(&self, cols: &[usize]) -> Result<CTable, TableError> {
        for &c in cols {
            if c >= self.arity() {
                return Err(TableError::Rel(RelError::ColumnOutOfRange {
                    col: c,
                    arity: self.arity(),
                }));
            }
        }
        // Group by projected term tuple, preserving first-seen order for
        // readable output.
        let mut order: Vec<Vec<Term>> = Vec::new();
        let mut groups: BTreeMap<Vec<Term>, Vec<Condition>> = BTreeMap::new();
        for row in self.rows() {
            let proj: Vec<Term> = cols.iter().map(|&c| row.tuple[c].clone()).collect();
            match groups.get_mut(&proj) {
                Some(conds) => conds.push(row.cond.clone()),
                None => {
                    order.push(proj.clone());
                    groups.insert(proj, vec![row.cond.clone()]);
                }
            }
        }
        let rows = order
            .into_iter()
            .map(|proj| {
                let conds = groups.remove(&proj).expect("grouped above");
                CRow::new(proj, Condition::or(conds))
            })
            .collect();
        CTable::with_domains(cols.len(), rows, self.domains().clone())
    }

    /// `σ̄_p(T)`: each row keeps its tuple, with `p` instantiated on the
    /// row's terms conjoined onto its condition.
    pub fn select_bar(&self, pred: &Pred) -> Result<CTable, TableError> {
        let rows = self
            .rows()
            .iter()
            .map(|row| {
                let c = pred_on_terms(pred, &row.tuple)?;
                Ok(CRow::new(
                    row.tuple.iter().cloned(),
                    Condition::and([row.cond.clone(), c]),
                ))
            })
            .collect::<Result<Vec<_>, TableError>>()?;
        CTable::with_domains(self.arity(), rows, self.domains().clone())
    }

    /// The **ground columns** of this table: columns whose entry is a
    /// constant in *every* row. This is the ground/symbolic column
    /// partition of the columnar execution core — the ground prefix of a
    /// c-table behaves exactly like a conventional relation, so it can be
    /// handed to `ipdb-rel`'s columnar kernels, while symbolic columns
    /// (those containing at least one variable) stay on the
    /// condition-composing term path.
    pub fn ground_columns(&self) -> Vec<usize> {
        (0..self.arity())
            .filter(|&c| {
                self.rows()
                    .iter()
                    .all(|r| matches!(r.tuple[c], Term::Const(_)))
            })
            .collect()
    }

    /// A columnar view of the given (all-ground) columns, one row per
    /// c-table row in row order; `None` if any requested column holds a
    /// variable anywhere (or is out of range).
    pub fn ground_column_view(&self, cols: &[usize]) -> Option<ipdb_rel::ColumnarInstance> {
        let arity = self.arity();
        let mut columns: Vec<Vec<ipdb_rel::Value>> = Vec::with_capacity(cols.len());
        for &c in cols {
            if c >= arity {
                return None;
            }
            let mut col = Vec::with_capacity(self.len());
            for r in self.rows() {
                match &r.tuple[c] {
                    Term::Const(v) => col.push(v.clone()),
                    Term::Var(_) => return None,
                }
            }
            columns.push(col);
        }
        ipdb_rel::ColumnarInstance::from_columns(columns, self.len()).ok()
    }

    /// `σ̄_p(T)` with a vectorized fast path: when `p` touches only
    /// ground columns, `c(t)` is a concrete boolean per row, so the
    /// predicate is evaluated as one columnar mask over the ground
    /// column view and rows failing it are dropped outright (their
    /// conjoined condition would fold to `false`), with the surviving
    /// rows' conditions left untouched. Otherwise falls back to
    /// [`CTable::select_bar`].
    ///
    /// Equivalent to `select_bar` *up to condition simplification*: the
    /// fast path skips the `cond ∧ true` wrappers the term path
    /// produces, so callers that prune intermediates (the engine's
    /// executor passes every result through
    /// [`CTable::simplified`] + [`CTable::without_false_rows`]) get
    /// byte-identical tables from either path.
    pub fn select_bar_vectorized(&self, pred: &Pred) -> Result<CTable, TableError> {
        let cols: Vec<usize> = pred.referenced_cols().into_iter().collect();
        let Some(view) = self.ground_column_view(&cols) else {
            return self.select_bar(pred);
        };
        // Compact the predicate onto the gathered columns. `cols` is
        // sorted (BTreeSet order), so this is a binary-searchable map.
        let compact = pred.map_cols(|c| {
            cols.binary_search(&c)
                .expect("referenced_cols listed every referenced column")
        });
        let mask = view.eval_mask(&compact)?;
        let rows = self
            .rows()
            .iter()
            .zip(mask)
            .filter(|(_, keep)| *keep)
            .map(|(r, _)| r.clone())
            .collect();
        CTable::with_domains(self.arity(), rows, self.domains().clone())
    }

    /// `T₁ ×̄ T₂`: pairwise concatenation, conditions conjoined.
    ///
    /// The operands share the variable space (both descend from the same
    /// input table, as in `q̄`); shared variables are *the same
    /// variable*, which is exactly what Lemma 1 needs.
    pub fn product_bar(&self, other: &CTable) -> Result<CTable, TableError> {
        let domains = CTable::merge_domains(self.domains(), other.domains())?;
        let mut rows = Vec::with_capacity(self.len() * other.len());
        for r1 in self.rows() {
            for r2 in other.rows() {
                let mut tuple = Vec::with_capacity(self.arity() + other.arity());
                tuple.extend(r1.tuple.iter().cloned());
                tuple.extend(r2.tuple.iter().cloned());
                rows.push(CRow::new(
                    tuple,
                    Condition::and([r1.cond.clone(), r2.cond.clone()]),
                ));
            }
        }
        CTable::with_domains(self.arity() + other.arity(), rows, domains)
    }

    /// `T₁ ⋈̄ T₂`: the c-table equijoin, semantically
    /// `σ̄_{⋀ #i=#j ∧ residual}(T₁ ×̄ T₂)` but executed with build-side
    /// hashing wherever the key columns are *ground*.
    ///
    /// Rows whose key columns are all constants can be bucketed by key
    /// value: pairing two ground-key rows with unequal keys would produce
    /// a row whose instantiated key condition is `false` — a row that
    /// holds in no possible world — so the hash join's skipping of those
    /// pairs is exactly the `simplified().without_false_rows()` pruning
    /// done eagerly, and Lemma 1 is preserved. Rows with a *variable* in
    /// some key column fall back to condition-conjunction pairing: they
    /// are paired with every row of the other side and the key equalities
    /// are instantiated on the terms (via [`pred_on_terms`]) and conjoined
    /// onto the row condition, just as `σ̄` would.
    pub fn join_bar(
        &self,
        other: &CTable,
        on: &[(usize, usize)],
        residual: Option<&Pred>,
    ) -> Result<CTable, TableError> {
        use ipdb_rel::Value;
        use std::collections::HashMap;

        let (la, lb) = (self.arity(), other.arity());
        let total = la + lb;
        let domains = CTable::merge_domains(self.domains(), other.domains())?;
        // The shared normalization `Instance::equijoin` uses: spanning
        // pairs become (left col, right-local col) hash keys, the rest
        // fold into the residual filter.
        let (keys, extra) =
            ipdb_rel::normalize_join_keys(on, la, total).map_err(TableError::Rel)?;
        if let Some(p) = residual {
            p.validate(total).map_err(TableError::Rel)?;
        }
        let filter = Pred::conj_all(extra.into_iter().chain(residual.cloned()));

        let mut rows: Vec<CRow> = Vec::new();
        let mut pair = |r1: &CRow, r2: &CRow, keys_known_equal: bool| -> Result<(), TableError> {
            let mut tuple = Vec::with_capacity(total);
            tuple.extend(r1.tuple.iter().cloned());
            tuple.extend(r2.tuple.iter().cloned());
            let mut cond = vec![r1.cond.clone(), r2.cond.clone()];
            if !keys_known_equal {
                for &(i, j) in &keys {
                    cond.push(Condition::eq(tuple[i].clone(), tuple[la + j].clone()));
                }
            }
            if filter != Pred::True {
                cond.push(pred_on_terms(&filter, &tuple)?);
            }
            rows.push(CRow::new(tuple, Condition::and(cond)));
            Ok(())
        };

        let ground_key = |row: &CRow, cols: &dyn Fn(&(usize, usize)) -> usize| {
            keys.iter()
                .map(|k| match &row.tuple[cols(k)] {
                    Term::Const(v) => Some(v.clone()),
                    Term::Var(_) => None,
                })
                .collect::<Option<Vec<Value>>>()
        };
        // Build side: bucket ground-key right rows; keep variable-key
        // rows aside for the fallback pairing.
        let mut index: HashMap<Vec<Value>, Vec<&CRow>> = HashMap::new();
        let mut var_right: Vec<&CRow> = Vec::new();
        for r2 in other.rows() {
            match ground_key(r2, &|&(_, j)| j) {
                Some(key) => index.entry(key).or_default().push(r2),
                None => var_right.push(r2),
            }
        }
        for r1 in self.rows() {
            match ground_key(r1, &|&(i, _)| i) {
                Some(key) => {
                    // Ground × ground: hash probe, keys equal by
                    // construction. Ground × variable-key: fall back.
                    if let Some(matches) = index.get(&key) {
                        for r2 in matches {
                            pair(r1, r2, true)?;
                        }
                    }
                    for r2 in &var_right {
                        pair(r1, r2, false)?;
                    }
                }
                None => {
                    // Variable-key left rows pair with *every* right row.
                    for r2 in other.rows() {
                        pair(r1, r2, false)?;
                    }
                }
            }
        }
        CTable::with_domains(total, rows, domains)
    }

    /// `T₁ ∪̄ T₂`: row concatenation.
    pub fn union_bar(&self, other: &CTable) -> Result<CTable, TableError> {
        if self.arity() != other.arity() {
            return Err(TableError::Rel(RelError::ArityMismatch {
                expected: self.arity(),
                got: other.arity(),
            }));
        }
        let domains = CTable::merge_domains(self.domains(), other.domains())?;
        let mut rows = Vec::with_capacity(self.len() + other.len());
        rows.extend(self.rows().iter().cloned());
        rows.extend(other.rows().iter().cloned());
        CTable::with_domains(self.arity(), rows, domains)
    }

    /// `T₁ −̄ T₂`: each row `(t : φ)` of `T₁` survives exactly when no
    /// row of `T₂` matches it, i.e. under
    /// `φ ∧ ⋀_{(s:ψ) ∈ T₂} (¬ψ ∨ t ≠ s)`.
    pub fn diff_bar(&self, other: &CTable) -> Result<CTable, TableError> {
        if self.arity() != other.arity() {
            return Err(TableError::Rel(RelError::ArityMismatch {
                expected: self.arity(),
                got: other.arity(),
            }));
        }
        let domains = CTable::merge_domains(self.domains(), other.domains())?;
        let rows = self
            .rows()
            .iter()
            .map(|r1| {
                let guards = other.rows().iter().map(|r2| {
                    Condition::or([r2.cond.clone().negate(), tuples_neq(&r1.tuple, &r2.tuple)])
                });
                CRow::new(
                    r1.tuple.iter().cloned(),
                    Condition::and(std::iter::once(r1.cond.clone()).chain(guards)),
                )
            })
            .collect();
        CTable::with_domains(self.arity(), rows, domains)
    }

    /// `T₁ ∩̄ T₂`: each row `(t : φ)` of `T₁` survives exactly when some
    /// row of `T₂` matches it, i.e. under
    /// `φ ∧ ⋁_{(s:ψ) ∈ T₂} (ψ ∧ t = s)`.
    pub fn intersect_bar(&self, other: &CTable) -> Result<CTable, TableError> {
        if self.arity() != other.arity() {
            return Err(TableError::Rel(RelError::ArityMismatch {
                expected: self.arity(),
                got: other.arity(),
            }));
        }
        let domains = CTable::merge_domains(self.domains(), other.domains())?;
        let rows =
            self.rows()
                .iter()
                .map(|r1| {
                    let hits = other.rows().iter().map(|r2| {
                        Condition::and([r2.cond.clone(), tuples_eq(&r1.tuple, &r2.tuple)])
                    });
                    CRow::new(
                        r1.tuple.iter().cloned(),
                        Condition::and([r1.cond.clone(), Condition::or(hits)]),
                    )
                })
                .collect();
        CTable::with_domains(self.arity(), rows, domains)
    }

    /// The translation `q ↦ q̄` applied to this table: evaluates the
    /// whole query in the c-table algebra (`Lit` nodes become ground
    /// subtables, `Input` is `self`).
    pub fn eval_query(&self, q: &Query) -> Result<CTable, TableError> {
        Ok(match q {
            Query::Input => self.clone(),
            Query::Second => return Err(TableError::Rel(ipdb_rel::RelError::NoSecondInput)),
            // Single-table context: named relations have nothing to bind
            // to (the engine's catalog executor resolves them).
            Query::Rel(name) => {
                return Err(TableError::Rel(ipdb_rel::RelError::UnknownRelation {
                    name: name.clone(),
                }))
            }
            Query::Lit(i) => lit_table(i, self)?,
            Query::Project(cols, q) => self.eval_query(q)?.project_bar(cols)?,
            Query::Select(p, q) => self.eval_query(q)?.select_bar(p)?,
            Query::Product(a, b) => self.eval_query(a)?.product_bar(&self.eval_query(b)?)?,
            Query::Join {
                on,
                residual,
                left,
                right,
            } => {
                self.eval_query(left)?
                    .join_bar(&self.eval_query(right)?, on, residual.as_ref())?
            }
            Query::Union(a, b) => self.eval_query(a)?.union_bar(&self.eval_query(b)?)?,
            Query::Diff(a, b) => self.eval_query(a)?.diff_bar(&self.eval_query(b)?)?,
            Query::Intersect(a, b) => self.eval_query(a)?.intersect_bar(&self.eval_query(b)?)?,
        })
    }

    /// A copy with every row condition simplified (the algebra's smart
    /// constructors already fold; this re-folds after composition).
    pub fn simplified(&self) -> CTable {
        let rows = self
            .rows()
            .iter()
            .map(|r| CRow::new(r.tuple.iter().cloned(), r.cond.simplify()))
            .collect();
        CTable::with_domains(self.arity(), rows, self.domains().clone())
            .expect("same arities and domains")
    }

    /// A copy without rows whose condition is syntactically `false`
    /// (sound cleanup after `−̄`/`σ̄`).
    pub fn without_false_rows(&self) -> CTable {
        let rows = self
            .rows()
            .iter()
            .filter(|r| r.cond != Condition::False)
            .cloned()
            .collect();
        CTable::with_domains(self.arity(), rows, self.domains().clone())
            .expect("same arities and domains")
    }
}

/// A constant relation literal as a ground c-table, carrying the host
/// table's domain declarations so later merges cannot conflict.
fn lit_table(i: &Instance, host: &CTable) -> Result<CTable, TableError> {
    let mut t = CTable::from_instance(i);
    for (v, d) in host.domains() {
        t.set_domain(*v, d.clone())?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::{t_const, t_var};
    use ipdb_logic::{Valuation, Var};
    use ipdb_rel::{instance, Domain, Value};

    fn sample() -> CTable {
        let (x, y) = (Var(0), Var(1));
        CTable::builder(2)
            .row([t_const(1), t_var(x)], Condition::True)
            .row([t_var(x), t_var(y)], Condition::neq_vv(x, y))
            .build()
            .unwrap()
    }

    fn nu(x: i64, y: i64) -> Valuation {
        Valuation::from_iter([(Var(0), Value::from(x)), (Var(1), Value::from(y))])
    }

    #[test]
    fn pred_on_terms_grounds_and_folds() {
        let terms = [t_const(1), t_var(Var(0))];
        let p = Pred::eq_const(0, 1);
        assert_eq!(pred_on_terms(&p, &terms).unwrap(), Condition::True);
        let p2 = Pred::eq_cols(0, 1);
        assert_eq!(
            pred_on_terms(&p2, &terms).unwrap(),
            Condition::eq_vc(Var(0), 1)
        );
        let bad = Pred::eq_cols(0, 9);
        assert!(pred_on_terms(&bad, &terms).is_err());
    }

    #[test]
    fn lemma1_projection() {
        let t = sample();
        let q = Query::project(Query::Input, vec![1]);
        let qt = t.eval_query(&q).unwrap();
        for v in [nu(1, 2), nu(2, 2), nu(3, 7)] {
            assert_eq!(
                qt.apply_valuation(&v).unwrap(),
                q.eval(&t.apply_valuation(&v).unwrap()).unwrap()
            );
        }
    }

    #[test]
    fn projection_merges_conditions_disjunctively() {
        let (x, y) = (Var(0), Var(1));
        let t = CTable::builder(2)
            .row([t_const(1), t_var(x)], Condition::eq_vc(y, 1))
            .row([t_const(2), t_var(x)], Condition::eq_vc(y, 2))
            .build()
            .unwrap();
        let p = t.project_bar(&[1]).unwrap();
        assert_eq!(p.len(), 1); // both rows project to (x)
        assert_eq!(
            p.rows()[0].cond,
            Condition::or([Condition::eq_vc(y, 1), Condition::eq_vc(y, 2)])
        );
    }

    #[test]
    fn lemma1_selection() {
        let t = sample();
        let q = Query::select(Query::Input, Pred::eq_const(0, 1));
        let qt = t.eval_query(&q).unwrap();
        for v in [nu(1, 2), nu(2, 1), nu(5, 5)] {
            assert_eq!(
                qt.apply_valuation(&v).unwrap(),
                q.eval(&t.apply_valuation(&v).unwrap()).unwrap()
            );
        }
    }

    #[test]
    fn ground_columns_partition() {
        let t = sample();
        // Column 0 holds t_var(x) in row 2, column 1 holds variables in
        // both rows — only fully-constant columns are ground.
        assert_eq!(t.ground_columns(), Vec::<usize>::new());
        let g = CTable::builder(2)
            .row([t_const(1), t_var(Var(0))], Condition::True)
            .row([t_const(2), t_var(Var(1))], Condition::True)
            .build()
            .unwrap();
        assert_eq!(g.ground_columns(), vec![0]);
        assert!(g.ground_column_view(&[0]).is_some());
        assert!(g.ground_column_view(&[1]).is_none());
        assert!(g.ground_column_view(&[9]).is_none());
        let view = g.ground_column_view(&[0]).unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view.value(1, 0), &Value::from(2));
    }

    #[test]
    fn select_bar_vectorized_agrees_with_term_path_after_pruning() {
        let (x, y) = (Var(0), Var(1));
        let t = CTable::builder(2)
            .row([t_const(1), t_var(x)], Condition::eq_vc(y, 1))
            .row([t_const(2), t_var(x)], Condition::True)
            .row([t_const(3), t_var(y)], Condition::neq_vv(x, y))
            .build()
            .unwrap();
        // Ground-only predicate: vectorized path drops row 1 outright.
        let p = Pred::neq_const(0, 1);
        let fast = t.select_bar_vectorized(&p).unwrap();
        let slow = t.select_bar(&p).unwrap();
        assert_eq!(
            fast.simplified().without_false_rows(),
            slow.simplified().without_false_rows()
        );
        assert_eq!(fast.len(), 2);
        // Conditions of surviving rows are untouched (no ∧true wrapper).
        assert_eq!(fast.rows()[0].cond, Condition::True);
        // Predicate touching a symbolic column falls back to the term
        // path — results are identical, conditions composed.
        let sym = Pred::eq_cols(0, 1);
        assert_eq!(
            t.select_bar_vectorized(&sym).unwrap(),
            t.select_bar(&sym).unwrap()
        );
        // Column-free predicates vectorize trivially.
        assert!(t.select_bar_vectorized(&Pred::False).unwrap().is_empty());
        assert_eq!(t.select_bar_vectorized(&Pred::True).unwrap().len(), 3);
        // Out-of-range predicates keep the term path's per-row error
        // behavior (errors only when rows exist).
        assert!(t.select_bar_vectorized(&Pred::eq_cols(0, 9)).is_err());
        let empty = CTable::new(2, Vec::new()).unwrap();
        assert!(empty.select_bar_vectorized(&Pred::eq_cols(0, 9)).is_ok());
    }

    #[test]
    fn lemma1_product_shares_variables() {
        let t = sample();
        let q = Query::product(Query::Input, Query::Input);
        let qt = t.eval_query(&q).unwrap();
        assert_eq!(qt.arity(), 4);
        for v in [nu(1, 2), nu(3, 3)] {
            assert_eq!(
                qt.apply_valuation(&v).unwrap(),
                q.eval(&t.apply_valuation(&v).unwrap()).unwrap()
            );
        }
    }

    #[test]
    fn lemma1_join_agrees_with_selected_product() {
        let t = sample();
        // Self-join on column 1 = column 2 (spanning the 2|2 product),
        // with and without a residual.
        for residual in [None, Some(Pred::neq_const(0, 1))] {
            let join = Query::join(Query::Input, Query::Input, [(1, 2)], residual.clone());
            let naive = Query::select(
                Query::product(Query::Input, Query::Input),
                Query::join_pred(&[(1, 2)], residual.as_ref()),
            );
            let jt = t.eval_query(&join).unwrap();
            let nt = t.eval_query(&naive).unwrap();
            assert_eq!(jt.arity(), 4);
            for v in [nu(1, 1), nu(1, 2), nu(2, 1), nu(3, 4)] {
                let world = t.apply_valuation(&v).unwrap();
                assert_eq!(
                    jt.apply_valuation(&v).unwrap(),
                    join.eval(&world).unwrap(),
                    "join vs direct under {v}"
                );
                assert_eq!(
                    jt.apply_valuation(&v).unwrap(),
                    nt.apply_valuation(&v).unwrap(),
                    "join_bar vs select_bar∘product_bar under {v}"
                );
            }
        }
    }

    #[test]
    fn join_bar_hash_path_skips_ground_mismatches() {
        // Two all-ground tables: the hash path alone is exercised, and
        // non-matching pairs are not even materialized as false rows.
        let t1 = CTable::builder(1)
            .ground_row([1i64], Condition::True)
            .ground_row([2i64], Condition::True)
            .build()
            .unwrap();
        let t2 = CTable::builder(1)
            .ground_row([2i64], Condition::True)
            .ground_row([3i64], Condition::True)
            .build()
            .unwrap();
        let j = t1.join_bar(&t2, &[(0, 1)], None).unwrap();
        assert_eq!(j.len(), 1, "only the (2,2) pair should be produced");
        assert_eq!(j.rows()[0].cond, Condition::True);
        // The naive σ̄(×̄) keeps 4 rows (3 with false conditions).
        let naive = t1
            .product_bar(&t2)
            .unwrap()
            .select_bar(&Pred::eq_cols(0, 1))
            .unwrap();
        assert_eq!(naive.len(), 4);
        assert_eq!(naive.simplified().without_false_rows().len(), 1);
    }

    #[test]
    fn join_bar_variable_keys_fall_back_to_conditions() {
        let x = Var(0);
        let t1 = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let t2 = CTable::builder(1)
            .ground_row([3i64], Condition::True)
            .build()
            .unwrap();
        let j = t1.join_bar(&t2, &[(0, 1)], None).unwrap();
        // One pair, guarded by x = 3.
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows()[0].cond.simplify(), Condition::eq_vc(x, 3));
        for val in [3i64, 4] {
            let v = Valuation::from_iter([(x, Value::from(val))]);
            let world = t1.apply_valuation(&v).unwrap();
            let expect = Query::join(Query::Input, Query::Second, [(0, 1)], None);
            assert_eq!(
                j.apply_valuation(&v).unwrap(),
                expect
                    .eval2(&world, &t2.apply_valuation(&v).unwrap())
                    .unwrap()
            );
        }
    }

    #[test]
    fn join_bar_validates_keys() {
        let t = sample();
        assert!(matches!(
            t.join_bar(&t, &[(0, 9)], None),
            Err(TableError::Rel(RelError::ColumnOutOfRange { col: 9, .. }))
        ));
        assert!(t
            .join_bar(&t, &[(0, 2)], Some(&Pred::eq_cols(0, 8)))
            .is_err());
    }

    #[test]
    fn lemma1_union_diff_intersect() {
        let t = sample();
        let lit = Query::Lit(instance![[1, 2], [3, 4]]);
        for q in [
            Query::union(Query::Input, lit.clone()),
            Query::diff(Query::Input, lit.clone()),
            Query::intersect(Query::Input, lit.clone()),
            Query::diff(lit.clone(), Query::Input),
        ] {
            let qt = t.eval_query(&q).unwrap();
            for v in [nu(1, 2), nu(2, 1), nu(3, 4), nu(4, 4)] {
                assert_eq!(
                    qt.apply_valuation(&v).unwrap(),
                    q.eval(&t.apply_valuation(&v).unwrap()).unwrap(),
                    "query {q} under {v}"
                );
            }
        }
    }

    #[test]
    fn diff_produces_guard_conditions() {
        let x = Var(0);
        let t1 = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let t2 = CTable::builder(1)
            .ground_row([3i64], Condition::True)
            .build()
            .unwrap();
        let d = t1.diff_bar(&t2).unwrap();
        assert_eq!(d.len(), 1);
        // Row condition must be x ≠ 3 (¬true ∨ x≠3 folds to x≠3).
        assert_eq!(d.rows()[0].cond, Condition::neq_vc(x, 3));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t1 = CTable::new(1, vec![]).unwrap();
        let t2 = CTable::new(2, vec![]).unwrap();
        assert!(t1.union_bar(&t2).is_err());
        assert!(t1.diff_bar(&t2).is_err());
        assert!(t1.intersect_bar(&t2).is_err());
    }

    #[test]
    fn domain_merge_conflict_detected() {
        let x = Var(0);
        let mk = |d: Domain| {
            CTable::builder(1)
                .row([t_var(x)], Condition::True)
                .domain(x, d)
                .build()
                .unwrap()
        };
        let a = mk(Domain::ints(1..=2));
        let b = mk(Domain::ints(1..=3));
        assert_eq!(
            a.product_bar(&b).unwrap_err(),
            TableError::DomainConflict(x)
        );
    }

    #[test]
    fn eval_query_example4_shape() {
        // The Example 4 query, checked q̄(Z₃) ≡ S in ipdb-core; here just
        // exercise the full pipeline on a c-table input.
        let t = sample();
        let q = Query::union(
            Query::project(
                Query::select(Query::Input, Pred::neq_cols(0, 1)),
                vec![1, 0],
            ),
            Query::Lit(instance![[9, 9]]),
        );
        let qt = t.eval_query(&q).unwrap();
        for v in [nu(1, 1), nu(1, 2)] {
            assert_eq!(
                qt.apply_valuation(&v).unwrap(),
                q.eval(&t.apply_valuation(&v).unwrap()).unwrap()
            );
        }
    }

    #[test]
    fn without_false_rows_drops_contradictions() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::False)
            .row([t_const(1)], Condition::True)
            .build()
            .unwrap();
        assert_eq!(t.without_false_rows().len(), 1);
    }

    #[test]
    fn simplified_folds_conditions() {
        let x = Var(0);
        let messy = Condition::And(vec![
            Condition::True,
            Condition::Or(vec![Condition::eq_vc(x, 1), Condition::False]),
        ]);
        let t = CTable::builder(1).row([t_const(1)], messy).build().unwrap();
        assert_eq!(t.simplified().rows()[0].cond, Condition::eq_vc(x, 1));
    }
}
