//! `R_A^prop` (paper Definition 16) — the finitely complete system of
//! Sarma et al.
//!
//! A table is a multiset of *or-set tuples* `{t₁, …, t_m}` plus a boolean
//! formula over presence variables `t₁ … t_m`. `Mod(T)` consists of the
//! instances obtained by (a) choosing a subset of tuples satisfying the
//! formula (variable `tᵢ` true iff tuple `tᵢ` present) and (b) resolving
//! each present tuple's or-sets in every possible way.
//!
//! The presence formula is represented as a boolean
//! [`Condition`] over `Var(0) … Var(m−1)` (presence of `tᵢ` =
//! `Condition::bvar(Var(i))`).

use std::collections::BTreeMap;
use std::fmt;

use ipdb_logic::{Condition, Term, Valuation, Var, VarGen};
use ipdb_rel::{Domain, IDatabase, Instance, Tuple, Value};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::orset::OrSetValue;
use crate::repsys::RepresentationSystem;

/// An `R_A^prop` table: or-set tuples constrained by a propositional
/// formula over their presence.
///
/// ```
/// use ipdb_logic::{Condition, Var};
/// use ipdb_tables::{OrSetValue, RAProp, RepresentationSystem};
/// // Two plain tuples, exactly one present: t0 XOR t1.
/// let xor = Condition::or([
///     Condition::and([Condition::bvar(Var(0)), Condition::nbvar(Var(1))]),
///     Condition::and([Condition::nbvar(Var(0)), Condition::bvar(Var(1))]),
/// ]);
/// let t = RAProp::new(1, vec![
///     vec![OrSetValue::single(1)],
///     vec![OrSetValue::single(2)],
/// ], xor).unwrap();
/// assert_eq!(t.worlds().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RAProp {
    arity: usize,
    rows: Vec<Vec<OrSetValue>>,
    formula: Condition,
}

impl RAProp {
    /// Builds a table; the formula must be boolean and mention only
    /// presence variables `Var(0) … Var(m−1)`.
    pub fn new(
        arity: usize,
        rows: Vec<Vec<OrSetValue>>,
        formula: Condition,
    ) -> Result<Self, TableError> {
        for r in &rows {
            if r.len() != arity {
                return Err(TableError::RowArity {
                    expected: arity,
                    got: r.len(),
                });
            }
        }
        if !formula.is_boolean() {
            return Err(TableError::NotBoolean(format!(
                "presence formula must be boolean: {formula}"
            )));
        }
        if let Some(v) = formula
            .vars()
            .into_iter()
            .find(|v| v.id() as usize >= rows.len())
        {
            return Err(TableError::BadTupleIndex(v.id() as usize));
        }
        Ok(RAProp {
            arity,
            rows,
            formula,
        })
    }

    /// The or-set rows.
    pub fn rows(&self) -> &[Vec<OrSetValue>] {
        &self.rows
    }

    /// The presence formula.
    pub fn formula(&self) -> &Condition {
        &self.formula
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl RepresentationSystem for RAProp {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        let m = self.rows.len();
        assert!(m < 64, "R_A^prop world enumeration caps at 63 tuples");
        let mut out = IDatabase::empty(self.arity);
        for mask in 0u64..(1u64 << m) {
            let nu: Valuation = (0..m)
                .map(|i| (Var(i as u32), Value::from((mask >> i) & 1 == 1)))
                .collect();
            if !self.formula.eval(&nu).map_err(TableError::Logic)? {
                continue;
            }
            // Resolve or-sets of the present rows in all ways.
            let present: Vec<&Vec<OrSetValue>> = (0..m)
                .filter(|i| (mask >> i) & 1 == 1)
                .map(|i| &self.rows[i])
                .collect();
            resolve_all(&present, self.arity, &mut out)?;
        }
        Ok(out)
    }

    /// Embedding via a single *selector* variable over the satisfying
    /// presence-subsets (see `RXorEquiv::to_ctable` for why the formula
    /// cannot simply be distributed over per-tuple boolean variables),
    /// plus a fresh finite-domain variable per multi-valued or-set cell.
    ///
    /// Errors with [`TableError::Unrepresentable`] when the presence
    /// formula is unsatisfiable (`Mod(T) = ∅` has no c-table).
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let m = self.rows.len();
        assert!(m < 64, "R_A^prop embedding caps at 63 tuples");
        let mut satisfying: Vec<u64> = Vec::new();
        for mask in 0u64..(1u64 << m) {
            let nu: Valuation = (0..m)
                .map(|i| (Var(i as u32), Value::from((mask >> i) & 1 == 1)))
                .collect();
            if self.formula.eval(&nu).map_err(TableError::Logic)? {
                satisfying.push(mask);
            }
        }
        if satisfying.is_empty() {
            return Err(TableError::Unrepresentable(
                "unsatisfiable presence formula (empty set of worlds)".into(),
            ));
        }
        let w = gen.fresh();
        let mut domains: BTreeMap<Var, Domain> = BTreeMap::new();
        domains.insert(w, Domain::ints(0..satisfying.len() as i64));
        let mut rows = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            let mut terms = Vec::with_capacity(self.arity);
            for cell in row {
                if cell.is_single() {
                    terms.push(Term::Const(cell.choices()[0].clone()));
                } else {
                    let v = gen.fresh();
                    domains.insert(v, Domain::new(cell.choices().iter().cloned()));
                    terms.push(Term::Var(v));
                }
            }
            let guard = Condition::or(
                satisfying
                    .iter()
                    .enumerate()
                    .filter(|(_, mask)| (*mask >> i) & 1 == 1)
                    .map(|(j, _)| Condition::eq_vc(w, j as i64)),
            );
            rows.push(CRow::new(terms, guard));
        }
        CTable::with_domains(self.arity, rows, domains)
    }
}

fn resolve_all(
    present: &[&Vec<OrSetValue>],
    arity: usize,
    out: &mut IDatabase,
) -> Result<(), TableError> {
    let cells: Vec<&OrSetValue> = present.iter().flat_map(|r| r.iter()).collect();
    let mut idx = vec![0usize; cells.len()];
    loop {
        let mut inst = Instance::empty(arity);
        let mut base = 0;
        for row in present {
            let tuple: Tuple = row
                .iter()
                .enumerate()
                .map(|(c, cell)| cell.choices()[idx[base + c]].clone())
                .collect();
            inst.insert(tuple)?;
            base += row.len();
        }
        out.insert(inst)?;
        let mut pos = cells.len();
        loop {
            if pos == 0 {
                return Ok(());
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < cells[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

impl fmt::Display for RAProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "R_A^prop (arity {}):", self.arity)?;
        for (i, row) in self.rows.iter().enumerate() {
            write!(f, "  t{i} =")?;
            for cell in row {
                write!(f, " {cell}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  s.t. {}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;

    fn os(vals: &[i64]) -> OrSetValue {
        OrSetValue::new(vals.iter().copied()).unwrap()
    }

    #[test]
    fn validation() {
        // Arity mismatch.
        assert!(RAProp::new(2, vec![vec![os(&[1])]], Condition::True).is_err());
        // Non-boolean formula.
        assert!(matches!(
            RAProp::new(1, vec![vec![os(&[1])]], Condition::eq_vc(Var(0), 3)),
            Err(TableError::NotBoolean(_))
        ));
        // Presence var out of range.
        assert_eq!(
            RAProp::new(1, vec![vec![os(&[1])]], Condition::bvar(Var(5))).unwrap_err(),
            TableError::BadTupleIndex(5)
        );
    }

    #[test]
    fn true_formula_is_all_subsets() {
        let t = RAProp::new(1, vec![vec![os(&[1])], vec![os(&[2])]], Condition::True).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 4);
    }

    #[test]
    fn formula_filters_subsets() {
        // t0 → t1 (implication): subsets {}, {t1}, {t0,t1}.
        let imp = Condition::or([Condition::nbvar(Var(0)), Condition::bvar(Var(1))]);
        let t = RAProp::new(1, vec![vec![os(&[1])], vec![os(&[2])]], imp).unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 3);
        assert!(w.contains(&Instance::empty(1)));
        assert!(w.contains(&instance![[2]]));
        assert!(w.contains(&instance![[1], [2]]));
    }

    #[test]
    fn orsets_resolve_only_when_present() {
        let t = RAProp::new(
            1,
            vec![vec![os(&[1, 2])]],
            Condition::bvar(Var(0)), // always present
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&instance![[1]]) && w.contains(&instance![[2]]));
    }

    #[test]
    fn to_ctable_preserves_mod() {
        let xor = Condition::or([
            Condition::and([Condition::bvar(Var(0)), Condition::nbvar(Var(1))]),
            Condition::and([Condition::nbvar(Var(0)), Condition::bvar(Var(1))]),
        ]);
        let t = RAProp::new(
            2,
            vec![vec![os(&[1, 2]), os(&[9])], vec![os(&[3]), os(&[4, 5])]],
            xor,
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn unsatisfiable_formula_no_worlds() {
        let t = RAProp::new(1, vec![vec![os(&[1])]], Condition::False).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 0);
    }

    #[test]
    fn display_shows_formula() {
        let t = RAProp::new(1, vec![vec![os(&[1])]], Condition::bvar(Var(0))).unwrap();
        assert!(t.to_string().contains("s.t."));
    }
}
