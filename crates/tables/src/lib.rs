//! # `ipdb-tables` — representation systems for incomplete information
//!
//! The finite, syntactic representations of incomplete databases that the
//! paper discusses, compares, and relates (§2–§5):
//!
//! * [`CTable`] — Imieliński–Lipski c-tables, with v-tables and Codd
//!   tables as validated restrictions, and *finite-domain* variants
//!   (Def. 6) via per-variable [`Domain`]s;
//! * [`BooleanCTable`] — boolean c-tables (§3): two-valued variables
//!   appearing only in conditions; finitely complete (Thm 3);
//! * [`QTable`] — `?`-tables (tuples optionally marked "maybe missing");
//! * [`OrSetTable`] / [`OrSetQTable`] — or-set tables and their `?`
//!   combination, equivalent to finite-domain Codd tables (§3);
//! * [`RSets`] — Def. 14: blocks of tuples, choose one (or at most one
//!   from `?` blocks);
//! * [`RXorEquiv`] — Def. 15: tuples under `⊕` (exclusive-or) and `≡`
//!   (co-occurrence) constraints;
//! * [`RAProp`] — Def. 16: or-set tuples under an arbitrary propositional
//!   formula (the finitely complete system of Sarma et al.);
//! * the **c-table algebra** `q̄` ([`algebra`]) — the closure construction
//!   of Theorem 4, satisfying Lemma 1: `ν(q̄(T)) = q(ν(T))`;
//! * **world enumeration** ([`worlds`]) — `Mod(T)` for finite-domain
//!   tables, finite *slices* of `Mod(T)` for infinite-domain c-tables,
//!   and possible/certain tuple membership via the active-domain +
//!   fresh-constants technique.
//!
//! Every finite system implements [`RepresentationSystem`]: `Mod(T)` as
//! an explicit [`IDatabase`] plus the standard embedding into c-tables
//! the paper describes.
//!
//! [`Domain`]: ipdb_rel::Domain
//! [`IDatabase`]: ipdb_rel::IDatabase

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod boolean;
pub mod ctable;
pub mod error;
pub mod global;
pub mod orset;
pub mod qtable;
pub mod raprop;
pub mod repsys;
pub mod rsets;
pub mod rxor;
pub mod worlds;

#[cfg(feature = "strategies")]
pub mod strategies;

pub use boolean::BooleanCTable;
pub use ctable::{t_const, t_var, CRow, CTable, CTableBuilder};
pub use error::TableError;
pub use global::GlobalCTable;
pub use orset::{OrSetQTable, OrSetTable, OrSetValue};
pub use qtable::QTable;
pub use raprop::RAProp;
pub use repsys::RepresentationSystem;
pub use rsets::{RBlock, RSets};
pub use rxor::{RConstraint, RXorEquiv};
