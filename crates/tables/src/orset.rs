//! Or-set tables and or-set-`?`-tables (paper §2 Example 3, §3; \[29\]'s
//! `R_A` and `R_A?`).
//!
//! An or-set value `〈1,2,3〉` signifies that exactly one of the listed
//! values is the actual one. An or-set table is a conventional instance
//! whose cells may be or-sets; the `?` variant additionally marks rows as
//! optional. §3 shows or-set tables are *equivalent to finite-domain Codd
//! tables* — [`OrSetTable::to_ctable`] is that translation (a fresh
//! variable per multi-valued cell, `dom(x)` = the or-set), and
//! [`OrSetTable::from_codd`] is the inverse direction.

use std::collections::BTreeMap;
use std::fmt;

use ipdb_logic::{Condition, Term, VarGen};
use ipdb_rel::{Domain, IDatabase, Instance, Tuple, Value};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::repsys::RepresentationSystem;

/// An or-set value: one or more candidate values, exactly one of which is
/// the (unknown) actual value. A singleton or-set is just a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrSetValue {
    choices: Vec<Value>,
}

impl OrSetValue {
    /// Builds an or-set from candidates (deduplicated, kept sorted);
    /// errors when empty.
    pub fn new<I, V>(choices: I) -> Result<Self, TableError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut choices: Vec<Value> = choices.into_iter().map(Into::into).collect();
        choices.sort_unstable();
        choices.dedup();
        if choices.is_empty() {
            return Err(TableError::EmptyOrSet);
        }
        Ok(OrSetValue { choices })
    }

    /// A singleton (certain) value.
    pub fn single(v: impl Into<Value>) -> Self {
        OrSetValue {
            choices: vec![v.into()],
        }
    }

    /// The candidate values.
    pub fn choices(&self) -> &[Value] {
        &self.choices
    }

    /// Whether the value is certain (exactly one candidate).
    pub fn is_single(&self) -> bool {
        self.choices.len() == 1
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Or-sets are never empty, but the std convention wants the method.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for OrSetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let [only] = self.choices.as_slice() {
            return write!(f, "{only}");
        }
        write!(f, "〈")?;
        for (i, v) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "〉")
    }
}

impl From<Value> for OrSetValue {
    fn from(v: Value) -> Self {
        OrSetValue::single(v)
    }
}

/// An or-set table: rows of or-set values.
///
/// ```
/// use ipdb_tables::{OrSetTable, OrSetValue, RepresentationSystem};
/// let t = OrSetTable::from_rows(2, [
///     vec![OrSetValue::single(1), OrSetValue::new([1i64, 2]).unwrap()],
/// ]).unwrap();
/// assert_eq!(t.worlds().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrSetTable {
    arity: usize,
    rows: Vec<Vec<OrSetValue>>,
}

impl OrSetTable {
    /// An empty or-set table.
    pub fn new(arity: usize) -> Self {
        OrSetTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from rows of or-set values.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = Vec<OrSetValue>>,
    ) -> Result<Self, TableError> {
        let mut t = OrSetTable::new(arity);
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<OrSetValue>) -> Result<(), TableError> {
        if row.len() != self.arity {
            return Err(TableError::RowArity {
                expected: self.arity,
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<OrSetValue>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The §3 inverse translation: a finite-domain Codd table becomes an
    /// or-set table (each variable cell becomes the or-set `dom(x)`).
    ///
    /// Errors unless the input really is a finite-domain Codd table.
    pub fn from_codd(codd: &CTable) -> Result<OrSetTable, TableError> {
        if !codd.is_codd() {
            return Err(TableError::NotBoolean(
                "or-set translation needs a Codd table".into(),
            ));
        }
        let mut rows = Vec::with_capacity(codd.len());
        for row in codd.rows() {
            let mut out = Vec::with_capacity(codd.arity());
            for term in &row.tuple {
                out.push(match term {
                    Term::Const(v) => OrSetValue::single(v.clone()),
                    Term::Var(x) => {
                        let dom = codd.domains().get(x).ok_or(TableError::MissingDomain(*x))?;
                        OrSetValue::new(dom.iter().cloned())?
                    }
                });
            }
            rows.push(out);
        }
        OrSetTable::from_rows(codd.arity(), rows)
    }

    fn enumerate_worlds(
        rows: &[Vec<OrSetValue>],
        arity: usize,
        optional: Option<&[bool]>,
    ) -> Result<IDatabase, TableError> {
        // Odometer over per-cell choices × optional-row masks.
        let cells: Vec<&OrSetValue> = rows.iter().flatten().collect();
        let mut idx = vec![0usize; cells.len()];
        let opt_rows: Vec<usize> = optional
            .map(|o| {
                o.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default();
        let mut out = IDatabase::empty(arity);
        loop {
            for mask in 0u64..(1u64 << opt_rows.len()) {
                let mut inst = Instance::empty(arity);
                for (r, row) in rows.iter().enumerate() {
                    if let Some(pos) = opt_rows.iter().position(|&i| i == r) {
                        if (mask >> pos) & 1 == 0 {
                            continue;
                        }
                    }
                    let base = rows[..r].iter().map(Vec::len).sum::<usize>();
                    let tuple: Tuple = row
                        .iter()
                        .enumerate()
                        .map(|(c, cell)| cell.choices()[idx[base + c]].clone())
                        .collect();
                    inst.insert(tuple)?;
                }
                out.insert(inst)?;
            }
            // Advance odometer.
            let mut pos = cells.len();
            loop {
                if pos == 0 {
                    return Ok(out);
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < cells[pos].len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }
}

impl RepresentationSystem for OrSetTable {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        OrSetTable::enumerate_worlds(&self.rows, self.arity, None)
    }

    /// The §3 translation into a finite-domain Codd table: fresh variable
    /// per multi-valued cell, `dom(x)` = the or-set contents.
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let mut domains = BTreeMap::new();
        let mut rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut terms = Vec::with_capacity(self.arity);
            for cell in row {
                if cell.is_single() {
                    terms.push(Term::Const(cell.choices()[0].clone()));
                } else {
                    let v = gen.fresh();
                    domains.insert(v, Domain::new(cell.choices().iter().cloned()));
                    terms.push(Term::Var(v));
                }
            }
            rows.push(CRow::new(terms, Condition::True));
        }
        CTable::with_domains(self.arity, rows, domains)
    }
}

impl fmt::Display for OrSetTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "or-set-table (arity {}):", self.arity)?;
        for row in &self.rows {
            write!(f, " ")?;
            for cell in row {
                write!(f, " {cell}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An or-set-`?`-table (\[29\]'s `R_A?`): or-set rows, optionally labeled
/// "?" — the combination illustrated by the paper's Example 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrSetQTable {
    arity: usize,
    rows: Vec<(Vec<OrSetValue>, bool)>,
}

impl OrSetQTable {
    /// An empty table.
    pub fn new(arity: usize) -> Self {
        OrSetQTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from `(row, optional)` pairs.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = (Vec<OrSetValue>, bool)>,
    ) -> Result<Self, TableError> {
        let mut t = OrSetQTable::new(arity);
        for (r, o) in rows {
            t.push(r, o)?;
        }
        Ok(t)
    }

    /// Appends a row; `optional` marks it with "?".
    pub fn push(&mut self, row: Vec<OrSetValue>, optional: bool) -> Result<(), TableError> {
        if row.len() != self.arity {
            return Err(TableError::RowArity {
                expected: self.arity,
                got: row.len(),
            });
        }
        self.rows.push((row, optional));
        Ok(())
    }

    /// The rows with their optional flags.
    pub fn rows(&self) -> &[(Vec<OrSetValue>, bool)] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl RepresentationSystem for OrSetQTable {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        let rows: Vec<Vec<OrSetValue>> = self.rows.iter().map(|(r, _)| r.clone()).collect();
        let optional: Vec<bool> = self.rows.iter().map(|(_, o)| *o).collect();
        OrSetTable::enumerate_worlds(&rows, self.arity, Some(&optional))
    }

    /// Fresh variable per multi-valued cell plus a fresh boolean guard
    /// per optional row.
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let mut domains = BTreeMap::new();
        let mut rows = Vec::with_capacity(self.rows.len());
        for (row, optional) in &self.rows {
            let mut terms = Vec::with_capacity(self.arity);
            for cell in row {
                if cell.is_single() {
                    terms.push(Term::Const(cell.choices()[0].clone()));
                } else {
                    let v = gen.fresh();
                    domains.insert(v, Domain::new(cell.choices().iter().cloned()));
                    terms.push(Term::Var(v));
                }
            }
            let cond = if *optional {
                let b = gen.fresh();
                domains.insert(b, Domain::bools());
                Condition::bvar(b)
            } else {
                Condition::True
            };
            rows.push(CRow::new(terms, cond));
        }
        CTable::with_domains(self.arity, rows, domains)
    }
}

impl fmt::Display for OrSetQTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "or-set-?-table (arity {}):", self.arity)?;
        for (row, o) in &self.rows {
            write!(f, " ")?;
            for cell in row {
                write!(f, " {cell}")?;
            }
            writeln!(f, "{}", if *o { " ?" } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::t_var;
    use ipdb_logic::Var;
    use ipdb_rel::instance;

    fn os(vals: &[i64]) -> OrSetValue {
        OrSetValue::new(vals.iter().copied()).unwrap()
    }

    #[test]
    fn orset_value_invariants() {
        assert!(OrSetValue::new(Vec::<i64>::new()).is_err());
        let v = OrSetValue::new([2i64, 1, 2]).unwrap();
        assert_eq!(v.len(), 2);
        assert!(!v.is_single());
        assert_eq!(v.to_string(), "〈1,2〉");
        assert_eq!(OrSetValue::single(3).to_string(), "3");
    }

    #[test]
    fn worlds_product_of_choices() {
        let t = OrSetTable::from_rows(
            2,
            [vec![os(&[1, 2]), os(&[3])], vec![os(&[4]), os(&[5, 6])]],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.contains(&instance![[1, 3], [4, 5]]));
        assert!(w.contains(&instance![[2, 3], [4, 6]]));
    }

    #[test]
    fn example3_or_set_q_table() {
        // The paper's Example 3: T has rows
        //   (1, 2, 〈1,2〉), (3, 〈1,2〉, 〈3,4〉), (〈4,5〉, 4, 5)?
        let t = OrSetQTable::from_rows(
            3,
            [
                (vec![os(&[1]), os(&[2]), os(&[1, 2])], false),
                (vec![os(&[3]), os(&[1, 2]), os(&[3, 4])], false),
                (vec![os(&[4, 5]), os(&[4]), os(&[5])], true),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        // 2 × (2×2) × (2 choices + absent... ) = 2*4*3 = 24 combinations,
        // some coinciding; the paper lists members:
        assert!(w.contains(&instance![[1, 2, 1], [3, 1, 3], [4, 4, 5]]));
        assert!(w.contains(&instance![[1, 2, 1], [3, 1, 3]]));
        assert!(w.contains(&instance![[1, 2, 2], [3, 1, 3], [4, 4, 5]]));
        assert!(w.contains(&instance![[1, 2, 2], [3, 2, 4]]));
        // Every world has 2 or 3 tuples.
        for inst in w.iter() {
            assert!(inst.len() == 2 || inst.len() == 3);
        }
    }

    #[test]
    fn to_ctable_round_trips_mod() {
        let t = OrSetTable::from_rows(
            2,
            [vec![os(&[1, 2]), os(&[7])], vec![os(&[3]), os(&[4, 5])]],
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert!(c.is_codd());
        assert!(c.is_finite_domain());
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn orsetq_to_ctable_round_trips_mod() {
        let t = OrSetQTable::from_rows(
            2,
            [
                (vec![os(&[1, 2]), os(&[7])], true),
                (vec![os(&[3]), os(&[4])], false),
            ],
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn from_codd_round_trip() {
        let (x, y) = (Var(0), Var(1));
        let codd = CTable::builder(2)
            .row([t_var(x), crate::ctable::t_const(9)], Condition::True)
            .row([crate::ctable::t_const(8), t_var(y)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .domain(y, Domain::ints(5..=6))
            .build()
            .unwrap();
        let orset = OrSetTable::from_codd(&codd).unwrap();
        assert_eq!(orset.len(), 2);
        let mut g = VarGen::new();
        let back = orset.to_ctable(&mut g).unwrap();
        assert_eq!(back.mod_finite().unwrap(), codd.mod_finite().unwrap());
    }

    #[test]
    fn from_codd_rejects_non_codd() {
        let x = Var(0);
        let not_codd = CTable::builder(2)
            .row([t_var(x), t_var(x)], Condition::True)
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        assert!(OrSetTable::from_codd(&not_codd).is_err());
    }

    #[test]
    fn arity_checked() {
        let mut t = OrSetTable::new(2);
        assert!(t.push(vec![os(&[1])]).is_err());
        let mut q = OrSetQTable::new(1);
        assert!(q.push(vec![os(&[1]), os(&[2])], false).is_err());
    }

    #[test]
    fn empty_tables() {
        let t = OrSetTable::new(2);
        assert_eq!(t.worlds().unwrap().len(), 1);
        let q = OrSetQTable::new(2);
        assert_eq!(q.worlds().unwrap().len(), 1);
    }
}
