//! `R_sets` (paper Definition 14).
//!
//! A table is a multiset of *blocks* (sets of tuples), each optionally
//! labeled "?". `Mod(T)` is obtained by choosing exactly one tuple from
//! each unlabeled block and at most one tuple from each "?" block.
//!
//! The embedding into c-tables gives each block a fresh selector
//! variable ranging over its tuples (plus an extra "absent" value for
//! "?" blocks).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use ipdb_logic::{Condition, Term, VarGen};
use ipdb_rel::{Domain, IDatabase, Instance, Tuple};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::repsys::RepresentationSystem;

/// One block: a non-empty set of candidate tuples, optionally "?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RBlock {
    tuples: Vec<Tuple>,
    optional: bool,
}

impl RBlock {
    /// Builds a block (tuples deduplicated; must be non-empty).
    pub fn new(
        tuples: impl IntoIterator<Item = Tuple>,
        optional: bool,
    ) -> Result<Self, TableError> {
        let set: BTreeSet<Tuple> = tuples.into_iter().collect();
        if set.is_empty() {
            return Err(TableError::EmptyBlock);
        }
        Ok(RBlock {
            tuples: set.into_iter().collect(),
            optional,
        })
    }

    /// The candidate tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Whether the block is labeled "?".
    pub fn is_optional(&self) -> bool {
        self.optional
    }
}

/// An `R_sets` table: a multiset of blocks.
///
/// ```
/// use ipdb_rel::tuple;
/// use ipdb_tables::{RBlock, RSets, RepresentationSystem};
/// let t = RSets::from_blocks(1, [
///     RBlock::new([tuple![1], tuple![2]], false).unwrap(), // choose one
///     RBlock::new([tuple![3]], true).unwrap(),             // at most one
/// ]).unwrap();
/// assert_eq!(t.worlds().unwrap().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RSets {
    arity: usize,
    blocks: Vec<RBlock>,
}

impl RSets {
    /// An empty table (no blocks: the single empty world).
    pub fn new(arity: usize) -> Self {
        RSets {
            arity,
            blocks: Vec::new(),
        }
    }

    /// Builds from blocks, checking arities.
    pub fn from_blocks(
        arity: usize,
        blocks: impl IntoIterator<Item = RBlock>,
    ) -> Result<Self, TableError> {
        let mut t = RSets::new(arity);
        for b in blocks {
            t.push(b)?;
        }
        Ok(t)
    }

    /// Appends a block.
    pub fn push(&mut self, b: RBlock) -> Result<(), TableError> {
        for t in &b.tuples {
            if t.arity() != self.arity {
                return Err(TableError::RowArity {
                    expected: self.arity,
                    got: t.arity(),
                });
            }
        }
        self.blocks.push(b);
        Ok(())
    }

    /// The blocks.
    pub fn blocks(&self) -> &[RBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl RepresentationSystem for RSets {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        // Odometer over per-block choices; optional blocks have one extra
        // "absent" choice.
        let sizes: Vec<usize> = self
            .blocks
            .iter()
            .map(|b| b.tuples.len() + usize::from(b.optional))
            .collect();
        let mut idx = vec![0usize; self.blocks.len()];
        let mut out = IDatabase::empty(self.arity);
        loop {
            let mut inst = Instance::empty(self.arity);
            for (b, block) in self.blocks.iter().enumerate() {
                let choice = idx[b];
                if choice < block.tuples.len() {
                    inst.insert(block.tuples[choice].clone())?;
                } // else: the "absent" choice of an optional block
            }
            out.insert(inst)?;
            let mut pos = self.blocks.len();
            loop {
                if pos == 0 {
                    return Ok(out);
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < sizes[pos] {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }

    /// One fresh selector variable per block: `dom(x) = {0..#tuples}`
    /// (with an extra sentinel for "?"), each candidate tuple guarded by
    /// `x = its index`.
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let mut rows = Vec::new();
        let mut domains = BTreeMap::new();
        for block in &self.blocks {
            let x = gen.fresh();
            let hi = block.tuples.len() as i64 - 1 + i64::from(block.optional);
            domains.insert(x, Domain::ints(0..=hi.max(0)));
            if block.tuples.len() == 1 && !block.optional {
                // Degenerate block: the tuple is certain.
                rows.push(CRow::new(
                    block.tuples[0].iter().map(|v| Term::Const(v.clone())),
                    Condition::True,
                ));
                domains.remove(&x);
                continue;
            }
            for (i, t) in block.tuples.iter().enumerate() {
                rows.push(CRow::new(
                    t.iter().map(|v| Term::Const(v.clone())),
                    Condition::eq_vc(x, i as i64),
                ));
            }
            // For optional blocks the extra domain value `hi` selects no
            // tuple.
        }
        CTable::with_domains(self.arity, rows, domains)
    }
}

impl fmt::Display for RSets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "R_sets (arity {}):", self.arity)?;
        for b in &self.blocks {
            write!(f, "  {{")?;
            for (i, t) in b.tuples.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f, "}}{}", if b.optional { " ?" } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, tuple};

    #[test]
    fn empty_block_rejected() {
        assert_eq!(
            RBlock::new(Vec::<Tuple>::new(), false).unwrap_err(),
            TableError::EmptyBlock
        );
    }

    #[test]
    fn arity_checked() {
        let mut t = RSets::new(1);
        let b = RBlock::new([tuple![1, 2]], false).unwrap();
        assert!(t.push(b).is_err());
    }

    #[test]
    fn worlds_choose_one_per_block() {
        let t = RSets::from_blocks(
            1,
            [
                RBlock::new([tuple![1], tuple![2]], false).unwrap(),
                RBlock::new([tuple![3], tuple![4]], false).unwrap(),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.contains(&instance![[1], [3]]));
        assert!(w.contains(&instance![[2], [4]]));
    }

    #[test]
    fn optional_block_adds_absent_choice() {
        let t = RSets::from_blocks(
            1,
            [
                RBlock::new([tuple![1]], false).unwrap(),
                RBlock::new([tuple![2], tuple![3]], true).unwrap(),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 3);
        assert!(w.contains(&instance![[1]]));
        assert!(w.contains(&instance![[1], [2]]));
        assert!(w.contains(&instance![[1], [3]]));
    }

    #[test]
    fn overlapping_blocks_collapse_worlds() {
        // Both blocks can choose (1): worlds {1}, {1,2}, {2,1}… dedup.
        let t = RSets::from_blocks(
            1,
            [
                RBlock::new([tuple![1], tuple![2]], false).unwrap(),
                RBlock::new([tuple![1], tuple![2]], false).unwrap(),
            ],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        // choices: (1,1)->{1}, (1,2)->{1,2}, (2,1)->{1,2}, (2,2)->{2}
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn to_ctable_preserves_mod() {
        let t = RSets::from_blocks(
            2,
            [
                RBlock::new([tuple![1, 2], tuple![3, 4]], false).unwrap(),
                RBlock::new([tuple![5, 6]], true).unwrap(),
                RBlock::new([tuple![7, 8]], false).unwrap(), // degenerate
            ],
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn no_blocks_single_empty_world() {
        let t = RSets::new(2);
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 1);
        assert!(w.contains(&Instance::empty(2)));
    }

    #[test]
    fn display_marks_optional_blocks() {
        let t = RSets::from_blocks(1, [RBlock::new([tuple![1]], true).unwrap()]).unwrap();
        assert!(t.to_string().contains("} ?"));
    }
}
