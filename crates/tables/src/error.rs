//! Errors for table construction and world enumeration.

use std::fmt;

use ipdb_logic::{LogicError, Var};
use ipdb_rel::RelError;

/// Errors raised by representation-system constructors, the c-table
/// algebra, and world enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// An underlying relational error (arity mismatch, bad column).
    Rel(RelError),
    /// An underlying logic error (unbound variable, missing domain).
    Logic(LogicError),
    /// A row's tuple has the wrong number of entries.
    RowArity {
        /// Arity declared by the table.
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
    /// World enumeration over `Mod(T)` needs a finite domain for every
    /// variable, but `var` has none (the table is not a Def. 6
    /// finite-domain table — use `mod_over` with a domain slice instead).
    MissingDomain(Var),
    /// A finite-domain variable was declared with an empty domain, which
    /// would make the table unsatisfiable by construction.
    EmptyDomain(Var),
    /// Two tables being combined declare different finite domains for the
    /// same variable.
    DomainConflict(Var),
    /// A Codd-table constructor saw the same variable twice.
    CoddDuplicateVar(Var),
    /// A boolean c-table constructor saw a variable inside a tuple, or a
    /// non-boolean condition atom.
    NotBoolean(String),
    /// An or-set value must offer at least one choice.
    EmptyOrSet,
    /// An `R_sets` block must contain at least one tuple.
    EmptyBlock,
    /// An `R_⊕≡` or `R_A^prop` constraint referenced a tuple index out of
    /// range.
    BadTupleIndex(usize),
    /// The table denotes the *empty* set of worlds (e.g. an `R_⊕≡` with
    /// unsatisfiable constraints), which no c-table can represent:
    /// `Mod(T)` of a c-table always contains at least one instance.
    Unrepresentable(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Rel(e) => write!(f, "{e}"),
            TableError::Logic(e) => write!(f, "{e}"),
            TableError::RowArity { expected, got } => {
                write!(f, "row arity {got} does not match table arity {expected}")
            }
            TableError::MissingDomain(v) => write!(
                f,
                "variable {v} has no finite domain; Mod(T) is infinite (use mod_over)"
            ),
            TableError::EmptyDomain(v) => write!(f, "variable {v} has an empty domain"),
            TableError::DomainConflict(v) => {
                write!(f, "conflicting finite domains declared for variable {v}")
            }
            TableError::CoddDuplicateVar(v) => {
                write!(f, "Codd tables require distinct variables; {v} repeats")
            }
            TableError::NotBoolean(s) => write!(f, "not a boolean c-table: {s}"),
            TableError::EmptyOrSet => write!(f, "or-set values must be non-empty"),
            TableError::EmptyBlock => write!(f, "R_sets blocks must be non-empty"),
            TableError::BadTupleIndex(i) => {
                write!(f, "constraint references tuple {i} out of range")
            }
            TableError::Unrepresentable(s) => {
                write!(f, "no c-table represents this table: {s}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl From<RelError> for TableError {
    fn from(e: RelError) -> Self {
        TableError::Rel(e)
    }
}

impl From<LogicError> for TableError {
    fn from(e: LogicError) -> Self {
        TableError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_froms() {
        let e: TableError = RelError::RaggedLiteral.into();
        assert!(matches!(e, TableError::Rel(_)));
        let e: TableError = LogicError::UnboundVar(Var(1)).into();
        assert!(e.to_string().contains("x1"));
        assert!(TableError::MissingDomain(Var(0))
            .to_string()
            .contains("mod_over"));
        assert!(TableError::RowArity {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains('3'));
    }
}
