//! `?`-tables (paper §2, Example before `R_sets`; \[29\]'s `R_?`).
//!
//! A `?`-table is a conventional instance in which tuples are optionally
//! labeled "?", meaning the tuple may be missing. `Mod(T)` contains every
//! instance consisting of all unlabeled tuples plus an arbitrary subset
//! of the labeled ones — `2^(#optional)` worlds.
//!
//! §3 notes that `?`-tables are exactly the boolean c-tables whose
//! conditions are `true` or a single positive variable used nowhere else;
//! [`QTable::to_ctable`] is that embedding.

use std::fmt;

use ipdb_logic::{Condition, Term, VarGen};
use ipdb_rel::{IDatabase, Instance, Tuple};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::repsys::RepresentationSystem;

/// A `?`-table: required tuples plus optional ("?") tuples.
///
/// ```
/// use ipdb_rel::tuple;
/// use ipdb_tables::{QTable, RepresentationSystem};
/// let mut t = QTable::new(2);
/// t.push(tuple![1, 2], false).unwrap(); // required
/// t.push(tuple![3, 4], true).unwrap();  // optional
/// assert_eq!(t.worlds().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QTable {
    arity: usize,
    rows: Vec<(Tuple, bool)>, // (tuple, optional?)
}

impl QTable {
    /// An empty `?`-table of the given arity.
    pub fn new(arity: usize) -> Self {
        QTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from `(tuple, optional)` pairs.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = (Tuple, bool)>,
    ) -> Result<Self, TableError> {
        let mut t = QTable::new(arity);
        for (tup, opt) in rows {
            t.push(tup, opt)?;
        }
        Ok(t)
    }

    /// Appends a tuple; `optional` marks it with "?".
    pub fn push(&mut self, t: Tuple, optional: bool) -> Result<(), TableError> {
        if t.arity() != self.arity {
            return Err(TableError::RowArity {
                expected: self.arity,
                got: t.arity(),
            });
        }
        self.rows.push((t, optional));
        Ok(())
    }

    /// The rows as `(tuple, optional)` pairs.
    pub fn rows(&self) -> &[(Tuple, bool)] {
        &self.rows
    }

    /// Number of rows (required + optional).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of optional rows (`Mod` has `2^this` worlds, up to
    /// coincidences).
    pub fn optional_count(&self) -> usize {
        self.rows.iter().filter(|(_, o)| *o).count()
    }
}

impl RepresentationSystem for QTable {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        let required: Vec<&Tuple> = self
            .rows
            .iter()
            .filter(|(_, o)| !o)
            .map(|(t, _)| t)
            .collect();
        let optional: Vec<&Tuple> = self
            .rows
            .iter()
            .filter(|(_, o)| *o)
            .map(|(t, _)| t)
            .collect();
        let mut out = IDatabase::empty(self.arity);
        for mask in 0u64..(1u64 << optional.len()) {
            let mut inst = Instance::empty(self.arity);
            for t in &required {
                inst.insert((*t).clone())?;
            }
            for (i, t) in optional.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    inst.insert((*t).clone())?;
                }
            }
            out.insert(inst)?;
        }
        Ok(out)
    }

    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let mut rows = Vec::with_capacity(self.rows.len());
        let mut domains = std::collections::BTreeMap::new();
        for (t, optional) in &self.rows {
            let cond = if *optional {
                let v = gen.fresh();
                domains.insert(v, ipdb_rel::Domain::bools());
                Condition::bvar(v)
            } else {
                Condition::True
            };
            rows.push(CRow::new(t.iter().map(|v| Term::Const(v.clone())), cond));
        }
        CTable::with_domains(self.arity, rows, domains)
    }
}

impl fmt::Display for QTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "?-table (arity {}):", self.arity)?;
        for (t, o) in &self.rows {
            writeln!(f, "  {t}{}", if *o { " ?" } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, tuple};

    #[test]
    fn arity_checked() {
        let mut t = QTable::new(2);
        assert!(t.push(tuple![1], false).is_err());
    }

    #[test]
    fn worlds_enumerate_optional_subsets() {
        let t = QTable::from_rows(
            1,
            [(tuple![1], false), (tuple![2], true), (tuple![3], true)],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.contains(&instance![[1]]));
        assert!(w.contains(&instance![[1], [2]]));
        assert!(w.contains(&instance![[1], [3]]));
        assert!(w.contains(&instance![[1], [2], [3]]));
        assert_eq!(t.optional_count(), 2);
    }

    #[test]
    fn no_optionals_means_single_world() {
        let t = QTable::from_rows(1, [(tuple![1], false)]).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 1);
    }

    #[test]
    fn empty_table_has_empty_world() {
        let t = QTable::new(3);
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 1);
        assert!(w.contains(&Instance::empty(3)));
    }

    #[test]
    fn duplicate_optional_tuples_collapse_worlds() {
        // Both optional rows are the same tuple: only 2 distinct worlds.
        let t = QTable::from_rows(1, [(tuple![2], true), (tuple![2], true)]).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 2);
    }

    #[test]
    fn ctable_embedding_preserves_mod() {
        let t = QTable::from_rows(
            2,
            [
                (tuple![1, 2], false),
                (tuple![3, 4], true),
                (tuple![5, 6], true),
            ],
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert!(c.is_finite_domain());
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn display_marks_optionals() {
        let t = QTable::from_rows(1, [(tuple![1], true)]).unwrap();
        assert!(t.to_string().contains("(1) ?"));
    }
}
