//! The representation-system interface (paper Def. 2).
//!
//! A representation system is a set of tables plus a function `Mod`
//! mapping each table to the incomplete database it denotes. The systems
//! of §3 are all *finite* (their `Mod` is a finite set of worlds), so the
//! trait exposes `Mod` directly as an [`IDatabase`]; c-tables implement
//! it through their finite-domain restriction ([`CTable::mod_finite`]).
//!
//! Each system also knows its standard embedding into c-tables — the
//! comparisons of §3 ("finite-domain Codd tables are equivalent to
//! or-set tables", "`?`-tables are boolean c-tables with single-variable
//! conditions", …) are implemented as these conversions and tested to be
//! `Mod`-preserving.

use ipdb_logic::VarGen;
use ipdb_rel::IDatabase;

use crate::ctable::CTable;
use crate::error::TableError;

/// A representation system with finite semantics (Def. 2 restricted to
/// finitely many worlds, as in all systems of §3).
pub trait RepresentationSystem {
    /// The arity of the represented relation.
    fn arity(&self) -> usize;

    /// `Mod(T)`: the finite set of possible worlds.
    fn worlds(&self) -> Result<IDatabase, TableError>;

    /// The standard embedding of this table into a (finite-domain)
    /// c-table, using `gen` for any fresh variables it needs.
    ///
    /// Contract (tested per system): the embedding preserves `Mod`.
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError>;
}

impl RepresentationSystem for CTable {
    fn arity(&self) -> usize {
        CTable::arity(self)
    }

    /// `Mod(T)` of a finite-domain c-table; errors when some variable has
    /// no finite domain (then `Mod(T)` is infinite — see
    /// [`CTable::mod_over`]).
    fn worlds(&self) -> Result<IDatabase, TableError> {
        self.mod_finite()
    }

    fn to_ctable(&self, _gen: &mut VarGen) -> Result<CTable, TableError> {
        Ok(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::t_var;
    use ipdb_logic::{Condition, Var};
    use ipdb_rel::Domain;

    #[test]
    fn ctable_implements_the_trait() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .domain(x, Domain::ints(1..=3))
            .build()
            .unwrap();
        assert_eq!(RepresentationSystem::arity(&t), 1);
        assert_eq!(t.worlds().unwrap().len(), 3);
        let mut g = VarGen::new();
        assert_eq!(t.to_ctable(&mut g).unwrap(), t);
    }
}
