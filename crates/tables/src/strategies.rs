//! Proptest strategies for tables, plus the Lemma 1 / Thm 4 property
//! tests.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_logic::{strategies as logic_strategies, Term, Valuation, Var};
use ipdb_rel::{Domain, Value};

use crate::boolean::BooleanCTable;
use crate::ctable::{CRow, CTable};
use crate::orset::{OrSetTable, OrSetValue};
use crate::qtable::QTable;

/// Strategy for a term over `x0..x{nvars}` and constants `0..=max_int`.
fn arb_entry(nvars: u32, max_int: i64) -> BoxedStrategy<Term> {
    prop_oneof![
        (0..nvars.max(1)).prop_map(|i| Term::Var(Var(i))),
        (0..=max_int).prop_map(Term::constant),
    ]
    .boxed()
}

/// Strategy for a c-table of the given arity with up to `max_rows` rows,
/// over variables `x0..x{nvars}` with integer constants `0..=max_int`.
/// Conditions are random (raw) conditions over the same variables.
pub fn arb_ctable(
    arity: usize,
    max_rows: usize,
    nvars: u32,
    max_int: i64,
) -> BoxedStrategy<CTable> {
    let row = (
        proptest::collection::vec(arb_entry(nvars, max_int), arity),
        logic_strategies::arb_condition(nvars, max_int, 2),
    )
        .prop_map(|(tuple, cond)| CRow::new(tuple, cond));
    proptest::collection::vec(row, 0..=max_rows)
        .prop_map(move |rows| CTable::new(arity, rows).expect("arity fixed"))
        .boxed()
}

/// Strategy for a *finite-domain* c-table: like [`arb_ctable`] but every
/// variable gets the domain `{0..=max_int}`.
pub fn arb_finite_ctable(
    arity: usize,
    max_rows: usize,
    nvars: u32,
    max_int: i64,
) -> BoxedStrategy<CTable> {
    arb_ctable(arity, max_rows, nvars, max_int)
        .prop_map(move |t| {
            let domains: BTreeMap<Var, Domain> = t
                .vars()
                .into_iter()
                .map(|v| (v, Domain::ints(0..=max_int)))
                .collect();
            CTable::with_domains(t.arity(), t.rows().to_vec(), domains).expect("valid domains")
        })
        .boxed()
}

/// Strategy for a boolean c-table with `nvars` boolean variables.
pub fn arb_boolean_ctable(
    arity: usize,
    max_rows: usize,
    nvars: u32,
    max_int: i64,
) -> BoxedStrategy<BooleanCTable> {
    let row = (
        proptest::collection::vec((0..=max_int).prop_map(Value::from), arity),
        logic_strategies::arb_boolean_condition(nvars, 2),
    );
    proptest::collection::vec(row, 0..=max_rows)
        .prop_map(move |rows| {
            BooleanCTable::from_rows(
                arity,
                rows.into_iter()
                    .map(|(vals, cond)| (ipdb_rel::Tuple::new(vals), cond)),
            )
            .expect("rows are boolean by construction")
        })
        .boxed()
}

/// Strategy for a `?`-table.
pub fn arb_qtable(arity: usize, max_rows: usize, max_int: i64) -> BoxedStrategy<QTable> {
    let row = (
        proptest::collection::vec((0..=max_int).prop_map(Value::from), arity),
        any::<bool>(),
    );
    proptest::collection::vec(row, 0..=max_rows)
        .prop_map(move |rows| {
            QTable::from_rows(
                arity,
                rows.into_iter()
                    .map(|(vals, opt)| (ipdb_rel::Tuple::new(vals), opt)),
            )
            .expect("arity fixed")
        })
        .boxed()
}

/// Strategy for an or-set table.
pub fn arb_orset_table(arity: usize, max_rows: usize, max_int: i64) -> BoxedStrategy<OrSetTable> {
    let cell = proptest::collection::btree_set(0..=max_int, 1..=3)
        .prop_map(|s| OrSetValue::new(s).expect("non-empty"));
    let row = proptest::collection::vec(cell, arity);
    proptest::collection::vec(row, 0..=max_rows)
        .prop_map(move |rows| OrSetTable::from_rows(arity, rows).expect("arity fixed"))
        .boxed()
}

/// A total valuation for all variables of a table, over `{0..=max_int}`.
pub fn arb_valuation_for(table: &CTable, max_int: i64) -> BoxedStrategy<Valuation> {
    let vars: Vec<Var> = table.vars().into_iter().collect();
    proptest::collection::vec(0..=max_int, vars.len())
        .prop_map(move |vals| {
            vars.iter()
                .zip(vals)
                .map(|(v, x)| (*v, Value::from(x)))
                .collect()
        })
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repsys::RepresentationSystem;
    use ipdb_logic::VarGen;
    use ipdb_rel::strategies::arb_query;

    const NVARS: u32 = 3;
    const MAXI: i64 = 2;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// **Lemma 1** (heart of Theorem 4): for every query `q`, c-table
        /// `T`, and valuation `ν`: `ν(q̄(T)) = q(ν(T))`.
        #[test]
        fn lemma1_holds(
            (t, q, nu) in arb_ctable(2, 3, NVARS, MAXI).prop_flat_map(|t| {
                let q = arb_query(2, 3, 3, MAXI);
                let nu = arb_valuation_for(&t, MAXI);
                (Just(t), q, nu)
            })
        ) {
            let qbar_t = t.eval_query(&q).unwrap();
            // q̄(T) may mention vars of T that ν misses when T has no rows;
            // extend ν to cover.
            let mut nu = nu;
            for v in qbar_t.vars() {
                if !nu.binds(v) {
                    nu.bind(v, Value::from(0));
                }
            }
            let lhs = qbar_t.apply_valuation(&nu).unwrap();
            let rhs = q.eval(&t.apply_valuation(&nu).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        /// **Theorem 4** for finite-domain c-tables:
        /// `Mod(q̄(T)) = q(Mod(T))`.
        #[test]
        fn theorem4_mod_commutes(
            t in arb_finite_ctable(2, 3, NVARS, 1),
            q in arb_query(2, 2, 2, 1)
        ) {
            let lhs = t.eval_query(&q).unwrap().mod_finite().unwrap();
            let rhs = q.eval_idb(&t.mod_finite().unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        /// `simplified` and `without_false_rows` preserve Mod.
        #[test]
        fn cleanup_preserves_mod(t in arb_finite_ctable(2, 4, NVARS, MAXI)) {
            let m = t.mod_finite().unwrap();
            prop_assert_eq!(t.simplified().mod_finite().unwrap(), m.clone());
            prop_assert_eq!(t.without_false_rows().mod_finite().unwrap(), m);
        }

        /// Renaming variables preserves Mod.
        #[test]
        fn renaming_preserves_mod(t in arb_finite_ctable(2, 3, NVARS, MAXI)) {
            let mut g = VarGen::avoiding(t.vars());
            let (r, _) = t.rename_fresh(&mut g);
            prop_assert_eq!(r.mod_finite().unwrap(), t.mod_finite().unwrap());
            prop_assert!(r.equivalent_to(&t).unwrap());
        }

        /// The ?-table embedding into boolean c-tables preserves Mod.
        #[test]
        fn qtable_embedding_preserves_mod(t in arb_qtable(2, 4, MAXI)) {
            let mut g = VarGen::new();
            let c = t.to_ctable(&mut g).unwrap();
            prop_assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
        }

        /// The or-set ↔ finite Codd equivalence (§3) preserves Mod both
        /// ways.
        #[test]
        fn orset_codd_equivalence(t in arb_orset_table(2, 3, MAXI)) {
            let mut g = VarGen::new();
            let codd = t.to_ctable(&mut g).unwrap();
            prop_assert!(codd.is_codd());
            prop_assert_eq!(codd.mod_finite().unwrap(), t.worlds().unwrap());
            let back = OrSetTable::from_codd(&codd).unwrap();
            prop_assert_eq!(back.worlds().unwrap(), t.worlds().unwrap());
        }

        /// Boolean c-tables: Mod computed through the generic machinery
        /// matches direct enumeration of variable assignments.
        #[test]
        fn boolean_ctable_worlds(t in arb_boolean_ctable(1, 3, 3, 2)) {
            let w = t.worlds().unwrap();
            // Brute force over all assignments of the table's vars.
            let vars: Vec<Var> = t.vars().into_iter().collect();
            let mut brute = ipdb_rel::IDatabase::empty(1);
            for mask in 0u32..(1 << vars.len()) {
                let nu: Valuation = vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (*v, Value::from((mask >> i) & 1 == 1)))
                    .collect();
                brute.insert(t.as_ctable().apply_valuation(&nu).unwrap()).unwrap();
            }
            prop_assert_eq!(w, brute);
        }

        /// Possible/certain membership over the decision slice agrees
        /// with brute force over a *larger* slice (soundness of the
        /// active-domain + fresh-constants argument).
        #[test]
        fn decision_slice_agrees_with_larger_slice(
            t in arb_ctable(1, 3, 2, 1),
            probe in 0i64..=2
        ) {
            let probe = ipdb_rel::Tuple::new([probe]);
            let small = t.possible_tuple(&probe).unwrap();
            // Larger slice: decision slice plus 3 extra fresh constants.
            let slice = t
                .decision_slice(&Domain::new(probe.iter().cloned()))
                .with_fresh_ints(3);
            let large = t.mod_over(&slice).unwrap().is_possible(&probe);
            prop_assert_eq!(small, large);
            let small_c = t.certain_tuple(&probe).unwrap();
            let large_c = t.mod_over(&slice).unwrap().is_certain(&probe);
            prop_assert_eq!(small_c, large_c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Equivalence decided on the shared slice agrees with a larger
        /// slice.
        #[test]
        fn equivalence_slice_is_stable(
            a in arb_ctable(1, 2, 2, 1),
            b in arb_ctable(1, 2, 2, 1)
        ) {
            let small = a.equivalent_to(&b).unwrap();
            let consts = a.active_constants().union(&b.active_constants());
            let fresh = a.vars().len().max(b.vars().len()).max(1) + 2;
            let slice = consts.with_fresh_ints(fresh);
            let large = a.mod_over(&slice).unwrap() == b.mod_over(&slice).unwrap();
            prop_assert_eq!(small, large);
        }
    }
}
