//! `R_⊕≡` (paper Definition 15).
//!
//! A table is a multiset of tuples `{t₁, …, t_m}` plus a conjunction of
//! assertions `i ⊕ j` ("exactly one of tᵢ, tⱼ present") and `i ≡ j`
//! ("tᵢ present iff tⱼ present"). `Mod(T)` consists of all subsets of the
//! tuples satisfying every assertion.

use std::fmt;

use ipdb_logic::{Condition, Term, VarGen};
use ipdb_rel::{IDatabase, Instance, Tuple};

use crate::ctable::{CRow, CTable};
use crate::error::TableError;
use crate::repsys::RepresentationSystem;

/// One `R_⊕≡` assertion over 0-based tuple indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RConstraint {
    /// `i ⊕ j`: exactly one of the two tuples is present.
    Xor(usize, usize),
    /// `i ≡ j`: the two tuples are present or absent together.
    Equiv(usize, usize),
}

impl RConstraint {
    fn indexes(&self) -> (usize, usize) {
        match *self {
            RConstraint::Xor(i, j) | RConstraint::Equiv(i, j) => (i, j),
        }
    }

    fn satisfied(&self, present: &[bool]) -> bool {
        match *self {
            RConstraint::Xor(i, j) => present[i] ^ present[j],
            RConstraint::Equiv(i, j) => present[i] == present[j],
        }
    }
}

impl fmt::Display for RConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RConstraint::Xor(i, j) => write!(f, "{i}⊕{j}"),
            RConstraint::Equiv(i, j) => write!(f, "{i}≡{j}"),
        }
    }
}

/// An `R_⊕≡` table.
///
/// ```
/// use ipdb_rel::tuple;
/// use ipdb_tables::{RConstraint, RXorEquiv, RepresentationSystem};
/// let t = RXorEquiv::new(
///     1,
///     vec![tuple![1], tuple![2]],
///     vec![RConstraint::Xor(0, 1)],
/// ).unwrap();
/// // Exactly one of (1), (2): two worlds.
/// assert_eq!(t.worlds().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RXorEquiv {
    arity: usize,
    tuples: Vec<Tuple>,
    constraints: Vec<RConstraint>,
}

impl RXorEquiv {
    /// Builds a table, checking arities and constraint indexes.
    pub fn new(
        arity: usize,
        tuples: Vec<Tuple>,
        constraints: Vec<RConstraint>,
    ) -> Result<Self, TableError> {
        for t in &tuples {
            if t.arity() != arity {
                return Err(TableError::RowArity {
                    expected: arity,
                    got: t.arity(),
                });
            }
        }
        for c in &constraints {
            let (i, j) = c.indexes();
            if i >= tuples.len() || j >= tuples.len() {
                return Err(TableError::BadTupleIndex(i.max(j)));
            }
        }
        Ok(RXorEquiv {
            arity,
            tuples,
            constraints,
        })
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The assertions.
    pub fn constraints(&self) -> &[RConstraint] {
        &self.constraints
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl RepresentationSystem for RXorEquiv {
    fn arity(&self) -> usize {
        self.arity
    }

    fn worlds(&self) -> Result<IDatabase, TableError> {
        let m = self.tuples.len();
        assert!(m < 64, "R_xor-equiv world enumeration caps at 63 tuples");
        let mut out = IDatabase::empty(self.arity);
        let mut present = vec![false; m];
        for mask in 0u64..(1u64 << m) {
            for (i, p) in present.iter_mut().enumerate() {
                *p = (mask >> i) & 1 == 1;
            }
            if self.constraints.iter().all(|c| c.satisfied(&present)) {
                let mut inst = Instance::empty(self.arity);
                for (i, t) in self.tuples.iter().enumerate() {
                    if present[i] {
                        inst.insert(t.clone())?;
                    }
                }
                out.insert(inst)?;
            }
        }
        Ok(out)
    }

    /// Embedding via a single *selector* variable ranging over the
    /// satisfying presence-subsets: tuple `tᵢ` is guarded by
    /// `⋁ { w = j | subset j contains tᵢ }`.
    ///
    /// (Distributing the constraints over per-tuple boolean variables
    /// would admit violating assignments as extra — typically empty —
    /// worlds; c-tables have no global conditions, so the selector
    /// construction is the faithful encoding. The global-condition
    /// variant of c-tables \[17\] would keep the constraints factored.)
    ///
    /// Errors with [`TableError::Unrepresentable`] when the constraints
    /// are unsatisfiable (`Mod(T) = ∅` has no c-table).
    fn to_ctable(&self, gen: &mut VarGen) -> Result<CTable, TableError> {
        let m = self.tuples.len();
        assert!(m < 64, "R_xor-equiv embedding caps at 63 tuples");
        let mut satisfying: Vec<u64> = Vec::new();
        let mut present = vec![false; m];
        for mask in 0u64..(1u64 << m) {
            for (i, p) in present.iter_mut().enumerate() {
                *p = (mask >> i) & 1 == 1;
            }
            if self.constraints.iter().all(|c| c.satisfied(&present)) {
                satisfying.push(mask);
            }
        }
        if satisfying.is_empty() {
            return Err(TableError::Unrepresentable(
                "unsatisfiable ⊕/≡ constraints (empty set of worlds)".into(),
            ));
        }
        let w = gen.fresh();
        let mut domains = std::collections::BTreeMap::new();
        domains.insert(w, ipdb_rel::Domain::ints(0..satisfying.len() as i64));
        let rows = self
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let guard = Condition::or(
                    satisfying
                        .iter()
                        .enumerate()
                        .filter(|(_, mask)| (*mask >> i) & 1 == 1)
                        .map(|(j, _)| Condition::eq_vc(w, j as i64)),
                );
                CRow::new(t.iter().map(|v| Term::Const(v.clone())), guard)
            })
            .collect();
        CTable::with_domains(self.arity, rows, domains)
    }
}

impl fmt::Display for RXorEquiv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "R_⊕≡ (arity {}):", self.arity)?;
        for (i, t) in self.tuples.iter().enumerate() {
            writeln!(f, "  t{i} = {t}")?;
        }
        if !self.constraints.is_empty() {
            write!(f, "  s.t. ")?;
            for (i, c) in self.constraints.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::{instance, tuple};

    #[test]
    fn validation() {
        assert!(RXorEquiv::new(1, vec![tuple![1, 2]], vec![]).is_err());
        assert_eq!(
            RXorEquiv::new(1, vec![tuple![1]], vec![RConstraint::Xor(0, 5)]).unwrap_err(),
            TableError::BadTupleIndex(5)
        );
    }

    #[test]
    fn unconstrained_is_all_subsets() {
        let t = RXorEquiv::new(1, vec![tuple![1], tuple![2]], vec![]).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 4);
    }

    #[test]
    fn xor_semantics() {
        let t =
            RXorEquiv::new(1, vec![tuple![1], tuple![2]], vec![RConstraint::Xor(0, 1)]).unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&instance![[1]]));
        assert!(w.contains(&instance![[2]]));
    }

    #[test]
    fn equiv_semantics() {
        let t = RXorEquiv::new(
            1,
            vec![tuple![1], tuple![2]],
            vec![RConstraint::Equiv(0, 1)],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&Instance::empty(1)));
        assert!(w.contains(&instance![[1], [2]]));
    }

    #[test]
    fn chained_constraints() {
        // t0 ⊕ t1, t1 ≡ t2: worlds {t0} and {t1, t2}.
        let t = RXorEquiv::new(
            1,
            vec![tuple![1], tuple![2], tuple![3]],
            vec![RConstraint::Xor(0, 1), RConstraint::Equiv(1, 2)],
        )
        .unwrap();
        let w = t.worlds().unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&instance![[1]]));
        assert!(w.contains(&instance![[2], [3]]));
    }

    #[test]
    fn to_ctable_preserves_mod() {
        let t = RXorEquiv::new(
            1,
            vec![tuple![1], tuple![2], tuple![3]],
            vec![RConstraint::Xor(0, 1), RConstraint::Equiv(1, 2)],
        )
        .unwrap();
        let mut g = VarGen::new();
        let c = t.to_ctable(&mut g).unwrap();
        assert_eq!(c.mod_finite().unwrap(), t.worlds().unwrap());
    }

    #[test]
    fn unsatisfiable_constraints_yield_no_worlds() {
        // t0 ⊕ t0 is unsatisfiable.
        let t = RXorEquiv::new(1, vec![tuple![1]], vec![RConstraint::Xor(0, 0)]).unwrap();
        assert_eq!(t.worlds().unwrap().len(), 0);
    }

    #[test]
    fn display() {
        let t =
            RXorEquiv::new(1, vec![tuple![1], tuple![2]], vec![RConstraint::Xor(0, 1)]).unwrap();
        let s = t.to_string();
        assert!(s.contains("0⊕1"));
    }
}
