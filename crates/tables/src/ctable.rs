//! c-tables, v-tables, and Codd tables.
//!
//! §2 of the paper: *v-tables* are conventional instances in which
//! variables may appear alongside constants; *Codd tables* are v-tables
//! whose variables are all distinct; *c-tables* additionally attach to
//! each tuple a condition. Def. 6 adds *finite-domain* versions: a finite
//! `dom(x)` per variable. One type, [`CTable`], covers all of these —
//! v-/Codd tables are validated special cases, and finite-domain tables
//! are c-tables whose every variable carries a [`Domain`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ipdb_logic::{Condition, Term, Valuation, Var, VarGen};
use ipdb_rel::{Domain, Instance, Tuple, Value};

use crate::error::TableError;

/// Shorthand for a variable term (tuple entries and conditions).
pub fn t_var(v: Var) -> Term {
    Term::Var(v)
}

/// Shorthand for a constant term.
pub fn t_const(v: impl Into<Value>) -> Term {
    Term::Const(v.into())
}

/// One row of a c-table: a tuple of terms plus its condition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CRow {
    /// The row's entries (variables and constants).
    pub tuple: Vec<Term>,
    /// The row's local condition `ϕ_t`; `True` for v-table rows.
    pub cond: Condition,
}

impl CRow {
    /// Builds a row.
    pub fn new(tuple: impl IntoIterator<Item = Term>, cond: Condition) -> CRow {
        CRow {
            tuple: tuple.into_iter().collect(),
            cond,
        }
    }

    /// Variables appearing in the tuple entries.
    pub fn tuple_vars(&self) -> BTreeSet<Var> {
        self.tuple.iter().filter_map(Term::as_var).collect()
    }

    /// Variables appearing anywhere in the row.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut vs = self.tuple_vars();
        self.cond.collect_vars(&mut vs);
        vs
    }

    /// Whether every tuple entry is a constant.
    pub fn is_ground(&self) -> bool {
        self.tuple.iter().all(Term::is_ground)
    }

    /// Instantiates the row's tuple under a total valuation.
    pub fn apply(&self, nu: &Valuation) -> Result<Tuple, TableError> {
        let mut vals = Vec::with_capacity(self.tuple.len());
        for t in &self.tuple {
            vals.push(t.eval(nu).map_err(TableError::Logic)?);
        }
        Ok(Tuple::from(vals))
    }
}

impl fmt::Display for CRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        if self.cond != Condition::True {
            write!(f, " : {}", self.cond)?;
        }
        Ok(())
    }
}

/// A conditional table (c-table), possibly with finite variable domains.
///
/// `Mod(T)` is defined in `crate::worlds`; the algebra `q̄` in
/// `crate::algebra`.
///
/// ```
/// use ipdb_logic::{Condition, VarGen};
/// use ipdb_tables::{t_const, t_var, CTable};
///
/// // Example 2's c-table S (arity 3).
/// let mut g = VarGen::new();
/// let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
/// let s = CTable::builder(3)
///     .row([t_const(1), t_const(2), t_var(x)], Condition::True)
///     .row(
///         [t_const(3), t_var(x), t_var(y)],
///         Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
///     )
///     .row(
///         [t_var(z), t_const(4), t_const(5)],
///         Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
///     )
///     .build()
///     .unwrap();
/// assert_eq!(s.arity(), 3);
/// assert_eq!(s.vars().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTable {
    arity: usize,
    rows: Vec<CRow>,
    /// Finite domains for (a subset of) the variables; a variable without
    /// an entry ranges over the whole infinite domain `D`.
    domains: BTreeMap<Var, Domain>,
}

impl CTable {
    /// Starts a builder for a table of the given arity.
    pub fn builder(arity: usize) -> CTableBuilder {
        CTableBuilder {
            arity,
            rows: Vec::new(),
            domains: BTreeMap::new(),
        }
    }

    /// Builds a c-table from rows, checking arities.
    pub fn new(arity: usize, rows: Vec<CRow>) -> Result<CTable, TableError> {
        Self::with_domains(arity, rows, BTreeMap::new())
    }

    /// Builds a finite-domain c-table (Def. 6).
    pub fn with_domains(
        arity: usize,
        rows: Vec<CRow>,
        domains: BTreeMap<Var, Domain>,
    ) -> Result<CTable, TableError> {
        for r in &rows {
            if r.tuple.len() != arity {
                return Err(TableError::RowArity {
                    expected: arity,
                    got: r.tuple.len(),
                });
            }
        }
        for (v, d) in &domains {
            if d.is_empty() {
                return Err(TableError::EmptyDomain(*v));
            }
        }
        Ok(CTable {
            arity,
            rows,
            domains,
        })
    }

    /// A v-table: rows of terms, all conditions `True`.
    pub fn v_table(
        arity: usize,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<CTable, TableError> {
        CTable::new(
            arity,
            rows.into_iter()
                .map(|t| CRow::new(t, Condition::True))
                .collect(),
        )
    }

    /// A Codd table: a v-table whose variables are pairwise distinct
    /// (validated).
    pub fn codd(
        arity: usize,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<CTable, TableError> {
        let t = CTable::v_table(arity, rows)?;
        let mut seen = BTreeSet::new();
        for r in &t.rows {
            for term in &r.tuple {
                if let Some(v) = term.as_var() {
                    if !seen.insert(v) {
                        return Err(TableError::CoddDuplicateVar(v));
                    }
                }
            }
        }
        Ok(t)
    }

    /// A ground table: a conventional instance viewed as a c-table.
    pub fn from_instance(inst: &Instance) -> CTable {
        CTable {
            arity: inst.arity(),
            rows: inst
                .iter()
                .map(|t| CRow::new(t.iter().map(|v| Term::Const(v.clone())), Condition::True))
                .collect(),
            domains: BTreeMap::new(),
        }
    }

    /// The paper's `Z_k`: the Codd table with a single row of `k`
    /// distinct fresh variables (§3, just before Def. 3).
    pub fn z_k(k: usize, gen: &mut VarGen) -> CTable {
        let vars = gen.fresh_n(k);
        CTable {
            arity: k,
            rows: vec![CRow::new(vars.into_iter().map(Term::Var), Condition::True)],
            domains: BTreeMap::new(),
        }
    }

    /// Table arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The rows.
    pub fn rows(&self) -> &[CRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows (represents only the empty
    /// instance).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The declared finite domains.
    pub fn domains(&self) -> &BTreeMap<Var, Domain> {
        &self.domains
    }

    /// Declares (or replaces) the finite domain of a variable.
    pub fn set_domain(&mut self, v: Var, d: Domain) -> Result<(), TableError> {
        if d.is_empty() {
            return Err(TableError::EmptyDomain(v));
        }
        self.domains.insert(v, d);
        Ok(())
    }

    /// All variables of the table (tuples and conditions).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut vs = BTreeSet::new();
        for r in &self.rows {
            vs.extend(r.tuple.iter().filter_map(Term::as_var));
            r.cond.collect_vars(&mut vs);
        }
        vs
    }

    /// Variables appearing in tuple positions.
    pub fn tuple_vars(&self) -> BTreeSet<Var> {
        self.rows.iter().flat_map(|r| r.tuple_vars()).collect()
    }

    /// Whether every condition is `True` (the table is a v-table).
    pub fn is_v_table(&self) -> bool {
        self.rows.iter().all(|r| r.cond == Condition::True)
    }

    /// Whether the table is a Codd table (v-table, distinct variables).
    pub fn is_codd(&self) -> bool {
        if !self.is_v_table() {
            return false;
        }
        let mut seen = BTreeSet::new();
        for r in &self.rows {
            for t in &r.tuple {
                if let Some(v) = t.as_var() {
                    if !seen.insert(v) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether every variable carries a finite domain (the table is a
    /// Def. 6 finite-domain table, so `Mod(T)` is finite and computable).
    pub fn is_finite_domain(&self) -> bool {
        let doms = &self.domains;
        self.vars().iter().all(|v| doms.contains_key(v))
    }

    /// Constants appearing in tuples and conditions (the table's active
    /// constants — the seed of enumeration slices).
    pub fn active_constants(&self) -> Domain {
        let mut d = Domain::empty();
        for r in &self.rows {
            for t in &r.tuple {
                if let Term::Const(v) = t {
                    d.insert(v.clone());
                }
            }
            collect_cond_constants(&r.cond, &mut d);
        }
        d
    }

    /// The paper's `ν(T)`: apply a valuation to every row, keep the rows
    /// whose condition holds, instantiate their tuples (§2).
    pub fn apply_valuation(&self, nu: &Valuation) -> Result<Instance, TableError> {
        let mut inst = Instance::empty(self.arity);
        for r in &self.rows {
            if r.cond.eval(nu).map_err(TableError::Logic)? {
                inst.insert(r.apply(nu)?)?;
            }
        }
        Ok(inst)
    }

    /// Effective per-variable domains for enumeration: a variable's own
    /// finite domain when declared, otherwise the supplied `slice` of the
    /// infinite domain.
    pub fn effective_domains(&self, slice: &Domain) -> BTreeMap<Var, Domain> {
        self.vars()
            .into_iter()
            .map(|v| {
                let d = self
                    .domains
                    .get(&v)
                    .cloned()
                    .unwrap_or_else(|| slice.clone());
                (v, d)
            })
            .collect()
    }

    /// A copy whose variables are renamed to fresh ones from `gen`
    /// (injective), with domains carried along. Returns the renaming.
    pub fn rename_fresh(&self, gen: &mut VarGen) -> (CTable, BTreeMap<Var, Var>) {
        let map: BTreeMap<Var, Var> = self.vars().into_iter().map(|v| (v, gen.fresh())).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let tuple = r.tuple.iter().map(|t| match t {
                    Term::Var(v) => Term::Var(map[v]),
                    Term::Const(_) => t.clone(),
                });
                CRow::new(tuple, r.cond.rename(&map))
            })
            .collect();
        let domains = self
            .domains
            .iter()
            .map(|(v, d)| (map[v], d.clone()))
            .collect();
        (
            CTable {
                arity: self.arity,
                rows,
                domains,
            },
            map,
        )
    }

    /// Merges the finite-domain declarations of two tables (used by the
    /// binary algebra operations, whose operands share variables).
    pub(crate) fn merge_domains(
        a: &BTreeMap<Var, Domain>,
        b: &BTreeMap<Var, Domain>,
    ) -> Result<BTreeMap<Var, Domain>, TableError> {
        let mut out = a.clone();
        for (v, d) in b {
            match out.get(v) {
                None => {
                    out.insert(*v, d.clone());
                }
                Some(existing) if existing == d => {}
                Some(_) => return Err(TableError::DomainConflict(*v)),
            }
        }
        Ok(out)
    }
}

fn collect_cond_constants(c: &Condition, out: &mut Domain) {
    match c {
        Condition::True | Condition::False => {}
        Condition::Eq(a, b) | Condition::Neq(a, b) => {
            if let Term::Const(v) = a {
                out.insert(v.clone());
            }
            if let Term::Const(v) = b {
                out.insert(v.clone());
            }
        }
        Condition::Not(c) => collect_cond_constants(c, out),
        Condition::And(cs) | Condition::Or(cs) => {
            for c in cs {
                collect_cond_constants(c, out);
            }
        }
    }
}

impl fmt::Display for CTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "c-table (arity {}):", self.arity)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        if !self.domains.is_empty() {
            write!(f, "  where ")?;
            for (i, (v, d)) in self.domains.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "dom({v})={d}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Builder for [`CTable`].
pub struct CTableBuilder {
    arity: usize,
    rows: Vec<CRow>,
    domains: BTreeMap<Var, Domain>,
}

impl CTableBuilder {
    /// Adds a row.
    pub fn row(mut self, tuple: impl IntoIterator<Item = Term>, cond: Condition) -> Self {
        self.rows.push(CRow::new(tuple, cond));
        self
    }

    /// Adds a ground row of constants with a condition.
    pub fn ground_row<V: Into<Value>>(
        self,
        tuple: impl IntoIterator<Item = V>,
        cond: Condition,
    ) -> Self {
        let terms: Vec<Term> = tuple.into_iter().map(|v| Term::Const(v.into())).collect();
        self.row(terms, cond)
    }

    /// Declares a variable's finite domain.
    pub fn domain(mut self, v: Var, d: Domain) -> Self {
        self.domains.insert(v, d);
        self
    }

    /// Finishes, validating arities and domains.
    pub fn build(self) -> Result<CTable, TableError> {
        CTable::with_domains(self.arity, self.rows, self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::tuple;

    fn xyz() -> (Var, Var, Var) {
        (Var(0), Var(1), Var(2))
    }

    #[test]
    fn builder_checks_row_arity() {
        let err = CTable::builder(2)
            .row([t_const(1)], Condition::True)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TableError::RowArity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn empty_domain_rejected() {
        let (x, _, _) = xyz();
        let err = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .domain(x, Domain::empty())
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::EmptyDomain(x));
    }

    #[test]
    fn vtable_and_codd_validation() {
        let (x, y, _) = xyz();
        let v =
            CTable::v_table(2, [vec![t_const(1), t_var(x)], vec![t_var(x), t_const(1)]]).unwrap();
        assert!(v.is_v_table());
        assert!(!v.is_codd()); // x repeats
        let c = CTable::codd(2, [vec![t_var(x), t_var(y)]]).unwrap();
        assert!(c.is_codd());
        let err = CTable::codd(2, [vec![t_var(x), t_var(x)]]).unwrap_err();
        assert_eq!(err, TableError::CoddDuplicateVar(x));
    }

    #[test]
    fn z_k_is_single_row_codd() {
        let mut g = VarGen::new();
        let z3 = CTable::z_k(3, &mut g);
        assert_eq!(z3.arity(), 3);
        assert_eq!(z3.len(), 1);
        assert!(z3.is_codd());
        assert_eq!(z3.vars().len(), 3);
    }

    #[test]
    fn vars_and_tuple_vars() {
        let (x, y, z) = xyz();
        let t = CTable::builder(2)
            .row([t_const(1), t_var(x)], Condition::eq_vv(y, z))
            .build()
            .unwrap();
        assert_eq!(t.tuple_vars(), BTreeSet::from([x]));
        assert_eq!(t.vars(), BTreeSet::from([x, y, z]));
    }

    #[test]
    fn apply_valuation_filters_and_grounds() {
        let (x, y, _) = xyz();
        let t = CTable::builder(2)
            .row([t_const(1), t_var(x)], Condition::True)
            .row([t_var(x), t_var(y)], Condition::neq_vv(x, y))
            .build()
            .unwrap();
        let nu = Valuation::from_iter([(x, Value::from(5)), (y, Value::from(5))]);
        let inst = t.apply_valuation(&nu).unwrap();
        assert_eq!(inst, ipdb_rel::instance![[1, 5]]); // second row's condition fails
        let nu2 = Valuation::from_iter([(x, Value::from(5)), (y, Value::from(6))]);
        let inst2 = t.apply_valuation(&nu2).unwrap();
        assert!(inst2.contains(&tuple![5, 6]));
        assert_eq!(inst2.len(), 2);
    }

    #[test]
    fn apply_valuation_merges_coinciding_rows() {
        let (x, _, _) = xyz();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(1)], Condition::True)
            .build()
            .unwrap();
        let nu = Valuation::from_iter([(x, Value::from(1))]);
        assert_eq!(t.apply_valuation(&nu).unwrap().len(), 1);
    }

    #[test]
    fn active_constants_span_tuples_and_conditions() {
        let (x, y, _) = xyz();
        let t = CTable::builder(1)
            .row([t_const(7)], Condition::eq_vc(x, 9))
            .row([t_var(y)], Condition::True)
            .build()
            .unwrap();
        let d = t.active_constants();
        assert!(d.contains(&Value::from(7)) && d.contains(&Value::from(9)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn effective_domains_prefer_declared() {
        let (x, y, _) = xyz();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::eq_vv(x, y))
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        let slice = Domain::ints(1..=9);
        let eff = t.effective_domains(&slice);
        assert_eq!(eff[&x], Domain::ints(1..=2));
        assert_eq!(eff[&y], slice);
        assert!(!t.is_finite_domain());
    }

    #[test]
    fn rename_fresh_is_injective_and_carries_domains() {
        let (x, y, _) = xyz();
        let t = CTable::builder(2)
            .row([t_var(x), t_var(y)], Condition::eq_vv(x, y))
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        let mut g = VarGen::avoiding(t.vars());
        let (r, map) = t.rename_fresh(&mut g);
        assert_eq!(map.len(), 2);
        assert!(r.vars().is_disjoint(&t.vars()));
        assert_eq!(r.domains().len(), 1);
        assert_eq!(r.domains()[&map[&x]], Domain::ints(1..=2));
    }

    #[test]
    fn from_instance_is_ground() {
        let i = ipdb_rel::instance![[1, 2], [3, 4]];
        let t = CTable::from_instance(&i);
        assert_eq!(t.len(), 2);
        assert!(t.vars().is_empty());
        assert!(t.is_v_table());
        let nu = Valuation::new();
        assert_eq!(t.apply_valuation(&nu).unwrap(), i);
    }

    #[test]
    fn merge_domains_detects_conflicts() {
        let x = Var(0);
        let a = BTreeMap::from([(x, Domain::ints(1..=2))]);
        let b = BTreeMap::from([(x, Domain::ints(1..=3))]);
        assert_eq!(
            CTable::merge_domains(&a, &b),
            Err(TableError::DomainConflict(x))
        );
        let same = CTable::merge_domains(&a, &a.clone()).unwrap();
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn display_contains_rows_and_domains() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::neq_vc(x, 1))
            .domain(x, Domain::ints(1..=2))
            .build()
            .unwrap();
        let s = t.to_string();
        assert!(s.contains("x0 : x0≠1"));
        assert!(s.contains("dom(x0)={1, 2}"));
    }
}
