//! Fixpoint properties of condition cleanup.
//!
//! [`CTable::simplified`] runs one bottom-up pass of the condition smart
//! constructors per row. The pruning executor in `ipdb-engine` calls it
//! after *every* operator and relies on one pass being enough — i.e. on
//! `simplify` being idempotent — otherwise conditions would keep
//! shrinking pass over pass and "simplified" output would depend on how
//! many operators happened to run. These properties pin the fixpoint on
//! raw (un-smart-constructed) nested `And`/`Or`/`Not` shapes.

use proptest::prelude::*;

use ipdb_logic::strategies::arb_condition;
use ipdb_logic::{Condition, Term, Var};
use ipdb_tables::strategies::arb_ctable;
use ipdb_tables::{t_const, t_var, CTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `simplify` reaches its fixpoint in one pass: simplify-of-
    /// simplified is the identity on arbitrary raw condition trees.
    #[test]
    fn simplify_is_idempotent(c in arb_condition(4, 3, 4)) {
        let once = c.simplify();
        prop_assert_eq!(once.simplify(), once, "input {}", c);
    }

    /// The same fixpoint through the table-level wrapper: a second
    /// `simplified()` pass never changes any row condition.
    #[test]
    fn simplified_is_idempotent(t in arb_ctable(2, 4, 3, 2)) {
        let once = t.simplified();
        prop_assert_eq!(once.simplified(), once);
    }
}

/// Hand-picked adversarial nestings: complementary literals only
/// exposed after flattening, `Not` over compound members, constant
/// folding enabling unit laws upstream.
#[test]
fn simplify_fixpoint_on_adversarial_nestings() {
    let (x, y) = (Var(0), Var(1));
    let cases = [
        // ¬(¬(x=y ∧ ¬(x≠1)))
        Condition::Not(Box::new(Condition::Not(Box::new(Condition::And(vec![
            Condition::eq_vv(x, y),
            Condition::Not(Box::new(Condition::neq_vc(x, 1))),
        ]))))),
        // (x=y ∧ (x≠y ∨ false)) — complement surfaces after inner fold.
        Condition::And(vec![
            Condition::eq_vv(x, y),
            Condition::Or(vec![Condition::neq_vv(x, y), Condition::False]),
        ]),
        // Deep And/Or alternation with units sprinkled in.
        Condition::Or(vec![
            Condition::And(vec![
                Condition::True,
                Condition::Or(vec![Condition::eq_vc(x, 1), Condition::False]),
                Condition::And(vec![Condition::eq_vc(y, 2), Condition::True]),
            ]),
            Condition::Eq(Term::constant(3), Term::constant(3)),
        ]),
        // ¬(∅-And) and ¬(∅-Or).
        Condition::Not(Box::new(Condition::And(vec![]))),
        Condition::Not(Box::new(Condition::Or(vec![]))),
    ];
    for c in cases {
        let once = c.simplify();
        assert_eq!(once.simplify(), once, "input {c}");
    }
}

/// The table-level wrapper on a table whose rows mix all of the above.
#[test]
fn simplified_table_fixpoint_unit() {
    let (x, y) = (Var(0), Var(1));
    let t = CTable::builder(1)
        .row(
            [t_var(x)],
            Condition::Not(Box::new(Condition::And(vec![
                Condition::eq_vv(x, y),
                Condition::Not(Box::new(Condition::eq_vc(y, 0))),
            ]))),
        )
        .row(
            [t_const(1)],
            Condition::Or(vec![
                Condition::And(vec![Condition::True, Condition::eq_vc(x, 2)]),
                Condition::False,
            ]),
        )
        .build()
        .unwrap();
    let once = t.simplified();
    assert_eq!(once.simplified(), once);
}
