//! Property tests: the §9 connection and ℕ[X] universality on random
//! inputs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipdb_logic::Var;
use ipdb_provenance::connection::conditions_match_provenance;
use ipdb_provenance::hom::universality_sides;
use ipdb_provenance::{KRelation, NatSr, Poly, Token, TropSr};
use ipdb_rel::strategies::{arb_instance, arb_query_with_arity};
use ipdb_rel::{Domain, Fragment};
use ipdb_tables::strategies::arb_boolean_ctable;
use ipdb_tables::RepresentationSystem;

const NVARS: u32 = 3;

fn bool_doms() -> BTreeMap<Var, Domain> {
    (0..NVARS).map(|i| (Var(i), Domain::bools())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §9: c-table-algebra conditions ≡ PosBool provenance, on random
    /// boolean c-tables and random positive (SPJU) queries.
    #[test]
    fn section9_holds_on_random_inputs(
        t in arb_boolean_ctable(2, 3, NVARS, 2),
        q in arb_query_with_arity(2, 2, 2, Fragment::SPJU, 2)
    ) {
        let mismatch =
            conditions_match_provenance(t.as_ctable(), &q, &bool_doms()).unwrap();
        prop_assert_eq!(mismatch, None);
    }

    /// §9 with intersection as well (still positive).
    #[test]
    fn section9_holds_with_intersection(
        t in arb_boolean_ctable(1, 3, NVARS, 2),
        extra in arb_instance(1, 2, 2)
    ) {
        let q = ipdb_rel::Query::intersect(
            ipdb_rel::Query::Input,
            ipdb_rel::Query::Lit(extra),
        );
        let mismatch =
            conditions_match_provenance(t.as_ctable(), &q, &bool_doms()).unwrap();
        prop_assert_eq!(mismatch, None);
    }

    /// ℕ[X] universality for counting and min-cost semantics on random
    /// positive queries.
    #[test]
    fn universality_on_random_queries(
        base in arb_instance(2, 4, 2),
        q in arb_query_with_arity(2, 2, 2, Fragment::SPJU, 2),
        costs in proptest::collection::vec(0u64..10, 4)
    ) {
        // Annotate each base tuple with a token.
        let tokens: Vec<Token> = (0..base.len() as u32).map(Token).collect();
        let annotated = KRelation::from_annotated(
            2,
            base.iter().cloned().zip(tokens.iter().map(|t| Poly::token(*t))),
        )
        .unwrap();

        let nat_assign: BTreeMap<Token, NatSr> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, NatSr(1 + (i as u64 % 3))))
            .collect();
        let (a, b) = universality_sides(&q, &annotated, &nat_assign).unwrap();
        prop_assert_eq!(a, b);

        let trop_assign: BTreeMap<Token, TropSr> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, TropSr::cost(costs[i % costs.len()])))
            .collect();
        let (a, b) = universality_sides(&q, &annotated, &trop_assign).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Bool specialization of provenance agrees with plain set-semantics
    /// evaluation (support check).
    #[test]
    fn bool_specialization_matches_set_semantics(
        base in arb_instance(2, 4, 2),
        q in arb_query_with_arity(2, 2, 2, Fragment::SPJU, 2)
    ) {
        let annotated: KRelation<ipdb_provenance::BoolSr> =
            KRelation::from_instance(&base);
        let out = ipdb_provenance::eval(&q, &annotated).unwrap();
        prop_assert_eq!(out.support(), q.eval(&base).unwrap());
    }

    /// Sanity: worlds of the boolean c-tables used above stay consistent
    /// with their PosBool annotations (presence condition satisfiable ⇔
    /// tuple possible).
    #[test]
    fn presence_condition_satisfiable_iff_possible(
        t in arb_boolean_ctable(1, 3, NVARS, 2)
    ) {
        use ipdb_provenance::connection::condition_of;
        let worlds = t.worlds().unwrap();
        let all_tuples = worlds.possible_tuples();
        for probe in all_tuples.iter() {
            let c = condition_of(t.as_ctable(), probe);
            let satisfiable = ipdb_logic::sat::satisfiable(&c, &bool_doms()).unwrap();
            prop_assert!(satisfiable);
        }
    }
}
