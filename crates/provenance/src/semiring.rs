//! Commutative semirings and the standard provenance instances.
//!
//! A commutative semiring `(K, +, ·, 0, 1)` is what positive relational
//! algebra needs of its annotations: `+` interprets alternative
//! derivations (union, projection), `·` joint derivations (join), `0`
//! absence, `1` unconditional presence. The instances here are the
//! classical provenance hierarchy, with `ℕ[X]` (provenance polynomials)
//! as the free — most informative — object.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ipdb_logic::Condition;

/// A commutative semiring.
///
/// Laws (property-tested per instance): `+` and `·` are associative and
/// commutative, `0` is the unit of `+` and annihilates `·`, `1` is the
/// unit of `·`, and `·` distributes over `+`. For [`PosBoolSr`] the laws
/// hold up to logical equivalence (its `Eq` is syntactic after
/// simplification).
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// Additive identity (absent).
    fn zero() -> Self;
    /// Multiplicative identity (unconditionally present).
    fn one() -> Self;
    /// Alternative use (union / projection).
    fn plus(&self, other: &Self) -> Self;
    /// Joint use (join).
    fn times(&self, other: &Self) -> Self;
    /// Whether the annotation means "absent" (used to prune supports).
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// A provenance token: an opaque identifier for a base tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u32);

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Boolean semiring: set semantics.
// ---------------------------------------------------------------------

/// `({false, true}, ∨, ∧)` — ordinary set semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoolSr(pub bool);

impl Semiring for BoolSr {
    fn zero() -> Self {
        BoolSr(false)
    }
    fn one() -> Self {
        BoolSr(true)
    }
    fn plus(&self, o: &Self) -> Self {
        BoolSr(self.0 || o.0)
    }
    fn times(&self, o: &Self) -> Self {
        BoolSr(self.0 && o.0)
    }
}

// ---------------------------------------------------------------------
// Natural numbers: bag semantics / derivation counting.
// ---------------------------------------------------------------------

/// `(ℕ, +, ·)` — bag semantics; counts derivations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NatSr(pub u64);

impl Semiring for NatSr {
    fn zero() -> Self {
        NatSr(0)
    }
    fn one() -> Self {
        NatSr(1)
    }
    fn plus(&self, o: &Self) -> Self {
        NatSr(self.0.checked_add(o.0).expect("NatSr overflow"))
    }
    fn times(&self, o: &Self) -> Self {
        NatSr(self.0.checked_mul(o.0).expect("NatSr overflow"))
    }
}

// ---------------------------------------------------------------------
// Tropical semiring: minimum-cost derivation.
// ---------------------------------------------------------------------

/// `(ℕ ∪ {∞}, min, +)` — cheapest derivation; `None` is `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TropSr(pub Option<u64>);

impl TropSr {
    /// A finite cost.
    pub const fn cost(c: u64) -> Self {
        TropSr(Some(c))
    }
    /// Unreachable (infinite cost).
    pub const INF: TropSr = TropSr(None);
}

impl Semiring for TropSr {
    fn zero() -> Self {
        TropSr::INF
    }
    fn one() -> Self {
        TropSr(Some(0))
    }
    fn plus(&self, o: &Self) -> Self {
        match (self.0, o.0) {
            (Some(a), Some(b)) => TropSr(Some(a.min(b))),
            (Some(a), None) | (None, Some(a)) => TropSr(Some(a)),
            (None, None) => TropSr::INF,
        }
    }
    fn times(&self, o: &Self) -> Self {
        match (self.0, o.0) {
            (Some(a), Some(b)) => TropSr(Some(a.checked_add(b).expect("TropSr overflow"))),
            _ => TropSr::INF,
        }
    }
}

// ---------------------------------------------------------------------
// Fuzzy/Viterbi-style confidence: (max, min) on 0..=100.
// ---------------------------------------------------------------------

/// `(\[0,100\], max, min)` — fuzzy confidence, kept integral so equality
/// is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FuzzySr(pub u8);

impl FuzzySr {
    /// Builds a confidence, clamping to `0..=100`.
    pub fn conf(c: u8) -> Self {
        FuzzySr(c.min(100))
    }
}

impl Semiring for FuzzySr {
    fn zero() -> Self {
        FuzzySr(0)
    }
    fn one() -> Self {
        FuzzySr(100)
    }
    fn plus(&self, o: &Self) -> Self {
        FuzzySr(self.0.max(o.0))
    }
    fn times(&self, o: &Self) -> Self {
        FuzzySr(self.0.min(o.0))
    }
}

// ---------------------------------------------------------------------
// Why-provenance: sets of witness sets.
// ---------------------------------------------------------------------

/// `Why(X)`: sets of witnesses (a witness is a set of base tokens that
/// jointly derive the tuple). `+` unions the witness sets, `·` unions
/// witnesses pairwise. Buneman–Khanna–Tan's why-provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct WhySr(pub BTreeSet<BTreeSet<Token>>);

impl WhySr {
    /// The provenance of a base tuple: one singleton witness.
    pub fn token(t: Token) -> Self {
        WhySr(BTreeSet::from([BTreeSet::from([t])]))
    }

    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no witnesses (the zero).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Semiring for WhySr {
    fn zero() -> Self {
        WhySr(BTreeSet::new())
    }
    fn one() -> Self {
        WhySr(BTreeSet::from([BTreeSet::new()]))
    }
    fn plus(&self, o: &Self) -> Self {
        WhySr(self.0.union(&o.0).cloned().collect())
    }
    fn times(&self, o: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &o.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        WhySr(out)
    }
}

// ---------------------------------------------------------------------
// Positive boolean conditions: the c-table connection.
// ---------------------------------------------------------------------

/// `PosBool`: boolean event expressions under `∨`/`∧` — exactly the
/// c-table condition language of §2, which §9 identifies with lineage.
///
/// Equality is syntactic after smart-constructor simplification, so the
/// semiring laws hold *up to logical equivalence*; the `connection`
/// module compares semantically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PosBoolSr(pub Condition);

impl PosBoolSr {
    /// Wraps (and simplifies) a condition.
    pub fn new(c: Condition) -> Self {
        PosBoolSr(c.simplify())
    }

    /// The annotation of a base tuple guarded by boolean variable `v`.
    pub fn var(v: ipdb_logic::Var) -> Self {
        PosBoolSr(Condition::bvar(v))
    }
}

impl Semiring for PosBoolSr {
    fn zero() -> Self {
        PosBoolSr(Condition::False)
    }
    fn one() -> Self {
        PosBoolSr(Condition::True)
    }
    fn plus(&self, o: &Self) -> Self {
        PosBoolSr(Condition::or([self.0.clone(), o.0.clone()]))
    }
    fn times(&self, o: &Self) -> Self {
        PosBoolSr(Condition::and([self.0.clone(), o.0.clone()]))
    }
}

// ---------------------------------------------------------------------
// Provenance polynomials ℕ[X]: the free commutative semiring.
// ---------------------------------------------------------------------

/// A monomial: tokens with multiplicities (`x²y`).
pub type Monomial = BTreeMap<Token, u32>;

/// `ℕ[X]` — provenance polynomials in canonical form (monomial →
/// coefficient, no zero coefficients). The most general annotation: any
/// other semiring's value is recovered by evaluating the polynomial
/// (see `crate::hom`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, u64>,
}

impl Poly {
    /// The polynomial `x` for a token.
    pub fn token(t: Token) -> Poly {
        Poly {
            terms: BTreeMap::from([(BTreeMap::from([(t, 1)]), 1)]),
        }
    }

    /// A constant polynomial.
    pub fn constant(c: u64) -> Poly {
        if c == 0 {
            return Poly::default();
        }
        Poly {
            terms: BTreeMap::from([(BTreeMap::new(), c)]),
        }
    }

    /// The canonical `(monomial, coefficient)` terms.
    pub fn terms(&self) -> &BTreeMap<Monomial, u64> {
        &self.terms
    }

    /// Number of monomials.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The tokens occurring in the polynomial.
    pub fn tokens(&self) -> BTreeSet<Token> {
        self.terms.keys().flat_map(|m| m.keys().copied()).collect()
    }

    /// Total degree (0 for constants).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.values().sum::<u32>())
            .max()
            .unwrap_or(0)
    }
}

impl Semiring for Poly {
    fn zero() -> Self {
        Poly::default()
    }
    fn one() -> Self {
        Poly::constant(1)
    }
    fn plus(&self, o: &Self) -> Self {
        let mut terms = self.terms.clone();
        for (m, c) in &o.terms {
            let entry = terms.entry(m.clone()).or_insert(0);
            *entry = entry.checked_add(*c).expect("Poly overflow");
        }
        terms.retain(|_, c| *c != 0);
        Poly { terms }
    }
    fn times(&self, o: &Self) -> Self {
        let mut terms: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &o.terms {
                let mut m = m1.clone();
                for (t, e) in m2 {
                    let entry = m.entry(*t).or_insert(0);
                    *entry = entry.checked_add(*e).expect("Poly exponent overflow");
                }
                let coeff = c1.checked_mul(*c2).expect("Poly overflow");
                let entry = terms.entry(m).or_insert(0);
                *entry = entry.checked_add(coeff).expect("Poly overflow");
            }
        }
        terms.retain(|_, c| *c != 0);
        Poly { terms }
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 || m.is_empty() {
                write!(f, "{c}")?;
            }
            for (j, (t, e)) in m.iter().enumerate() {
                if j > 0 || *c != 1 {
                    write!(f, "·")?;
                }
                write!(f, "{t}")?;
                if *e > 1 {
                    write!(f, "^{e}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the semiring laws on a set of sample values with a custom
    /// equality (semantic for PosBool).
    fn check_laws<K: Semiring>(samples: &[K], eq: impl Fn(&K, &K) -> bool) {
        for a in samples {
            for b in samples {
                assert!(eq(&a.plus(b), &b.plus(a)), "+ commutative");
                assert!(eq(&a.times(b), &b.times(a)), "· commutative");
                for c in samples {
                    assert!(eq(&a.plus(b).plus(c), &a.plus(&b.plus(c))), "+ associative");
                    assert!(
                        eq(&a.times(b).times(c), &a.times(&b.times(c))),
                        "· associative"
                    );
                    assert!(
                        eq(&a.times(&b.plus(c)), &a.times(b).plus(&a.times(c))),
                        "distributivity"
                    );
                }
                assert!(eq(&a.plus(&K::zero()), a), "+ unit");
                assert!(eq(&a.times(&K::one()), a), "· unit");
                assert!(eq(&a.times(&K::zero()), &K::zero()), "annihilation");
            }
        }
    }

    #[test]
    fn bool_laws() {
        check_laws(&[BoolSr(false), BoolSr(true)], |a, b| a == b);
    }

    #[test]
    fn nat_laws() {
        check_laws(&[NatSr(0), NatSr(1), NatSr(2), NatSr(5)], |a, b| a == b);
    }

    #[test]
    fn trop_laws() {
        check_laws(
            &[
                TropSr::INF,
                TropSr::cost(0),
                TropSr::cost(3),
                TropSr::cost(7),
            ],
            |a, b| a == b,
        );
    }

    #[test]
    fn fuzzy_laws() {
        check_laws(
            &[FuzzySr(0), FuzzySr(30), FuzzySr(70), FuzzySr(100)],
            |a, b| a == b,
        );
    }

    #[test]
    fn why_laws() {
        let (p, q, r) = (Token(0), Token(1), Token(2));
        check_laws(
            &[
                WhySr::zero(),
                WhySr::one(),
                WhySr::token(p),
                WhySr::token(q).plus(&WhySr::token(r)),
                WhySr::token(p).times(&WhySr::token(q)),
            ],
            |a, b| a == b,
        );
    }

    #[test]
    fn posbool_laws_up_to_equivalence() {
        use ipdb_logic::{sat, Var};
        use ipdb_rel::Domain;
        let doms: std::collections::BTreeMap<Var, Domain> =
            (0..3).map(|i| (Var(i), Domain::bools())).collect();
        let eq = |a: &PosBoolSr, b: &PosBoolSr| sat::equivalent(&a.0, &b.0, &doms).unwrap();
        check_laws(
            &[
                PosBoolSr::zero(),
                PosBoolSr::one(),
                PosBoolSr::var(Var(0)),
                PosBoolSr::var(Var(1)).plus(&PosBoolSr::var(Var(2))),
                PosBoolSr::var(Var(0)).times(&PosBoolSr::var(Var(1))),
            ],
            eq,
        );
    }

    #[test]
    fn poly_laws() {
        let (x, y) = (Token(0), Token(1));
        check_laws(
            &[
                Poly::zero(),
                Poly::one(),
                Poly::token(x),
                Poly::token(y),
                Poly::token(x).times(&Poly::token(y)),
                Poly::token(x).plus(&Poly::constant(2)),
            ],
            |a, b| a == b,
        );
    }

    #[test]
    fn poly_canonical_form() {
        let x = Token(0);
        // x + x = 2x, x·x = x².
        let two_x = Poly::token(x).plus(&Poly::token(x));
        assert_eq!(two_x.terms().len(), 1);
        assert_eq!(two_x.terms().values().copied().next(), Some(2));
        let x_sq = Poly::token(x).times(&Poly::token(x));
        assert_eq!(x_sq.degree(), 2);
        assert_eq!(two_x.degree(), 1);
        // (x + 1)(x + 1) = x² + 2x + 1.
        let xp1 = Poly::token(x).plus(&Poly::one());
        let sq = xp1.times(&xp1);
        assert_eq!(sq.len(), 3);
        assert_eq!(sq.to_string(), "1 + 2·p0 + p0^2");
    }

    #[test]
    fn why_tracks_witnesses() {
        let (p, q) = (Token(0), Token(1));
        let joint = WhySr::token(p).times(&WhySr::token(q));
        assert_eq!(joint.len(), 1);
        let alt = WhySr::token(p).plus(&WhySr::token(q));
        assert_eq!(alt.len(), 2);
        // (p ∨ q)·p = {p} ∪ {p,q} — two witnesses, one minimal.
        let m = alt.times(&WhySr::token(p));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn trop_picks_min_cost() {
        let cheap = TropSr::cost(2);
        let pricey = TropSr::cost(9);
        assert_eq!(cheap.plus(&pricey), cheap);
        assert_eq!(cheap.times(&pricey), TropSr::cost(11));
        assert_eq!(TropSr::INF.plus(&cheap), cheap);
        assert!(TropSr::INF.is_zero());
    }

    #[test]
    fn poly_tokens_and_constants() {
        assert!(Poly::constant(0).is_empty());
        let x = Token(3);
        let p = Poly::token(x).plus(&Poly::constant(4));
        assert_eq!(p.tokens(), BTreeSet::from([x]));
        assert_eq!(Poly::constant(7).tokens(), BTreeSet::new());
    }
}
