//! # `ipdb-provenance` — semiring provenance (the paper's §9, made
//! executable)
//!
//! §9 of Green & Tannen observes: *"The condition that decorates a tuple
//! `t` in `q̄(T)` can be seen as the lineage, a.k.a. the
//! why-provenance, of the tuple `t`"* — the observation that grew into
//! the provenance-semiring framework (Green–Karvounarakis–Tannen,
//! PODS 2007). This crate implements that successor framework from
//! scratch and ties it back to c-tables:
//!
//! * [`Semiring`] — commutative semirings with instances:
//!   [`BoolSr`] (set semantics), [`NatSr`] (bag semantics / counting),
//!   [`TropSr`] (min-cost), [`FuzzySr`] (max–min confidence),
//!   [`WhySr`] (witness-set why-provenance), [`PosBoolSr`] (positive
//!   boolean event expressions — c-table conditions!), and [`Poly`]
//!   (provenance polynomials `ℕ[X]`, the free object);
//! * [`KRelation`] — annotated relations, with positive-RA evaluation
//!   ([`eval()`](fn@crate::eval)): union = `+`, join = `·`, projection = sums, selection =
//!   filtering;
//! * [`hom`] — evaluation of polynomials under token assignments; the
//!   *universality* of `ℕ[X]` (specialize-then-compute = compute-then-
//!   specialize) is property-tested;
//! * [`connection`] — the §9 statement as a theorem-check: annotating a
//!   ground c-table's tuples with their conditions and evaluating a
//!   positive query in `PosBool` yields, tuple by tuple, conditions
//!   logically equivalent to those of `q̄(T)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection;
pub mod error;
pub mod eval;
pub mod hom;
pub mod krel;
pub mod semiring;

pub use error::ProvError;
pub use eval::eval;
pub use krel::KRelation;
pub use semiring::{
    BoolSr, FuzzySr, Monomial, NatSr, Poly, PosBoolSr, Semiring, Token, TropSr, WhySr,
};
