//! Semiring homomorphisms and the universality of `ℕ[X]`.
//!
//! `ℕ[X]` is the free commutative semiring on the tokens `X`: any
//! assignment `X → K` extends uniquely to a homomorphism
//! `ℕ[X] → K` ([`eval_poly`]). Consequently, computing provenance
//! polynomials once and specializing commutes with evaluating the query
//! directly in the target semiring — the "universality" property that
//! makes `ℕ[X]` the most general annotation. [`specialize`] applies this
//! to whole K-relations; the property is tested for every semiring in
//! this crate.

use std::collections::BTreeMap;

use ipdb_rel::Query;

use crate::error::ProvError;
use crate::eval::eval;
use crate::krel::KRelation;
use crate::semiring::{Poly, Semiring, Token};

/// Evaluates a polynomial under a token assignment — the unique
/// homomorphism `ℕ[X] → K` extending the assignment. Tokens missing
/// from `assign` default to `0`.
pub fn eval_poly<K: Semiring>(p: &Poly, assign: &BTreeMap<Token, K>) -> K {
    let mut total = K::zero();
    for (monomial, coeff) in p.terms() {
        // coeff · Π tokᵉ
        let mut term = nat_to_k::<K>(*coeff);
        for (tok, e) in monomial {
            let k = assign.get(tok).cloned().unwrap_or_else(K::zero);
            for _ in 0..*e {
                term = term.times(&k);
            }
        }
        total = total.plus(&term);
    }
    total
}

/// The canonical `ℕ → K` (sum of `n` ones).
fn nat_to_k<K: Semiring>(n: u64) -> K {
    let mut acc = K::zero();
    for _ in 0..n {
        acc = acc.plus(&K::one());
    }
    acc
}

/// Specializes a polynomial-annotated relation to a concrete semiring.
pub fn specialize<K: Semiring>(r: &KRelation<Poly>, assign: &BTreeMap<Token, K>) -> KRelation<K> {
    r.map_annotations(|p| eval_poly(p, assign))
}

/// The universality check, packaged: evaluate `q` on token-annotated
/// input and specialize, versus specialize the input and evaluate
/// directly in `K`. Returns both sides for the caller to compare with
/// its notion of equality.
pub fn universality_sides<K: Semiring>(
    q: &Query,
    tokens: &KRelation<Poly>,
    assign: &BTreeMap<Token, K>,
) -> Result<(KRelation<K>, KRelation<K>), ProvError> {
    let poly_then_spec = specialize(&eval(q, tokens)?, assign);
    let spec_then_eval = eval(q, &specialize(tokens, assign))?;
    Ok((poly_then_spec, spec_then_eval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSr, FuzzySr, NatSr, PosBoolSr, TropSr, WhySr};
    use ipdb_logic::Var;
    use ipdb_rel::{tuple, Pred};

    fn token_rel() -> KRelation<Poly> {
        KRelation::from_annotated(
            2,
            [
                (tuple![1, 10], Poly::token(Token(0))),
                (tuple![1, 20], Poly::token(Token(1))),
                (tuple![2, 10], Poly::token(Token(2))),
            ],
        )
        .unwrap()
    }

    fn test_query() -> Query {
        // π₁(σ_{#2=#3}(V × V)) ∪ π₁(V)
        Query::union(
            Query::project(
                Query::select(
                    Query::product(Query::Input, Query::Input),
                    Pred::eq_cols(1, 2),
                ),
                vec![0],
            ),
            Query::project(Query::Input, vec![0]),
        )
    }

    #[test]
    fn eval_poly_basics() {
        let x = Token(0);
        let p = Poly::token(x).plus(&Poly::constant(2)); // x + 2
        let assign = BTreeMap::from([(x, NatSr(5))]);
        assert_eq!(eval_poly(&p, &assign), NatSr(7));
        // Missing token defaults to zero.
        let q = Poly::token(Token(9));
        assert_eq!(eval_poly::<NatSr>(&q, &assign), NatSr(0));
        // Exponents.
        let sq = Poly::token(x).times(&Poly::token(x));
        assert_eq!(eval_poly(&sq, &assign), NatSr(25));
    }

    #[test]
    fn universality_for_nat() {
        let assign = BTreeMap::from([
            (Token(0), NatSr(2)),
            (Token(1), NatSr(3)),
            (Token(2), NatSr(1)),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn universality_for_bool() {
        let assign = BTreeMap::from([
            (Token(0), BoolSr(true)),
            (Token(1), BoolSr(false)),
            (Token(2), BoolSr(true)),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn universality_for_trop() {
        let assign = BTreeMap::from([
            (Token(0), TropSr::cost(1)),
            (Token(1), TropSr::cost(4)),
            (Token(2), TropSr::INF),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn universality_for_fuzzy() {
        let assign = BTreeMap::from([
            (Token(0), FuzzySr(80)),
            (Token(1), FuzzySr(50)),
            (Token(2), FuzzySr(0)),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn universality_for_why() {
        let assign = BTreeMap::from([
            (Token(0), WhySr::token(Token(0))),
            (Token(1), WhySr::token(Token(1))),
            (Token(2), WhySr::token(Token(2))),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        // Why is not idempotent-free: ℕ[X] distinguishes 2xy from xy,
        // Why does not — the homomorphism collapses them, so the two
        // sides agree.
        assert_eq!(a, b);
    }

    #[test]
    fn universality_for_posbool_up_to_equivalence() {
        use ipdb_logic::sat;
        use ipdb_rel::Domain;
        let assign = BTreeMap::from([
            (Token(0), PosBoolSr::var(Var(0))),
            (Token(1), PosBoolSr::var(Var(1))),
            (Token(2), PosBoolSr::var(Var(2))),
        ]);
        let (a, b) = universality_sides(&test_query(), &token_rel(), &assign).unwrap();
        let doms: BTreeMap<Var, Domain> = (0..3).map(|i| (Var(i), Domain::bools())).collect();
        assert_eq!(a.support(), b.support());
        for (t, ka) in a.iter() {
            let kb = b.get(t);
            assert!(
                sat::equivalent(&ka.0, &kb.0, &doms).unwrap(),
                "tuple {t}: {} vs {}",
                ka.0,
                kb.0
            );
        }
    }

    #[test]
    fn specialize_drops_zeroed_tuples() {
        let assign = BTreeMap::from([
            (Token(0), BoolSr(false)),
            (Token(1), BoolSr(false)),
            (Token(2), BoolSr(true)),
        ]);
        let s = specialize(&token_rel(), &assign);
        assert_eq!(s.support_size(), 1);
        assert_eq!(s.get(&tuple![2, 10]), BoolSr(true));
    }
}
