//! Errors for annotated-relation evaluation.

use std::fmt;

use ipdb_rel::RelError;
use ipdb_tables::TableError;

/// Errors raised by K-relation construction and positive-RA evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvError {
    /// An underlying relational error.
    Rel(RelError),
    /// An underlying table error (from the c-table algebra side of the
    /// §9 connection).
    Table(TableError),
    /// Positive-RA evaluation was given a query using difference, which
    /// commutative semirings do not interpret (K-relations are a
    /// positive-algebra framework).
    DifferenceNotSupported,
    /// The c-table connection needs ground tuples (variables may appear
    /// only in conditions).
    NonGroundRow(String),
}

impl fmt::Display for ProvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvError::Rel(e) => write!(f, "{e}"),
            ProvError::Table(e) => write!(f, "{e}"),
            ProvError::DifferenceNotSupported => {
                write!(
                    f,
                    "difference is not defined on K-relations (positive RA only)"
                )
            }
            ProvError::NonGroundRow(s) => {
                write!(
                    f,
                    "K-relations annotate ground tuples; row {s} has variables"
                )
            }
        }
    }
}

impl std::error::Error for ProvError {}

impl From<RelError> for ProvError {
    fn from(e: RelError) -> Self {
        ProvError::Rel(e)
    }
}

impl From<TableError> for ProvError {
    fn from(e: TableError) -> Self {
        ProvError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ProvError::DifferenceNotSupported
            .to_string()
            .contains("positive"));
        let e: ProvError = RelError::RaggedLiteral.into();
        assert!(matches!(e, ProvError::Rel(_)));
    }
}
