//! Positive relational algebra on K-relations.
//!
//! The Green–Karvounarakis–Tannen semantics: union and projection sum
//! annotations, join multiplies them, selection keeps or zeroes them.
//! Difference has no commutative-semiring interpretation and is
//! rejected. Intersection is interpreted as the natural self-join on all
//! columns: `(R ∩ S)(t) = R(t) · S(t)`.

use ipdb_rel::{Query, Tuple};

use crate::error::ProvError;
use crate::krel::KRelation;
use crate::semiring::Semiring;

/// Evaluates a positive-RA query over a K-relation input.
///
/// `Lit` relations are annotated with `1` (they are unconditionally
/// present); `Diff` yields [`ProvError::DifferenceNotSupported`].
///
/// ```
/// use ipdb_provenance::{eval, KRelation, NatSr};
/// use ipdb_rel::{tuple, Query};
/// let r = KRelation::from_annotated(2, [
///     (tuple![1, 10], NatSr(2)),
///     (tuple![1, 20], NatSr(3)),
/// ]).unwrap();
/// // π₁ sums the annotations of merged tuples: 2 + 3 = 5 derivations.
/// let q = Query::project(Query::Input, vec![0]);
/// assert_eq!(eval(&q, &r).unwrap().get(&tuple![1]), NatSr(5));
/// ```
pub fn eval<K: Semiring>(q: &Query, input: &KRelation<K>) -> Result<KRelation<K>, ProvError> {
    Ok(match q {
        Query::Input => input.clone(),
        Query::Second => return Err(ProvError::Rel(ipdb_rel::RelError::NoSecondInput)),
        // Single-relation context: no catalog to resolve names against.
        Query::Rel(name) => {
            return Err(ProvError::Rel(ipdb_rel::RelError::UnknownRelation {
                name: name.clone(),
            }))
        }
        Query::Lit(i) => KRelation::from_instance(i),
        Query::Project(cols, q) => {
            let inner = eval(q, input)?;
            for &c in cols {
                if c >= inner.arity() {
                    return Err(ProvError::Rel(ipdb_rel::RelError::ColumnOutOfRange {
                        col: c,
                        arity: inner.arity(),
                    }));
                }
            }
            let mut out = KRelation::new(cols.len());
            for (t, k) in inner.iter() {
                let projected = t.project(cols).expect("cols checked");
                out.add(projected, k.clone())?;
            }
            out
        }
        Query::Select(p, q) => {
            let inner = eval(q, input)?;
            p.validate(inner.arity())?;
            let mut out = KRelation::new(inner.arity());
            for (t, k) in inner.iter() {
                if p.eval(t.values())? {
                    out.add(t.clone(), k.clone())?;
                }
            }
            out
        }
        Query::Product(a, b) => {
            let ra = eval(a, input)?;
            let rb = eval(b, input)?;
            let mut out = KRelation::new(ra.arity() + rb.arity());
            for (t1, k1) in ra.iter() {
                for (t2, k2) in rb.iter() {
                    out.add(t1.concat(t2), k1.times(k2))?;
                }
            }
            out
        }
        // Equijoin: σ(×) in one step — annotations multiply like the
        // product's and the selection keeps or drops whole pairs. The
        // provenance layer is not a hot path, so the pairing is the
        // plain nested loop with the join's predicate as the filter.
        Query::Join {
            on,
            residual,
            left,
            right,
        } => {
            let ra = eval(left, input)?;
            let rb = eval(right, input)?;
            let total = ra.arity() + rb.arity();
            let pred = Query::join_pred(on, residual.as_ref());
            pred.validate(total)?;
            let mut out = KRelation::new(total);
            for (t1, k1) in ra.iter() {
                for (t2, k2) in rb.iter() {
                    let t = t1.concat(t2);
                    if pred.eval(t.values())? {
                        out.add(t, k1.times(k2))?;
                    }
                }
            }
            out
        }
        Query::Union(a, b) => {
            let ra = eval(a, input)?;
            let rb = eval(b, input)?;
            if ra.arity() != rb.arity() {
                return Err(ProvError::Rel(ipdb_rel::RelError::ArityMismatch {
                    expected: ra.arity(),
                    got: rb.arity(),
                }));
            }
            let mut out = ra;
            for (t, k) in rb.iter() {
                out.add(t.clone(), k.clone())?;
            }
            out
        }
        Query::Intersect(a, b) => {
            let ra = eval(a, input)?;
            let rb = eval(b, input)?;
            if ra.arity() != rb.arity() {
                return Err(ProvError::Rel(ipdb_rel::RelError::ArityMismatch {
                    expected: ra.arity(),
                    got: rb.arity(),
                }));
            }
            let mut out = KRelation::new(ra.arity());
            for (t, k) in ra.iter() {
                let k2 = rb.get(t);
                out.add(t.clone(), k.times(&k2))?;
            }
            out
        }
        Query::Diff(_, _) => return Err(ProvError::DifferenceNotSupported),
    })
}

/// Evaluates and returns the annotation of one answer tuple (zero when
/// absent).
pub fn annotation_of<K: Semiring>(
    q: &Query,
    input: &KRelation<K>,
    t: &Tuple,
) -> Result<K, ProvError> {
    Ok(eval(q, input)?.get(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSr, NatSr, Poly, Token, TropSr, WhySr};
    use ipdb_rel::{instance, tuple, Pred};

    fn nat_rel() -> KRelation<NatSr> {
        KRelation::from_annotated(
            2,
            [
                (tuple![1, 10], NatSr(2)),
                (tuple![1, 20], NatSr(3)),
                (tuple![2, 10], NatSr(1)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bag_semantics_projection_counts() {
        let q = Query::project(Query::Input, vec![0]);
        let out = eval(&q, &nat_rel()).unwrap();
        assert_eq!(out.get(&tuple![1]), NatSr(5));
        assert_eq!(out.get(&tuple![2]), NatSr(1));
    }

    #[test]
    fn join_multiplies() {
        // Self-join on column 0: π₀ (σ_{#1=#3} (R × R)) — derivation
        // counts multiply then sum.
        let q = Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(0, 2),
            ),
            vec![0],
        );
        let out = eval(&q, &nat_rel()).unwrap();
        // key 1: (2+3)² = 25 pairings; key 2: 1.
        assert_eq!(out.get(&tuple![1]), NatSr(25));
        assert_eq!(out.get(&tuple![2]), NatSr(1));
    }

    #[test]
    fn first_class_join_agrees_with_selected_product() {
        // The Join node and its σ(×) lowering annotate identically.
        let join = Query::project(
            Query::join(Query::Input, Query::Input, [(0, 2)], None),
            vec![0],
        );
        let out = eval(&join, &nat_rel()).unwrap();
        assert_eq!(out.get(&tuple![1]), NatSr(25));
        assert_eq!(out.get(&tuple![2]), NatSr(1));
        // With a residual the filter zeroes the dropped pairs.
        let join_r = Query::join(
            Query::Input,
            Query::Input,
            [(0, 2)],
            Some(Pred::neq_cols(1, 3)),
        );
        let lowered = Query::select(
            Query::product(Query::Input, Query::Input),
            Query::join_pred(&[(0, 2)], Some(&Pred::neq_cols(1, 3))),
        );
        let a = eval(&join_r, &nat_rel()).unwrap();
        let b = eval(&lowered, &nat_rel()).unwrap();
        assert_eq!(a.support(), b.support());
        for (t, k) in a.iter() {
            assert_eq!(*k, b.get(t));
        }
    }

    #[test]
    fn union_adds_intersect_multiplies() {
        let a = KRelation::from_annotated(1, [(tuple![1], NatSr(2))]).unwrap();
        let q_union = Query::union(Query::Input, Query::Lit(instance![[1], [2]]));
        let u = eval(&q_union, &a).unwrap();
        assert_eq!(u.get(&tuple![1]), NatSr(3)); // 2 + 1
        assert_eq!(u.get(&tuple![2]), NatSr(1));
        let q_meet = Query::intersect(Query::Input, Query::Lit(instance![[1]]));
        let m = eval(&q_meet, &a).unwrap();
        assert_eq!(m.get(&tuple![1]), NatSr(2)); // 2 · 1
    }

    #[test]
    fn difference_rejected() {
        let a: KRelation<BoolSr> = KRelation::new(1);
        let q = Query::diff(Query::Input, Query::Input);
        assert_eq!(eval(&q, &a).unwrap_err(), ProvError::DifferenceNotSupported);
    }

    #[test]
    fn bool_semantics_matches_set_semantics() {
        let i = instance![[1, 10], [2, 20]];
        let r: KRelation<BoolSr> = KRelation::from_instance(&i);
        let q = Query::project(Query::select(Query::Input, Pred::eq_const(0, 1)), vec![1]);
        let out = eval(&q, &r).unwrap();
        assert_eq!(out.support(), q.eval(&i).unwrap());
    }

    #[test]
    fn why_provenance_through_join() {
        let (p, q_tok) = (Token(0), Token(1));
        let r = KRelation::from_annotated(
            1,
            [
                (tuple![1], WhySr::token(p)),
                (tuple![2], WhySr::token(q_tok)),
            ],
        )
        .unwrap();
        // R × R: tuple (1,2) has the joint witness {p, q}.
        let prod = eval(&Query::product(Query::Input, Query::Input), &r).unwrap();
        let w = prod.get(&tuple![1, 2]);
        assert_eq!(w.len(), 1);
        assert!(w.0.contains(&std::collections::BTreeSet::from([p, q_tok])));
    }

    #[test]
    fn tropical_cost_of_answer() {
        let r = KRelation::from_annotated(
            1,
            [(tuple![1], TropSr::cost(3)), (tuple![2], TropSr::cost(5))],
        )
        .unwrap();
        // π over everything merges alternatives: min cost.
        let q = Query::project(Query::Input, vec![]);
        let out = eval(&q, &r).unwrap();
        assert_eq!(out.get(&Tuple::empty()), TropSr::cost(3));
    }

    #[test]
    fn polynomial_records_structure() {
        let (x, y) = (Token(0), Token(1));
        let r = KRelation::from_annotated(
            1,
            [(tuple![1], Poly::token(x)), (tuple![2], Poly::token(y))],
        )
        .unwrap();
        // π_[] (R × R) = (x + y)² as a derivation polynomial.
        let q = Query::project(Query::product(Query::Input, Query::Input), vec![]);
        let out = eval(&q, &r).unwrap();
        let p = out.get(&Tuple::empty());
        // x² + 2xy + y².
        assert_eq!(p.len(), 3);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn annotation_of_absent_tuple_is_zero() {
        let r = nat_rel();
        assert_eq!(
            annotation_of(&Query::Input, &r, &tuple![9, 9]).unwrap(),
            NatSr(0)
        );
    }
}
