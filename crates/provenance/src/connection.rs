//! The §9 connection: c-table conditions **are** lineage.
//!
//! "There is a good reason why the c-table algebra was in essence
//! rediscovered in \[15, 22, 34\] …: the condition that decorates a tuple
//! `t` in `q̄(T)` can be seen as the lineage, a.k.a. the
//! why-provenance, of the tuple `t`." (paper §9)
//!
//! Executable form: take a c-table with *ground* tuples (e.g. a boolean
//! c-table); annotate each tuple with its condition in the
//! [`PosBoolSr`] semiring; evaluate any positive query with the
//! K-relation semantics; then, tuple by tuple, the resulting annotation
//! is **logically equivalent** to the condition the c-table algebra
//! `q̄` computes. [`conditions_match_provenance`] checks this; the crate
//! tests and `ipdb-bench` exercise it on random tables and queries.

use std::collections::BTreeMap;

use ipdb_logic::{sat, Condition, Var};
use ipdb_rel::{Domain, Query, Tuple};
use ipdb_tables::{algebra, CTable};

use crate::error::ProvError;
use crate::eval::eval;
use crate::krel::KRelation;
use crate::semiring::PosBoolSr;

/// Annotates a ground-tuple c-table as a `PosBool` K-relation: each
/// tuple's annotation is (the disjunction of) its condition(s).
///
/// Errors on rows whose tuples contain variables — K-relations annotate
/// ground tuples (boolean c-tables always qualify).
pub fn ctable_to_krel(t: &CTable) -> Result<KRelation<PosBoolSr>, ProvError> {
    let mut out = KRelation::new(t.arity());
    for row in t.rows() {
        if !row.is_ground() {
            return Err(ProvError::NonGroundRow(format!("{row}")));
        }
        let tuple: Tuple = row
            .tuple
            .iter()
            .map(|term| term.as_const().expect("checked ground").clone())
            .collect();
        out.add(tuple, PosBoolSr::new(row.cond.clone()))?;
    }
    Ok(out)
}

/// The condition a (ground) c-table assigns to tuple `t`: the
/// disjunction over matching rows — `t`'s event expression / lineage.
pub fn condition_of(t: &CTable, probe: &Tuple) -> Condition {
    let probe_terms: Vec<ipdb_logic::Term> = probe
        .iter()
        .map(|v| ipdb_logic::Term::Const(v.clone()))
        .collect();
    Condition::or(t.rows().iter().map(|row| {
        Condition::and([
            algebra::tuples_eq(&row.tuple, &probe_terms),
            row.cond.clone(),
        ])
    }))
}

/// The §9 theorem check: for a positive query `q` over a ground c-table
/// `T`, the `PosBool` annotation of every answer tuple is logically
/// equivalent (over the variables' domains) to the condition `q̄(T)`
/// assigns it.
///
/// Returns the first mismatching tuple if any.
pub fn conditions_match_provenance(
    t: &CTable,
    q: &Query,
    doms: &BTreeMap<Var, Domain>,
) -> Result<Option<Tuple>, ProvError> {
    let annotated = ctable_to_krel(t)?;
    let prov = eval(q, &annotated)?;
    let qbar = t.eval_query(q)?;
    // Compare on the union of supports: provenance support plus every
    // grounding of q̄(T)'s rows (ground tables stay ground under q̄ for
    // positive q).
    let mut probes = std::collections::BTreeSet::new();
    for (tuple, _) in prov.iter() {
        probes.insert(tuple.clone());
    }
    for row in qbar.rows() {
        if row.is_ground() {
            probes.insert(
                row.tuple
                    .iter()
                    .map(|term| term.as_const().expect("ground").clone())
                    .collect(),
            );
        }
    }
    for probe in probes {
        let lhs = prov.get(&probe).0;
        let rhs = condition_of(&qbar, &probe);
        let equivalent = sat::equivalent(&lhs, &rhs, doms)
            .map_err(|e| ProvError::Table(ipdb_tables::TableError::Logic(e)))?;
        if !equivalent {
            return Ok(Some(probe));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::Condition;
    use ipdb_rel::{tuple, Pred};
    use ipdb_tables::{t_const, t_var, BooleanCTable};

    fn bool_doms(n: u32) -> BTreeMap<Var, Domain> {
        (0..n).map(|i| (Var(i), Domain::bools())).collect()
    }

    fn sample_boolean_table() -> CTable {
        let (a, b) = (Var(0), Var(1));
        let mut t = BooleanCTable::new(2);
        t.push(tuple![1, 10], Condition::bvar(a)).unwrap();
        t.push(
            tuple![1, 20],
            Condition::and([Condition::bvar(a), Condition::bvar(b)]),
        )
        .unwrap();
        t.push(tuple![2, 10], Condition::nbvar(b)).unwrap();
        t.into_ctable()
    }

    #[test]
    fn ctable_to_krel_requires_ground_tuples() {
        let x = Var(0);
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        assert!(matches!(
            ctable_to_krel(&t),
            Err(ProvError::NonGroundRow(_))
        ));
    }

    #[test]
    fn annotation_is_row_condition() {
        let t = sample_boolean_table();
        let r = ctable_to_krel(&t).unwrap();
        assert_eq!(r.get(&tuple![1, 10]).0, Condition::bvar(Var(0)));
    }

    #[test]
    fn duplicate_tuples_or_their_conditions() {
        let t = CTable::builder(1)
            .row([t_const(1)], Condition::bvar(Var(0)))
            .row([t_const(1)], Condition::bvar(Var(1)))
            .build()
            .unwrap();
        let r = ctable_to_krel(&t).unwrap();
        assert_eq!(
            r.get(&tuple![1]).0,
            Condition::or([Condition::bvar(Var(0)), Condition::bvar(Var(1))])
        );
    }

    #[test]
    fn section9_connection_on_projection() {
        let t = sample_boolean_table();
        let q = Query::project(Query::Input, vec![1]);
        assert_eq!(
            conditions_match_provenance(&t, &q, &bool_doms(2)).unwrap(),
            None
        );
    }

    #[test]
    fn section9_connection_on_spju() {
        let t = sample_boolean_table();
        let q = Query::union(
            Query::project(
                Query::select(
                    Query::product(Query::Input, Query::Input),
                    Pred::eq_cols(1, 3),
                ),
                vec![0, 2],
            ),
            Query::project(Query::Input, vec![0, 0]),
        );
        assert_eq!(
            conditions_match_provenance(&t, &q, &bool_doms(2)).unwrap(),
            None
        );
    }

    #[test]
    fn section9_connection_on_intersection() {
        let t = sample_boolean_table();
        let q = Query::intersect(
            Query::Input,
            Query::Lit(ipdb_rel::instance![[1, 10], [2, 10]]),
        );
        assert_eq!(
            conditions_match_provenance(&t, &q, &bool_doms(2)).unwrap(),
            None
        );
    }

    #[test]
    fn condition_of_absent_tuple_is_false() {
        let t = sample_boolean_table();
        assert_eq!(condition_of(&t, &tuple![9, 9]), Condition::False);
    }
}
