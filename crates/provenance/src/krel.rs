//! K-relations: relations annotated with semiring values.
//!
//! A K-relation of arity `n` is a map `Dⁿ → K` with finite support —
//! tuples not in the map are annotated `0`. Set semantics is the special
//! case `K = BoolSr`; c-table semantics the case `K = PosBoolSr` (§9).

use std::collections::BTreeMap;
use std::fmt;

use ipdb_rel::{Instance, RelError, Tuple};

use crate::error::ProvError;
use crate::semiring::Semiring;

/// A finitely-supported annotated relation.
///
/// ```
/// use ipdb_provenance::{KRelation, NatSr};
/// use ipdb_rel::tuple;
/// let mut r = KRelation::new(1);
/// r.add(tuple![1], NatSr(2)).unwrap();
/// r.add(tuple![1], NatSr(3)).unwrap(); // annotations combine with +
/// assert_eq!(r.get(&tuple![1]), NatSr(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KRelation<K> {
    arity: usize,
    map: BTreeMap<Tuple, K>,
}

impl<K: Semiring> KRelation<K> {
    /// The everywhere-zero K-relation.
    pub fn new(arity: usize) -> Self {
        KRelation {
            arity,
            map: BTreeMap::new(),
        }
    }

    /// Builds from annotated tuples (duplicates combine with `+`, zeros
    /// are dropped).
    pub fn from_annotated(
        arity: usize,
        rows: impl IntoIterator<Item = (Tuple, K)>,
    ) -> Result<Self, ProvError> {
        let mut r = KRelation::new(arity);
        for (t, k) in rows {
            r.add(t, k)?;
        }
        Ok(r)
    }

    /// A conventional instance as a K-relation: every tuple annotated
    /// `1`.
    pub fn from_instance(i: &Instance) -> Self {
        KRelation {
            arity: i.arity(),
            map: i.iter().map(|t| (t.clone(), K::one())).collect(),
        }
    }

    /// Adds an annotation (combines with `+` if the tuple is present).
    pub fn add(&mut self, t: Tuple, k: K) -> Result<(), ProvError> {
        if t.arity() != self.arity {
            return Err(ProvError::Rel(RelError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            }));
        }
        if k.is_zero() {
            return Ok(());
        }
        match self.map.get_mut(&t) {
            Some(existing) => {
                *existing = existing.plus(&k);
                if existing.is_zero() {
                    self.map.remove(&t);
                }
            }
            None => {
                self.map.insert(t, k);
            }
        }
        Ok(())
    }

    /// The annotation of `t` (`0` when absent).
    pub fn get(&self, t: &Tuple) -> K {
        self.map.get(t).cloned().unwrap_or_else(K::zero)
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples with non-zero annotation.
    pub fn support_size(&self) -> usize {
        self.map.len()
    }

    /// Whether the support is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the support in canonical order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, Tuple, K> {
        self.map.iter()
    }

    /// The support as a conventional instance (the tuples with non-zero
    /// annotation).
    pub fn support(&self) -> Instance {
        let mut i = Instance::empty(self.arity);
        for t in self.map.keys() {
            i.insert(t.clone()).expect("arities agree");
        }
        i
    }

    /// Maps annotations through a function (e.g. a semiring
    /// homomorphism), dropping tuples that become zero.
    pub fn map_annotations<L: Semiring>(&self, mut f: impl FnMut(&K) -> L) -> KRelation<L> {
        let mut out = KRelation::new(self.arity);
        for (t, k) in &self.map {
            let l = f(k);
            if !l.is_zero() {
                out.map.insert(t.clone(), l);
            }
        }
        out
    }
}

impl<K: Semiring + fmt::Debug> fmt::Display for KRelation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "K-relation (arity {}):", self.arity)?;
        for (t, k) in &self.map {
            writeln!(f, "  {t} : {k:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSr, NatSr};
    use ipdb_rel::{instance, tuple};

    #[test]
    fn add_combines_and_drops_zero() {
        let mut r: KRelation<NatSr> = KRelation::new(1);
        r.add(tuple![1], NatSr(0)).unwrap();
        assert!(r.is_empty());
        r.add(tuple![1], NatSr(2)).unwrap();
        r.add(tuple![1], NatSr(3)).unwrap();
        assert_eq!(r.get(&tuple![1]), NatSr(5));
        assert_eq!(r.support_size(), 1);
        assert!(r.add(tuple![1, 2], NatSr(1)).is_err());
    }

    #[test]
    fn from_instance_annotates_one() {
        let i = instance![[1], [2]];
        let r: KRelation<BoolSr> = KRelation::from_instance(&i);
        assert_eq!(r.get(&tuple![1]), BoolSr(true));
        assert_eq!(r.get(&tuple![3]), BoolSr(false));
        assert_eq!(r.support(), i);
    }

    #[test]
    fn map_annotations_homomorphism() {
        let r =
            KRelation::from_annotated(1, [(tuple![1], NatSr(3)), (tuple![2], NatSr(1))]).unwrap();
        // ℕ → Bool: n ↦ n > 0 (the support homomorphism).
        let b = r.map_annotations(|n| BoolSr(n.0 > 0));
        assert_eq!(b.get(&tuple![1]), BoolSr(true));
        assert_eq!(b.support_size(), 2);
    }
}
