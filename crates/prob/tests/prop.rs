//! Property tests for the probabilistic layer: the three probability
//! engines agree, and Theorems 8–9 hold on random inputs, all with exact
//! rationals.

use proptest::prelude::*;

use ipdb_logic::{Var, VarGen};
use ipdb_prob::answering::{tuple_prob_bdd, tuple_prob_enum, tuple_prob_shannon};
use ipdb_prob::{rat, theorem8_table, BooleanPcTable, FiniteSpace, PDatabase, PcTable, Rat};
use ipdb_rel::strategies::{arb_instance, arb_query};
use ipdb_rel::{Tuple, Value};
use ipdb_tables::strategies::{arb_boolean_ctable, arb_finite_ctable};

/// A random exact probability `k/8` with `k ∈ 0..=8`.
fn arb_prob() -> impl Strategy<Value = Rat> {
    (0i128..=8).prop_map(|k| Rat::new(k, 8))
}

/// A random pc-table: finite-domain c-table + uniform-ish distributions
/// over each variable's domain.
fn arb_pctable() -> impl Strategy<Value = PcTable<Rat>> {
    arb_finite_ctable(1, 3, 2, 2).prop_map(|t| {
        let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
            .vars()
            .into_iter()
            .map(|v| {
                let dom = &t.domains()[&v];
                let n = dom.len() as i128;
                let d = FiniteSpace::new(dom.iter().map(|val| (val.clone(), Rat::new(1, n))))
                    .expect("uniform sums to 1");
                (v, d)
            })
            .collect();
        PcTable::new(t, dists).expect("all vars have dists")
    })
}

/// A random boolean pc-table with probabilities in eighths.
fn arb_boolean_pctable() -> impl Strategy<Value = BooleanPcTable<Rat>> {
    arb_boolean_ctable(1, 3, 3, 2).prop_flat_map(|t| {
        let vars: Vec<Var> = t.vars().into_iter().collect();
        proptest::collection::vec(arb_prob(), vars.len()).prop_map(move |ps| {
            BooleanPcTable::new(t.clone(), vars.iter().copied().zip(ps))
                .expect("valid boolean pc-table")
        })
    })
}

/// A random p-database over arity-1 instances with rational masses.
fn arb_pdatabase() -> impl Strategy<Value = PDatabase<Rat>> {
    proptest::collection::vec(arb_instance(1, 2, 2), 1..=4).prop_map(|worlds| {
        // Give world i mass proportional to i+1, normalized exactly.
        let total: i128 = (1..=worlds.len() as i128).sum();
        PDatabase::from_outcomes(
            1,
            worlds
                .into_iter()
                .enumerate()
                .map(|(i, w)| (w, Rat::new(i as i128 + 1, total))),
        )
        .expect("masses sum to 1")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Enumeration and Shannon expansion agree on arbitrary pc-tables.
    #[test]
    fn engines_agree_on_pctables(pc in arb_pctable(), probe in 0i64..=2) {
        let t = Tuple::new([probe]);
        prop_assert_eq!(
            tuple_prob_enum(&pc, &t).unwrap(),
            tuple_prob_shannon(&pc, &t).unwrap()
        );
    }

    /// All three engines agree on boolean pc-tables.
    #[test]
    fn engines_agree_on_boolean(bpc in arb_boolean_pctable(), probe in 0i64..=2) {
        let t = Tuple::new([probe]);
        let e = tuple_prob_enum(bpc.as_pctable(), &t).unwrap();
        let s = tuple_prob_shannon(bpc.as_pctable(), &t).unwrap();
        let b = tuple_prob_bdd(&bpc, &t).unwrap();
        prop_assert_eq!(e, s);
        prop_assert_eq!(s, b);
    }

    /// **Theorem 8**: the constructed boolean pc-table has exactly the
    /// input distribution.
    #[test]
    fn theorem8_round_trips(db in arb_pdatabase()) {
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        prop_assert!(t.mod_space().unwrap().same_distribution(&db));
    }

    /// **Theorem 9**: `Mod(q̄(T))` equals the image of `Mod(T)` under `q`
    /// as distributions.
    #[test]
    fn theorem9_closure(pc in arb_pctable(), q in arb_query(1, 2, 2, 2)) {
        let lhs = pc.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = pc.mod_space().unwrap().map_query(&q).unwrap();
        prop_assert!(lhs.same_distribution(&rhs));
    }

    /// Mod of a pc-table always has total mass exactly 1.
    #[test]
    fn mod_mass_is_one(pc in arb_pctable()) {
        prop_assert_eq!(pc.mod_space().unwrap().space().total_mass(), Rat::ONE);
    }

    /// Theorem 8 composed with Theorem 9: query the reconstructed table,
    /// same answer distribution as querying the original p-database.
    #[test]
    fn thm8_thm9_compose(db in arb_pdatabase(), q in arb_query(1, 1, 2, 2)) {
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        let via_table = t.eval_query(&q).unwrap().mod_space().unwrap();
        let direct = db.map_query(&q).unwrap();
        prop_assert!(via_table.same_distribution(&direct));
    }
}

#[test]
fn paper_dirac_degenerate_case() {
    // Degenerate but legal: a variable with a single-outcome space.
    let mut g = VarGen::new();
    let x = g.fresh();
    let table = ipdb_tables::CTable::builder(1)
        .row([ipdb_tables::t_var(x)], ipdb_logic::Condition::True)
        .build()
        .unwrap();
    let pc: PcTable<Rat> = PcTable::new(table, [(x, FiniteSpace::dirac(Value::from(5)))]).unwrap();
    let m = pc.mod_space().unwrap();
    assert_eq!(m.len(), 1);
    assert_eq!(m.tuple_prob(&ipdb_rel::tuple![5]), rat!(1));
}
