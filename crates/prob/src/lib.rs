//! # `ipdb-prob` — probabilistic databases and probabilistic tables
//!
//! §6–§8 of Green & Tannen: probabilistic models *are* incompleteness
//! models with probability information. This crate supplies:
//!
//! * [`Rat`] — exact rationals, so distribution equalities (Thms 8–9)
//!   are testable exactly; every engine is also generic over `f64`
//!   through the [`Weight`] trait re-exported from `ipdb-bdd`;
//! * [`FiniteSpace`] — finite probability spaces with the two paper
//!   constructions: **product** (Def. 12) and **image** (Def. 10);
//! * [`PDatabase`] — Def. 9 probabilistic databases, with the Def. 11
//!   closure operation (query = image space);
//! * [`PTable`] — p-`?`-tables (§7) with the rigorous Prop. 2 semantics;
//! * [`POrSetTable`] — p-or-set-tables (§7, ProbView simplified);
//! * [`PcTable`] / [`BooleanPcTable`] — **probabilistic c-tables**
//!   (Def. 13), the paper's contribution: complete (Thm 8, see
//!   [`theorem8_table`]) and closed under RA (Thm 9, see
//!   [`PcTable::eval_query`]);
//! * [`answering`] — the engines for `P[t ∈ q-answer]`: valuation
//!   enumeration, Shannon expansion of the event expression, boolean
//!   BDD weighted model counting, and the finite-domain BDD fast path
//!   ([`PcTable::tuple_prob_bdd`] / [`PcTable::answer_dist_bdd`]) that
//!   one-hot-encodes multi-valued variables and counts presence
//!   conditions with one shared manager instead of walking the §8
//!   valuation product space;
//! * [`extensional`] — the §8 reading of Dalvi–Suciu \[9\]: hierarchical
//!   safety test, safe-plan evaluation, lineage-based exact evaluation,
//!   and the unsound forced-extensional plan for contrast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answering;
pub mod chain;
pub mod complete;
pub mod error;
pub mod extensional;
pub mod pctable;
pub mod pdb;
pub mod porset;
pub mod possibilistic;
pub mod ptable;
pub mod rat;
pub mod space;

pub use chain::{ChainPcTable, CondDist};
pub use complete::theorem8_table;
pub use error::ProbError;
pub use ipdb_bdd::{BddStats, Weight};
pub use pctable::{BooleanPcTable, PcTable, VarDists};
pub use pdb::PDatabase;
pub use porset::{PCell, POrSetTable};
pub use possibilistic::{PiDatabase, PossCTable, PossDist};
pub use ptable::PTable;
pub use rat::Rat;
pub use space::FiniteSpace;
