//! Possibilistic tables — the §9 outlook, "following again, as we did
//! here, the parallel with incompleteness".
//!
//! Possibility theory \[19\] replaces the probability axioms with
//! `(max, min)`: a *possibility distribution* `π` assigns each world a
//! degree in `\[0,1\]` with `max = 1` (something is fully possible), an
//! event's possibility is the `max` over its worlds, and joint
//! possibility of independent components is the `min`. The paper's
//! recipe transfers verbatim: a **possibilistic c-table** attaches to
//! each variable a possibility distribution over its domain; `Mod` is
//! the image of the `min`-combined valuation space under `ν ↦ ν(T)`
//! (`max`-merging collided worlds, the Def. 10 analogue); and the same
//! algebra `q̄` gives closure (the Def. 11 analogue with `max`-images).
//!
//! Degrees are integer per-mille values (`0..=1000`) so equality is
//! exact.

use std::collections::BTreeMap;
use std::fmt;

use ipdb_logic::{Valuation, Var};
use ipdb_rel::{Domain, Instance, Query, Tuple, Value};
use ipdb_tables::CTable;

use crate::error::ProbError;

/// A possibility degree in per-mille (`1000` = fully possible).
pub type Degree = u16;

/// The top degree.
pub const FULLY: Degree = 1000;

/// A possibility distribution over values: degrees with `max = 1000`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossDist {
    degrees: BTreeMap<Value, Degree>,
}

impl PossDist {
    /// Builds a distribution; requires a non-empty support whose maximum
    /// degree is exactly [`FULLY`] (normalization).
    pub fn new(degrees: impl IntoIterator<Item = (Value, Degree)>) -> Result<Self, ProbError> {
        let degrees: BTreeMap<Value, Degree> =
            degrees.into_iter().filter(|(_, d)| *d > 0).collect();
        if degrees.is_empty() {
            return Err(ProbError::EmptyDistribution);
        }
        let max = degrees.values().copied().max().unwrap_or(0);
        if max != FULLY {
            return Err(ProbError::MassNotOne(format!(
                "possibility distributions must have max degree {FULLY}, got {max}"
            )));
        }
        Ok(PossDist { degrees })
    }

    /// Degree of a value (0 when impossible).
    pub fn degree(&self, v: &Value) -> Degree {
        self.degrees.get(v).copied().unwrap_or(0)
    }

    /// The support.
    pub fn support(&self) -> impl Iterator<Item = &Value> {
        self.degrees.keys()
    }

    /// Iterates `(value, degree)`.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, Value, Degree> {
        self.degrees.iter()
    }
}

/// A possibility distribution over worlds (the Def. 9 analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiDatabase {
    arity: usize,
    worlds: BTreeMap<Instance, Degree>,
}

impl PiDatabase {
    /// Arity of the worlds.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of worlds with non-zero possibility.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether no world is possible (cannot happen for normalized
    /// tables).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Iterates `(world, degree)`.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, Instance, Degree> {
        self.worlds.iter()
    }

    /// `Π[world]`.
    pub fn world_degree(&self, w: &Instance) -> Degree {
        self.worlds.get(w).copied().unwrap_or(0)
    }

    /// `Π[t ∈ I]` — the possibility of a tuple: max over worlds
    /// containing it.
    pub fn tuple_degree(&self, t: &Tuple) -> Degree {
        self.worlds
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(0)
    }

    /// The *necessity* of a tuple: `N[t] = 1000 − Π[t ∉ I]` (dual).
    pub fn tuple_necessity(&self, t: &Tuple) -> Degree {
        let not_in = self
            .worlds
            .iter()
            .filter(|(w, _)| !w.contains(t))
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(0);
        FULLY - not_in
    }

    /// Normalization check: some world is fully possible.
    pub fn is_normalized(&self) -> bool {
        self.worlds.values().any(|d| *d == FULLY)
    }

    /// The Def. 10/11 analogue: `max`-image of the distribution under
    /// `q`.
    pub fn map_query(&self, q: &Query) -> Result<PiDatabase, ProbError> {
        let out_arity = q.arity(self.arity).map_err(ProbError::Rel)?;
        let mut worlds: BTreeMap<Instance, Degree> = BTreeMap::new();
        for (w, d) in &self.worlds {
            let img = q.eval(w).map_err(ProbError::Rel)?;
            let e = worlds.entry(img).or_insert(0);
            *e = (*e).max(*d);
        }
        Ok(PiDatabase {
            arity: out_arity,
            worlds,
        })
    }
}

impl fmt::Display for PiDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "π-database (arity {}):", self.arity)?;
        for (w, d) in &self.worlds {
            writeln!(f, "  {w} : {d}‰")?;
        }
        Ok(())
    }
}

/// A possibilistic c-table: a c-table plus a possibility distribution
/// per variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossCTable {
    table: CTable,
    dists: BTreeMap<Var, PossDist>,
}

impl PossCTable {
    /// Builds a possibilistic c-table (every variable needs a
    /// distribution; supports become the table's finite domains).
    pub fn new(
        table: CTable,
        dists: impl IntoIterator<Item = (Var, PossDist)>,
    ) -> Result<Self, ProbError> {
        let dists: BTreeMap<Var, PossDist> = dists.into_iter().collect();
        let mut table = table;
        for v in table.vars() {
            let d = dists.get(&v).ok_or(ProbError::MissingDistribution(v))?;
            table
                .set_domain(v, Domain::new(d.support().cloned()))
                .map_err(ProbError::Table)?;
        }
        Ok(PossCTable { table, dists })
    }

    /// The underlying c-table.
    pub fn table(&self) -> &CTable {
        &self.table
    }

    /// `Mod(T)` with `(max, min)`: valuations combine by `min`, collided
    /// worlds merge by `max`.
    pub fn mod_space(&self) -> Result<PiDatabase, ProbError> {
        let vars: Vec<Var> = self.table.vars().into_iter().collect();
        let mut acc: Vec<(Valuation, Degree)> = vec![(Valuation::new(), FULLY)];
        for v in &vars {
            let dist = &self.dists[v];
            let mut next = Vec::with_capacity(acc.len() * 2);
            for (nu, d) in &acc {
                for (val, dv) in dist.iter() {
                    let mut nu2 = nu.clone();
                    nu2.bind(*v, val.clone());
                    next.push((nu2, (*d).min(*dv)));
                }
            }
            acc = next;
        }
        let mut worlds: BTreeMap<Instance, Degree> = BTreeMap::new();
        for (nu, d) in acc {
            let w = self.table.apply_valuation(&nu).map_err(ProbError::Table)?;
            let e = worlds.entry(w).or_insert(0);
            *e = (*e).max(d);
        }
        Ok(PiDatabase {
            arity: self.table.arity(),
            worlds,
        })
    }

    /// Closure under RA: `q̄` on the table, distributions untouched —
    /// the (max, min) analogue of Thm 9, tested against the worldwise
    /// image.
    pub fn eval_query(&self, q: &Query) -> Result<PossCTable, ProbError> {
        let qt = self.table.eval_query(q).map_err(ProbError::Table)?;
        let vars = qt.vars();
        let dists = self
            .dists
            .iter()
            .filter(|(v, _)| vars.contains(v))
            .map(|(v, d)| (*v, d.clone()))
            .collect::<Vec<_>>();
        PossCTable::new(qt, dists)
    }
}

impl fmt::Display for PossCTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π-{}", self.table)?;
        for (v, d) in &self.dists {
            write!(f, "  {v} ~ {{")?;
            for (i, (val, deg)) in d.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{val}: {deg}‰")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::Condition;
    use ipdb_rel::{instance, tuple, Pred};
    use ipdb_tables::{t_const, t_var};

    fn sample() -> PossCTable {
        let x = Var(0);
        let table = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(9)], Condition::eq_vc(x, 1))
            .build()
            .unwrap();
        let d = PossDist::new([
            (Value::from(1), FULLY),
            (Value::from(2), 600),
            (Value::from(3), 200),
        ])
        .unwrap();
        PossCTable::new(table, [(x, d)]).unwrap()
    }

    #[test]
    fn normalization_enforced() {
        assert!(PossDist::new([(Value::from(1), 500)]).is_err());
        assert!(PossDist::new(Vec::<(Value, Degree)>::new()).is_err());
        assert!(PossDist::new([(Value::from(1), FULLY)]).is_ok());
    }

    #[test]
    fn mod_space_degrees() {
        let m = sample().mod_space().unwrap();
        // x=1 → {1, 9} at degree 1000; x=2 → {2} at 600; x=3 → {3} at 200.
        assert_eq!(m.world_degree(&instance![[1], [9]]), FULLY);
        assert_eq!(m.world_degree(&instance![[2]]), 600);
        assert_eq!(m.world_degree(&instance![[3]]), 200);
        assert!(m.is_normalized());
    }

    #[test]
    fn possibility_and_necessity() {
        let m = sample().mod_space().unwrap();
        assert_eq!(m.tuple_degree(&tuple![9]), FULLY);
        assert_eq!(m.tuple_degree(&tuple![2]), 600);
        assert_eq!(m.tuple_degree(&tuple![7]), 0);
        // N[9] = 1000 − max degree of a world without 9 = 1000 − 600.
        assert_eq!(m.tuple_necessity(&tuple![9]), 400);
        // Possible but not necessary at all:
        assert_eq!(m.tuple_necessity(&tuple![2]), 0);
    }

    #[test]
    fn closure_matches_image() {
        let t = sample();
        let q = Query::select(Query::Input, Pred::neq_const(0, 9));
        let lhs = t.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = t.mod_space().unwrap().map_query(&q).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn max_merging_on_collisions() {
        // Two variables mapping to the same world keep the max degree.
        let x = Var(0);
        let table = CTable::builder(1)
            .row([t_const(5)], Condition::neq_vc(x, 0))
            .build()
            .unwrap();
        let d = PossDist::new([(Value::from(1), FULLY), (Value::from(2), 300)]).unwrap();
        let t = PossCTable::new(table, [(x, d)]).unwrap();
        let m = t.mod_space().unwrap();
        // Both x=1 (1000) and x=2 (300) give {5}: max = 1000.
        assert_eq!(m.world_degree(&instance![[5]]), FULLY);
        assert_eq!(m.len(), 1);
    }
}
