//! Probabilistic databases (paper Definition 9).
//!
//! A p-database is a finite probability space whose outcomes are
//! conventional instances. Closure under a query language is defined
//! through image spaces (Defs. 10–11): `q` maps the space over instances
//! to the space over `q`-answers. [`PDatabase`] wraps
//! [`FiniteSpace<Instance, W>`] with the arity bookkeeping and the
//! query-image operation.

use std::fmt;

use ipdb_bdd::Weight;
use ipdb_rel::{Instance, Query, Tuple};

use crate::error::ProbError;
use crate::space::FiniteSpace;

/// A probability distribution over possible worlds of one arity.
///
/// ```
/// use ipdb_prob::{rat, PDatabase, Rat};
/// use ipdb_rel::{instance, tuple, Query};
/// let db = PDatabase::from_outcomes(1, [
///     (instance![[1]], rat!(1, 4)),
///     (instance![[1], [2]], rat!(3, 4)),
/// ]).unwrap();
/// assert_eq!(db.tuple_prob(&tuple![1]), Rat::ONE);
/// assert_eq!(db.tuple_prob(&tuple![2]), rat!(3, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PDatabase<W> {
    arity: usize,
    space: FiniteSpace<Instance, W>,
}

impl<W: Weight> PDatabase<W> {
    /// Builds from `(instance, probability)` outcomes; checks arities and
    /// that the mass is exactly 1.
    pub fn from_outcomes(
        arity: usize,
        outcomes: impl IntoIterator<Item = (Instance, W)>,
    ) -> Result<Self, ProbError> {
        let outcomes: Vec<(Instance, W)> = outcomes.into_iter().collect();
        for (i, _) in &outcomes {
            if i.arity() != arity {
                return Err(ProbError::Rel(ipdb_rel::RelError::ArityMismatch {
                    expected: arity,
                    got: i.arity(),
                }));
            }
        }
        Ok(PDatabase {
            arity,
            space: FiniteSpace::new(outcomes)?,
        })
    }

    /// Wraps an existing space (mass assumed already checked).
    pub fn from_space(arity: usize, space: FiniteSpace<Instance, W>) -> Self {
        PDatabase { arity, space }
    }

    /// The deterministic p-database: one world with probability 1.
    pub fn certain(world: Instance) -> Self {
        PDatabase {
            arity: world.arity(),
            space: FiniteSpace::dirac(world),
        }
    }

    /// Arity of all worlds.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The underlying probability space.
    pub fn space(&self) -> &FiniteSpace<Instance, W> {
        &self.space
    }

    /// Number of worlds with non-zero probability.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// Whether there are no worlds (impossible for checked spaces).
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// `P[I]` of a specific world.
    pub fn world_prob(&self, world: &Instance) -> W {
        self.space.prob(world)
    }

    /// The marginal `P[t ∈ I]` — the quantity computed by the §7 papers
    /// (Fuhr–Rölleke, ProbView, Zimányi).
    pub fn tuple_prob(&self, t: &Tuple) -> W {
        self.space.prob_of(|w| w.contains(t))
    }

    /// Every tuple with non-zero marginal, with its probability.
    pub fn marginals(&self) -> Vec<(Tuple, W)> {
        let mut tuples = std::collections::BTreeSet::new();
        for (w, _) in self.space.iter() {
            tuples.extend(w.iter().cloned());
        }
        tuples
            .into_iter()
            .map(|t| {
                let p = self.tuple_prob(&t);
                (t, p)
            })
            .collect()
    }

    /// **Closure construction** (Def. 11): the image space of the
    /// distribution under `q` — `P'[J] = Σ { P[I] | q(I) = J }`.
    pub fn map_query(&self, q: &Query) -> Result<PDatabase<W>, ProbError> {
        let out_arity = q.arity(self.arity)?;
        let space = self.space.try_image(|w| q.eval(w))?;
        Ok(PDatabase {
            arity: out_arity,
            space,
        })
    }

    /// Whether two p-databases are the same distribution.
    pub fn same_distribution(&self, other: &Self) -> bool {
        self.arity == other.arity && self.space.same_distribution(&other.space)
    }
}

impl<W: fmt::Debug> fmt::Display for PDatabase<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p-database (arity {}):", self.arity)?;
        for (w, p) in self.space.iter() {
            writeln!(f, "  {w} : {p:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_rel::{instance, tuple, Pred};

    fn sample() -> PDatabase<Rat> {
        PDatabase::from_outcomes(
            1,
            [
                (instance![[1]], rat!(1, 2)),
                (instance![[1], [2]], rat!(1, 3)),
                (Instance::empty(1), rat!(1, 6)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        assert!(matches!(
            PDatabase::from_outcomes(2, [(instance![[1]], Rat::ONE)]),
            Err(ProbError::Rel(_))
        ));
        assert!(matches!(
            PDatabase::from_outcomes(1, [(instance![[1]], rat!(1, 2))]),
            Err(ProbError::MassNotOne(_))
        ));
    }

    #[test]
    fn tuple_probabilities() {
        let db = sample();
        assert_eq!(db.tuple_prob(&tuple![1]), rat!(5, 6));
        assert_eq!(db.tuple_prob(&tuple![2]), rat!(1, 3));
        assert_eq!(db.tuple_prob(&tuple![9]), Rat::ZERO);
    }

    #[test]
    fn marginals_list_possible_tuples() {
        let m = sample().marginals();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], (tuple![1], rat!(5, 6)));
        assert_eq!(m[1], (tuple![2], rat!(1, 3)));
    }

    #[test]
    fn map_query_is_image_space() {
        let db = sample();
        // σ_{#1=2}: worlds {1}↦{}, {1,2}↦{2}, {}↦{} — masses merge.
        let q = ipdb_rel::Query::select(ipdb_rel::Query::Input, Pred::eq_const(0, 2));
        let out = db.map_query(&q).unwrap();
        assert_eq!(out.world_prob(&Instance::empty(1)), rat!(2, 3));
        assert_eq!(out.world_prob(&instance![[2]]), rat!(1, 3));
        assert_eq!(out.space().total_mass(), Rat::ONE);
    }

    #[test]
    fn certain_database() {
        let db: PDatabase<Rat> = PDatabase::certain(instance![[5]]);
        assert_eq!(db.len(), 1);
        assert_eq!(db.tuple_prob(&tuple![5]), Rat::ONE);
    }

    #[test]
    fn same_distribution_ignores_construction_order() {
        let a = sample();
        let b = PDatabase::from_outcomes(
            1,
            [
                (Instance::empty(1), rat!(1, 6)),
                (instance![[1], [2]], rat!(1, 3)),
                (instance![[1]], rat!(1, 4)),
                (instance![[1]], rat!(1, 4)),
            ],
        )
        .unwrap();
        assert!(a.same_distribution(&b));
    }
}
