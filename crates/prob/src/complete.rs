//! Completeness of boolean pc-tables (paper Theorem 8).
//!
//! Any probabilistic database `(I₁:p₁, …, I_k:p_k)` is represented by a
//! boolean pc-table: put the tuples of `Iᵢ` (i < k) under condition
//! `¬x₁ ∧ … ∧ ¬x_{i−1} ∧ xᵢ`, the tuples of `I_k` under
//! `¬x₁ ∧ … ∧ ¬x_{k−1}`, and set
//! `P[xᵢ = true] = pᵢ / (1 − Σ_{j<i} pⱼ)` — a chain of conditional
//! Bernoulli choices ("pick the first world whose coin comes up").
//!
//! The construction needs exact division, which is why the probabilistic
//! layer defaults to [`crate::Rat`].

use ipdb_bdd::Weight;
use ipdb_logic::{Condition, VarGen};
use ipdb_tables::BooleanCTable;

use crate::error::ProbError;
use crate::pctable::BooleanPcTable;
use crate::pdb::PDatabase;

/// The Theorem 8 construction: a boolean pc-table `T` with
/// `Mod(T)` equal (as a distribution) to the given p-database.
///
/// ```
/// use ipdb_prob::{rat, theorem8_table, PDatabase, Rat};
/// use ipdb_rel::instance;
/// let db = PDatabase::from_outcomes(1, [
///     (instance![[1]], rat!(1, 4)),
///     (instance![[2]], rat!(3, 4)),
/// ]).unwrap();
/// let t = theorem8_table(&db, &mut ipdb_logic::VarGen::new()).unwrap();
/// assert!(t.mod_space().unwrap().same_distribution(&db));
/// ```
pub fn theorem8_table<W: Weight>(
    db: &PDatabase<W>,
    gen: &mut VarGen,
) -> Result<BooleanPcTable<W>, ProbError> {
    // Worlds with non-zero probability, in canonical order.
    let worlds: Vec<(&ipdb_rel::Instance, W)> =
        db.space().iter().map(|(i, p)| (i, p.clone())).collect();
    let k = worlds.len();
    let mut table = BooleanCTable::new(db.arity());
    let vars: Vec<_> = (0..k.saturating_sub(1)).map(|_| gen.fresh()).collect();
    let mut probs = Vec::with_capacity(vars.len());

    let mut prefix_mass = W::zero(); // Σ_{j<i} p_j
    for (i, (world, p)) in worlds.iter().enumerate() {
        let cond = if i + 1 < k {
            // ¬x₁ ∧ … ∧ ¬x_{i−1} ∧ xᵢ
            Condition::and(
                vars[..i]
                    .iter()
                    .map(|v| Condition::nbvar(*v))
                    .chain(std::iter::once(Condition::bvar(vars[i]))),
            )
        } else {
            // Last world: ¬x₁ ∧ … ∧ ¬x_{k−1}
            Condition::and(vars.iter().map(|v| Condition::nbvar(*v)))
        };
        for t in world.iter() {
            table.push(t.clone(), cond.clone())?;
        }
        if i + 1 < k {
            // P[xᵢ] = pᵢ / (1 − Σ_{j<i} pⱼ)
            let remaining = W::one().sub(&prefix_mass);
            probs.push((vars[i], p.div(&remaining)));
            prefix_mass = prefix_mass.add(p);
        }
    }
    // A world with an empty instance contributes no rows but its
    // variable/probability entry still exists — handled above. If some
    // xᵢ guards only an empty world, it never appears in a condition, so
    // give it its distribution anyway for Mod to weigh correctly.
    let used: std::collections::BTreeSet<_> = table.vars();
    let probs: Vec<_> = probs
        .into_iter()
        .filter(|(v, _)| used.contains(v))
        .collect();
    BooleanPcTable::new(table, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_rel::{instance, Instance};

    #[test]
    fn example_three_worlds() {
        let db = PDatabase::from_outcomes(
            1,
            [
                (instance![[1]], rat!(1, 2)),
                (instance![[1], [2]], rat!(1, 3)),
                (instance![[3]], rat!(1, 6)),
            ],
        )
        .unwrap();
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        assert!(t.mod_space().unwrap().same_distribution(&db));
        // Conditional probabilities: x₀ = 1/2; x₁ = (1/3)/(1/2) = 2/3.
        let probs = t.true_probs();
        assert_eq!(probs[0].1, rat!(1, 2));
        assert_eq!(probs[1].1, rat!(2, 3));
    }

    #[test]
    fn single_world_needs_no_variables() {
        let db: PDatabase<Rat> = PDatabase::certain(instance![[7, 8]]);
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        assert!(t.true_probs().is_empty());
        assert!(t.mod_space().unwrap().same_distribution(&db));
    }

    #[test]
    fn empty_world_in_support() {
        let db = PDatabase::from_outcomes(
            1,
            [
                (Instance::empty(1), rat!(2, 5)),
                (instance![[1]], rat!(3, 5)),
            ],
        )
        .unwrap();
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        assert!(t.mod_space().unwrap().same_distribution(&db));
    }

    #[test]
    fn worlds_sharing_tuples() {
        let db = PDatabase::from_outcomes(
            1,
            [
                (instance![[1], [2]], rat!(1, 4)),
                (instance![[1], [3]], rat!(1, 4)),
                (instance![[1]], rat!(1, 2)),
            ],
        )
        .unwrap();
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        assert!(t.mod_space().unwrap().same_distribution(&db));
    }
}
