//! Probabilistic or-set tables (paper §7).
//!
//! The probabilistic counterpart of or-set tables: "the attribute values
//! are, instead of or-sets, finite probability spaces whose outcomes are
//! the values in the or-set" — a simplified ProbView \[22\] with plain
//! probabilities instead of confidence intervals. A p-or-set-table
//! corresponds to a Codd table plus a distribution `dom(x)` per variable,
//! i.e. a restricted pc-table; the semantics is the same
//! product-then-image construction.

use std::fmt;

use ipdb_bdd::Weight;
use ipdb_logic::{Condition, Term, VarGen};
use ipdb_rel::{Tuple, Value};
use ipdb_tables::CTable;

use crate::error::ProbError;
use crate::pctable::PcTable;
use crate::pdb::PDatabase;
use crate::space::FiniteSpace;

/// One cell: a finite distribution over candidate values (a singleton
/// distribution is a certain value).
pub type PCell<W> = FiniteSpace<Value, W>;

/// A p-or-set-table: rows of distribution-valued cells, chosen
/// independently (§7, Example 6's table `S`).
///
/// ```
/// use ipdb_prob::{rat, FiniteSpace, POrSetTable, Rat};
/// use ipdb_rel::{tuple, Value};
/// let cell = FiniteSpace::new([
///     (Value::from(2), rat!(3, 10)),
///     (Value::from(3), rat!(7, 10)),
/// ]).unwrap();
/// let t = POrSetTable::from_rows(2, [vec![FiniteSpace::dirac(Value::from(1)), cell]]).unwrap();
/// let m = t.mod_space().unwrap();
/// assert_eq!(m.tuple_prob(&tuple![1, 2]), rat!(3, 10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct POrSetTable<W> {
    arity: usize,
    rows: Vec<Vec<PCell<W>>>,
}

impl<W: Weight> POrSetTable<W> {
    /// An empty table.
    pub fn new(arity: usize) -> Self {
        POrSetTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from rows of cells.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = Vec<PCell<W>>>,
    ) -> Result<Self, ProbError> {
        let mut t = POrSetTable::new(arity);
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<PCell<W>>) -> Result<(), ProbError> {
        if row.len() != self.arity {
            return Err(ProbError::Rel(ipdb_rel::RelError::ArityMismatch {
                expected: self.arity,
                got: row.len(),
            }));
        }
        for cell in &row {
            if cell.is_empty() {
                return Err(ProbError::EmptyDistribution);
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<PCell<W>>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// §7 semantics: "a p-or-set-table determines an instance by choosing
    /// an outcome in each of the spaces that appear as attribute values,
    /// independently" — via the pc-table embedding's product/image.
    pub fn mod_space(&self) -> Result<PDatabase<W>, ProbError> {
        let mut gen = VarGen::new();
        self.to_pctable(&mut gen)?.mod_space()
    }

    /// The pc-table embedding: a fresh variable per non-singleton cell
    /// with the cell's distribution (the "Codd table + dom(x) spaces" of
    /// §7).
    pub fn to_pctable(&self, gen: &mut VarGen) -> Result<PcTable<W>, ProbError> {
        let mut builder = CTable::builder(self.arity);
        let mut dists = Vec::new();
        for row in &self.rows {
            let mut terms = Vec::with_capacity(self.arity);
            for cell in row {
                if cell.len() == 1 {
                    let (v, _) = cell.iter().next().expect("len 1");
                    terms.push(Term::Const(v.clone()));
                } else {
                    let x = gen.fresh();
                    dists.push((x, cell.clone()));
                    terms.push(Term::Var(x));
                }
            }
            builder = builder.row(terms, Condition::True);
        }
        PcTable::new(builder.build()?, dists)
    }

    /// `P[t ∈ I]` by enumeration.
    pub fn tuple_prob(&self, t: &Tuple) -> Result<W, ProbError> {
        Ok(self.mod_space()?.tuple_prob(t))
    }
}

impl<W: fmt::Debug> fmt::Display for POrSetTable<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p-or-set-table (arity {}):", self.arity)?;
        for row in &self.rows {
            write!(f, " ")?;
            for cell in row {
                if cell.len() == 1 {
                    let (v, _) = cell.iter().next().expect("len 1");
                    write!(f, " {v}")?;
                } else {
                    write!(f, " 〈")?;
                    for (i, (v, p)) in cell.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}: {p:?}")?;
                    }
                    write!(f, "〉")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_rel::{instance, tuple};

    fn dirac(v: i64) -> PCell<Rat> {
        FiniteSpace::dirac(Value::from(v))
    }

    fn cell(pairs: &[(i64, Rat)]) -> PCell<Rat> {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    }

    /// The paper's Example 6 p-or-set-table S:
    ///   1, 〈2:.3, 3:.7〉
    ///   4, 5
    ///   〈6:.5, 7:.5〉, 〈8:.1, 9:.9〉
    fn example6_s() -> POrSetTable<Rat> {
        POrSetTable::from_rows(
            2,
            [
                vec![dirac(1), cell(&[(2, rat!(3, 10)), (3, rat!(7, 10))])],
                vec![dirac(4), dirac(5)],
                vec![
                    cell(&[(6, rat!(1, 2)), (7, rat!(1, 2))]),
                    cell(&[(8, rat!(1, 10)), (9, rat!(9, 10))]),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let mut t: POrSetTable<Rat> = POrSetTable::new(2);
        assert!(t.push(vec![dirac(1)]).is_err());
    }

    #[test]
    fn example6_s_distribution() {
        let m = example6_s().mod_space().unwrap();
        // Choosing 2, 6, 8: P = .3 · .5 · .1 = .015
        assert_eq!(
            m.world_prob(&instance![[1, 2], [4, 5], [6, 8]]),
            rat!(15, 1000)
        );
        // Choosing 3, 7, 9: P = .7 · .5 · .9 = .315
        assert_eq!(
            m.world_prob(&instance![[1, 3], [4, 5], [7, 9]]),
            rat!(315, 1000)
        );
        // Every world contains the certain row (4,5).
        assert_eq!(m.tuple_prob(&tuple![4, 5]), Rat::ONE);
        assert_eq!(m.space().total_mass(), Rat::ONE);
        // 2 × 1 × (2·2) = 8 worlds.
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn marginals() {
        let t = example6_s();
        assert_eq!(t.tuple_prob(&tuple![1, 2]).unwrap(), rat!(3, 10));
        assert_eq!(
            t.tuple_prob(&tuple![6, 8]).unwrap(),
            rat!(1, 2) * rat!(1, 10)
        );
        assert_eq!(t.tuple_prob(&tuple![9, 9]).unwrap(), Rat::ZERO);
    }

    #[test]
    fn pctable_embedding_matches() {
        let t = example6_s();
        let mut g = VarGen::new();
        let pc = t.to_pctable(&mut g).unwrap();
        // Three non-singleton cells → three variables.
        assert_eq!(pc.dists().len(), 3);
        assert!(pc
            .mod_space()
            .unwrap()
            .same_distribution(&t.mod_space().unwrap()));
    }

    #[test]
    fn empty_table() {
        let t: POrSetTable<Rat> = POrSetTable::new(1);
        let m = t.mod_space().unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn coinciding_choices_merge() {
        // Two rows that can choose the same tuple.
        let t = POrSetTable::from_rows(
            1,
            [
                vec![cell(&[(1, rat!(1, 2)), (2, rat!(1, 2))])],
                vec![cell(&[(1, rat!(1, 2)), (3, rat!(1, 2))])],
            ],
        )
        .unwrap();
        let m = t.mod_space().unwrap();
        // World {(1)}: both rows choose 1 → 1/4.
        assert_eq!(m.world_prob(&instance![[1]]), rat!(1, 4));
        // {(1),(3)}: 1/4; {(2),(1)}: 1/4; {(2),(3)}: 1/4.
        assert_eq!(m.len(), 4);
    }
}
