//! Extensional (lifted) query evaluation on tuple-independent tables —
//! the paper's §8 discussion of Dalvi–Suciu \[9\].
//!
//! The paper notes that \[9\] characterizes the conjunctive queries whose
//! answer probabilities an *extensional* algorithm (multiplying and
//! independent-or-ing scores, never materializing event expressions)
//! computes correctly on p-`?`-tables. This module reproduces that
//! phenomenon end-to-end on boolean conjunctive queries over a database
//! of independent-tuple relations:
//!
//! * [`BoolCq::is_hierarchical`] — the safety test for self-join-free
//!   CQs (for every two variables, their atom sets are nested or
//!   disjoint);
//! * [`lifted_prob`] — the safe-plan evaluator: independent components
//!   multiply, a *root variable* (one occurring in every atom) is
//!   eliminated by independent-or over its candidate values; errors on
//!   non-hierarchical queries;
//! * [`forced_extensional`] — the same recursion with the safety check
//!   disabled (eliminates the most frequent variable even when unsound):
//!   the "wrong plan" whose divergence from [`exact_prob`] the benches
//!   measure;
//! * [`exact_prob`] — ground the query, build its *lineage* (event
//!   expression over per-tuple Bernoulli variables — §7/§9), and compute
//!   its probability by Shannon expansion. Always correct; exponential
//!   in the worst case (as it must be: non-hierarchical queries are
//!   #P-hard \[9\]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ipdb_bdd::Weight;
use ipdb_logic::{Condition, Var};
use ipdb_rel::{Tuple, Value};

use crate::answering::prob_of_condition;
use crate::error::ProbError;
use crate::ptable::PTable;
use crate::space::FiniteSpace;

/// A conjunctive-query argument: a query variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CqArg {
    /// A query variable (numbered).
    Var(u32),
    /// A constant.
    Const(Value),
}

impl fmt::Display for CqArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqArg::Var(v) => write!(f, "X{v}"),
            CqArg::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One atom `R(args…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqAtom {
    /// Relation name.
    pub rel: String,
    /// Arguments.
    pub args: Vec<CqArg>,
}

impl CqAtom {
    /// Builds an atom.
    pub fn new(rel: impl Into<String>, args: Vec<CqArg>) -> Self {
        CqAtom {
            rel: rel.into(),
            args,
        }
    }

    fn vars(&self) -> BTreeSet<u32> {
        self.args
            .iter()
            .filter_map(|a| match a {
                CqArg::Var(v) => Some(*v),
                CqArg::Const(_) => None,
            })
            .collect()
    }

    fn substitute(&self, var: u32, val: &Value) -> CqAtom {
        CqAtom {
            rel: self.rel.clone(),
            args: self
                .args
                .iter()
                .map(|a| match a {
                    CqArg::Var(v) if *v == var => CqArg::Const(val.clone()),
                    other => other.clone(),
                })
                .collect(),
        }
    }

    fn is_ground(&self) -> bool {
        self.args.iter().all(|a| matches!(a, CqArg::Const(_)))
    }
}

impl fmt::Display for CqAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A boolean conjunctive query `∃X̄. A₁ ∧ … ∧ A_n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolCq {
    /// The atoms.
    pub atoms: Vec<CqAtom>,
}

impl BoolCq {
    /// Builds a query.
    pub fn new(atoms: Vec<CqAtom>) -> Self {
        BoolCq { atoms }
    }

    /// The classic unsafe query `H₀ = R(x), S(x,y), T(y)` of \[9\].
    pub fn h0() -> Self {
        BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
            CqAtom::new("T", vec![CqArg::Var(1)]),
        ])
    }

    /// Whether no relation name repeats (self-join-free).
    pub fn is_self_join_free(&self) -> bool {
        let names: BTreeSet<&str> = self.atoms.iter().map(|a| a.rel.as_str()).collect();
        names.len() == self.atoms.len()
    }

    /// The hierarchy test of \[9\] for self-join-free CQs: for every two
    /// variables, the sets of atoms containing them are nested or
    /// disjoint. Hierarchical ⟺ a safe (extensional) plan exists.
    pub fn is_hierarchical(&self) -> bool {
        let vars: BTreeSet<u32> = self.atoms.iter().flat_map(|a| a.vars()).collect();
        let at = |x: u32| -> BTreeSet<usize> {
            self.atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| a.vars().contains(&x))
                .map(|(i, _)| i)
                .collect()
        };
        for &x in &vars {
            for &y in &vars {
                if x >= y {
                    continue;
                }
                let (ax, ay) = (at(x), at(y));
                let nested = ax.is_subset(&ay) || ay.is_subset(&ax);
                let disjoint = ax.is_disjoint(&ay);
                if !nested && !disjoint {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for BoolCq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A database of named tuple-independent relations.
#[derive(Debug, Clone)]
pub struct ProbDb<W> {
    rels: BTreeMap<String, PTable<W>>,
}

impl<W: Weight + PartialOrd> ProbDb<W> {
    /// An empty database.
    pub fn new() -> Self {
        ProbDb {
            rels: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, table: PTable<W>) {
        self.rels.insert(name.into(), table);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&PTable<W>> {
        self.rels.get(name)
    }

    fn table(&self, name: &str) -> Result<&PTable<W>, ProbError> {
        self.rels
            .get(name)
            .ok_or_else(|| ProbError::UnknownRelation(name.to_string()))
    }

    fn check(&self, q: &BoolCq) -> Result<(), ProbError> {
        for a in &q.atoms {
            let t = self.table(&a.rel)?;
            if t.arity() != a.args.len() {
                return Err(ProbError::AtomArity {
                    rel: a.rel.clone(),
                    expected: t.arity(),
                    got: a.args.len(),
                });
            }
        }
        Ok(())
    }

    /// Candidate values for variable `x`: the union, over atoms
    /// containing `x`, of the values in the matching column(s).
    fn candidates(&self, q: &BoolCq, x: u32) -> Result<BTreeSet<Value>, ProbError> {
        let mut out = BTreeSet::new();
        for a in &q.atoms {
            let t = self.table(&a.rel)?;
            for (i, arg) in a.args.iter().enumerate() {
                if *arg == CqArg::Var(x) {
                    for (tup, _) in t.rows() {
                        out.insert(tup[i].clone());
                    }
                }
            }
        }
        Ok(out)
    }
}

impl<W: Weight + PartialOrd> Default for ProbDb<W> {
    fn default() -> Self {
        Self::new()
    }
}

/// The Bernoulli variables of a lineage expression and their
/// distributions.
pub type LineageDists<W> = BTreeMap<Var, FiniteSpace<Value, W>>;

/// The **lineage** of a boolean CQ: its event expression over per-tuple
/// Bernoulli variables, plus the variables' distributions — ready for
/// [`prob_of_condition`]. This is the §7 "event expression" / §9
/// "lineage" made concrete.
pub fn lineage<W: Weight + PartialOrd>(
    q: &BoolCq,
    db: &ProbDb<W>,
) -> Result<(Condition, LineageDists<W>), ProbError> {
    db.check(q)?;
    // Assign a boolean variable to every (relation, tuple-index).
    let mut var_of: BTreeMap<(String, usize), Var> = BTreeMap::new();
    let mut dists = BTreeMap::new();
    let mut next = 0u32;
    for (name, table) in &db.rels {
        for (i, (_, p)) in table.rows().iter().enumerate() {
            let v = Var(next);
            next += 1;
            var_of.insert((name.clone(), i), v);
            dists.insert(
                v,
                FiniteSpace::bernoulli(Value::Bool(true), Value::Bool(false), p.clone())?,
            );
        }
    }
    // Enumerate groundings.
    let vars: Vec<u32> = q
        .atoms
        .iter()
        .flat_map(|a| a.vars())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut disjuncts = Vec::new();
    ground(q, db, &vars, &mut BTreeMap::new(), &var_of, &mut disjuncts)?;
    Ok((Condition::or(disjuncts), dists))
}

fn ground<W: Weight + PartialOrd>(
    q: &BoolCq,
    db: &ProbDb<W>,
    unbound: &[u32],
    bound: &mut BTreeMap<u32, Value>,
    var_of: &BTreeMap<(String, usize), Var>,
    out: &mut Vec<Condition>,
) -> Result<(), ProbError> {
    match unbound.split_first() {
        None => {
            // Fully ground: each atom must match a listed tuple.
            let mut lits = Vec::with_capacity(q.atoms.len());
            for a in &q.atoms {
                let grounded: Tuple = a
                    .args
                    .iter()
                    .map(|arg| match arg {
                        CqArg::Const(c) => c.clone(),
                        CqArg::Var(v) => bound[v].clone(),
                    })
                    .collect();
                let table = db.table(&a.rel)?;
                match table.rows().iter().position(|(t, _)| *t == grounded) {
                    Some(i) => lits.push(Condition::bvar(var_of[&(a.rel.clone(), i)])),
                    None => return Ok(()), // no such tuple: grounding dead
                }
            }
            out.push(Condition::and(lits));
            Ok(())
        }
        Some((&x, rest)) => {
            for val in db.candidates(q, x)? {
                bound.insert(x, val);
                ground(q, db, rest, bound, var_of, out)?;
            }
            bound.remove(&x);
            Ok(())
        }
    }
}

/// Exact `P[q]` via lineage + Shannon expansion. Always correct.
pub fn exact_prob<W: Weight + PartialOrd>(q: &BoolCq, db: &ProbDb<W>) -> Result<W, ProbError> {
    let (cond, dists) = lineage(q, db)?;
    prob_of_condition(&cond, &dists)
}

/// The safe-plan (lifted) evaluator: exact on hierarchical self-join-free
/// CQs, rejecting anything else.
pub fn lifted_prob<W: Weight + PartialOrd>(q: &BoolCq, db: &ProbDb<W>) -> Result<W, ProbError> {
    db.check(q)?;
    if !q.is_self_join_free() {
        return Err(ProbError::NonHierarchical(format!("{q} has a self-join")));
    }
    if !q.is_hierarchical() {
        return Err(ProbError::NonHierarchical(q.to_string()));
    }
    lifted_rec(&q.atoms, db, false)
}

/// The same recursion with the safety check disabled: when no root
/// variable exists it eliminates the most frequent variable anyway,
/// silently assuming independence. Correct on hierarchical queries,
/// *wrong* in general — the divergence \[9\] predicts (and `ipdb-bench`
/// measures) on `H₀`.
pub fn forced_extensional<W: Weight + PartialOrd>(
    q: &BoolCq,
    db: &ProbDb<W>,
) -> Result<W, ProbError> {
    db.check(q)?;
    lifted_rec(&q.atoms, db, true)
}

fn lifted_rec<W: Weight + PartialOrd>(
    atoms: &[CqAtom],
    db: &ProbDb<W>,
    forced: bool,
) -> Result<W, ProbError> {
    if atoms.is_empty() {
        return Ok(W::one());
    }
    // Connected components under shared variables multiply (independent
    // relations: self-join-freeness keeps their tuple sets disjoint).
    let components = connected_components(atoms);
    if components.len() > 1 {
        let mut acc = W::one();
        for comp in components {
            acc = acc.mul(&lifted_rec(&comp, db, forced)?);
        }
        return Ok(acc);
    }
    // Single component. Ground atom: base case (a component with a
    // ground atom is that atom alone — it shares no variables).
    if atoms.len() == 1 && atoms[0].is_ground() {
        let a = &atoms[0];
        let grounded: Tuple = a
            .args
            .iter()
            .map(|arg| match arg {
                CqArg::Const(c) => c.clone(),
                CqArg::Var(_) => unreachable!("ground atom"),
            })
            .collect();
        return Ok(db.table(&a.rel)?.prob(&grounded));
    }
    // Root variable: occurs in every atom of the component.
    let all_vars: BTreeSet<u32> = atoms.iter().flat_map(|a| a.vars()).collect();
    let root = all_vars
        .iter()
        .copied()
        .find(|x| atoms.iter().all(|a| a.vars().contains(x)));
    let x = match root {
        Some(x) => x,
        None if forced => {
            // Unsound: pick the variable in the most atoms.
            all_vars
                .iter()
                .copied()
                .max_by_key(|x| atoms.iter().filter(|a| a.vars().contains(x)).count())
                .expect("non-empty component has variables")
        }
        None => {
            return Err(ProbError::NonHierarchical(format!(
                "no root variable in component {}",
                BoolCq::new(atoms.to_vec())
            )))
        }
    };
    // Independent-or over the root variable's candidates:
    // P = 1 − Π_a (1 − P(q[x := a])).
    let q_for_candidates = BoolCq::new(atoms.to_vec());
    let mut none = W::one();
    for val in db.candidates(&q_for_candidates, x)? {
        let sub: Vec<CqAtom> = atoms.iter().map(|a| a.substitute(x, &val)).collect();
        let p = lifted_rec(&sub, db, forced)?;
        none = none.mul(&p.complement());
    }
    Ok(none.complement())
}

fn connected_components(atoms: &[CqAtom]) -> Vec<Vec<CqAtom>> {
    let n = atoms.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut Vec<usize>, i: usize) -> usize {
        if comp[i] != i {
            let r = find(comp, comp[i]);
            comp[i] = r;
        }
        comp[i]
    }
    for (i, atom_i) in atoms.iter().enumerate() {
        for (j, atom_j) in atoms.iter().enumerate().skip(i + 1) {
            if !atom_i.vars().is_disjoint(&atom_j.vars()) {
                let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
                if ri != rj {
                    comp[ri] = rj;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<CqAtom>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        let r = find(&mut comp, i);
        groups.entry(r).or_default().push(atom.clone());
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_rel::tuple;

    fn db() -> ProbDb<Rat> {
        let mut db = ProbDb::new();
        db.insert(
            "R",
            PTable::from_rows(1, [(tuple![1], rat!(1, 2)), (tuple![2], rat!(1, 3))]).unwrap(),
        );
        db.insert(
            "S",
            PTable::from_rows(
                2,
                [
                    (tuple![1, 10], rat!(1, 4)),
                    (tuple![1, 20], rat!(1, 5)),
                    (tuple![2, 10], rat!(1, 2)),
                ],
            )
            .unwrap(),
        );
        db.insert(
            "T",
            PTable::from_rows(1, [(tuple![10], rat!(2, 3)), (tuple![20], rat!(1, 6))]).unwrap(),
        );
        db
    }

    #[test]
    fn hierarchy_classification() {
        // R(x), S(x,y): hierarchical.
        let safe = BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
        ]);
        assert!(safe.is_hierarchical());
        assert!(safe.is_self_join_free());
        // H0: not hierarchical.
        assert!(!BoolCq::h0().is_hierarchical());
        // Single atoms trivially hierarchical.
        assert!(BoolCq::new(vec![CqAtom::new("R", vec![CqArg::Var(0)])]).is_hierarchical());
    }

    #[test]
    fn lifted_matches_exact_on_safe_queries() {
        let db = db();
        let safe = BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
        ]);
        let exact = exact_prob(&safe, &db).unwrap();
        let lifted = lifted_prob(&safe, &db).unwrap();
        assert_eq!(exact, lifted);
    }

    #[test]
    fn single_atom_queries() {
        let db = db();
        // ∃x. R(x): 1 − (1−1/2)(1−1/3) = 2/3.
        let q = BoolCq::new(vec![CqAtom::new("R", vec![CqArg::Var(0)])]);
        assert_eq!(lifted_prob(&q, &db).unwrap(), rat!(2, 3));
        assert_eq!(exact_prob(&q, &db).unwrap(), rat!(2, 3));
        // Ground atom: R(1) has probability 1/2.
        let g = BoolCq::new(vec![CqAtom::new("R", vec![CqArg::Const(Value::from(1))])]);
        assert_eq!(lifted_prob(&g, &db).unwrap(), rat!(1, 2));
        assert_eq!(exact_prob(&g, &db).unwrap(), rat!(1, 2));
        // Absent ground atom: probability 0.
        let absent = BoolCq::new(vec![CqAtom::new("R", vec![CqArg::Const(Value::from(9))])]);
        assert_eq!(lifted_prob(&absent, &db).unwrap(), Rat::ZERO);
    }

    #[test]
    fn independent_components_multiply() {
        let db = db();
        // ∃x. R(x) ∧ ∃y. T(y): product of marginals.
        let q = BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("T", vec![CqArg::Var(1)]),
        ]);
        let p_r = rat!(2, 3);
        let p_t = Rat::ONE - (Rat::ONE - rat!(2, 3)) * (Rat::ONE - rat!(1, 6));
        assert_eq!(lifted_prob(&q, &db).unwrap(), p_r * p_t);
        assert_eq!(exact_prob(&q, &db).unwrap(), p_r * p_t);
    }

    #[test]
    fn h0_is_rejected_by_lifted_but_exact_works() {
        let db = db();
        let h0 = BoolCq::h0();
        assert!(matches!(
            lifted_prob(&h0, &db),
            Err(ProbError::NonHierarchical(_))
        ));
        let exact = exact_prob(&h0, &db).unwrap();
        assert!(exact > Rat::ZERO && exact < Rat::ONE);
    }

    #[test]
    fn forced_extensional_diverges_on_h0() {
        let db = db();
        let h0 = BoolCq::h0();
        let exact = exact_prob(&h0, &db).unwrap();
        let forced = forced_extensional(&h0, &db).unwrap();
        assert_ne!(exact, forced, "H0 must expose the unsound plan");
        // But on a hierarchical query the forced plan is exact.
        let safe = BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
        ]);
        assert_eq!(
            forced_extensional(&safe, &db).unwrap(),
            exact_prob(&safe, &db).unwrap()
        );
    }

    #[test]
    fn self_joins_rejected() {
        let db = db();
        let q = BoolCq::new(vec![
            CqAtom::new("R", vec![CqArg::Var(0)]),
            CqAtom::new("R", vec![CqArg::Var(1)]),
        ]);
        assert!(matches!(
            lifted_prob(&q, &db),
            Err(ProbError::NonHierarchical(_))
        ));
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = db();
        let q = BoolCq::new(vec![CqAtom::new("Z", vec![CqArg::Var(0)])]);
        assert!(matches!(
            exact_prob(&q, &db),
            Err(ProbError::UnknownRelation(_))
        ));
        let bad = BoolCq::new(vec![CqAtom::new("R", vec![CqArg::Var(0), CqArg::Var(1)])]);
        assert!(matches!(
            exact_prob(&bad, &db),
            Err(ProbError::AtomArity { .. })
        ));
    }

    #[test]
    fn lineage_of_h0_mentions_all_relations() {
        let db = db();
        let (cond, dists) = lineage(&BoolCq::h0(), &db).unwrap();
        // 2 R-tuples + 3 S-tuples + 2 T-tuples = 7 Bernoulli vars.
        assert_eq!(dists.len(), 7);
        assert!(!cond.vars().is_empty());
    }
}
