//! Probabilistic `?`-tables (paper §7).
//!
//! The tuple-independent model of Fuhr–Rölleke, Zimányi, Grädel et al.,
//! and Dalvi–Suciu ("independent tuple representation"): each tuple `t`
//! carries a probability `p_t` and tuples occur independently. The paper
//! makes the folklore semantics rigorous through Prop. 2–3: take the
//! **product** of per-tuple Bernoulli spaces and the **image** under
//! "predicate ↦ set of tuples mapped to true". [`PTable::mod_space`]
//! implements exactly that construction; Prop. 2's independence claims
//! are verified in the tests.

use std::fmt;

use ipdb_bdd::Weight;
use ipdb_logic::{Condition, VarGen};
use ipdb_rel::{Instance, Tuple};

use crate::error::ProbError;
use crate::pctable::PcTable;
use crate::pdb::PDatabase;
use crate::space::FiniteSpace;

/// A p-`?`-table: tuples with independent occurrence probabilities.
/// Tuples not listed have probability 0 (as in the paper's Example 6).
///
/// ```
/// use ipdb_prob::{rat, PTable, Rat};
/// use ipdb_rel::tuple;
/// let t = PTable::from_rows(2, [
///     (tuple![1, 2], rat!(4, 10)),
///     (tuple![3, 4], rat!(3, 10)),
///     (tuple![5, 6], Rat::ONE),
/// ]).unwrap();
/// let m = t.mod_space().unwrap();
/// assert_eq!(m.tuple_prob(&tuple![3, 4]), rat!(3, 10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PTable<W> {
    arity: usize,
    rows: Vec<(Tuple, W)>,
}

impl<W: Weight + PartialOrd> PTable<W> {
    /// An empty p-`?`-table.
    pub fn new(arity: usize) -> Self {
        PTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds from `(tuple, probability)` rows; probabilities must lie in
    /// `\[0, 1\]` and tuples must be distinct (the table is a mapping
    /// `t ↦ p_t`).
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = (Tuple, W)>,
    ) -> Result<Self, ProbError> {
        let mut t = PTable::new(arity);
        for (tup, p) in rows {
            t.push(tup, p)?;
        }
        Ok(t)
    }

    /// Appends a tuple with its probability.
    pub fn push(&mut self, t: Tuple, p: W) -> Result<(), ProbError> {
        if t.arity() != self.arity {
            return Err(ProbError::Rel(ipdb_rel::RelError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            }));
        }
        if p < W::zero() || p > W::one() {
            return Err(ProbError::InvalidProbability(format!("{p:?}")));
        }
        if self.rows.iter().any(|(s, _)| s == &t) {
            return Err(ProbError::DuplicateOutcome(t.to_string()));
        }
        self.rows.push((t, p));
        Ok(())
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The `(tuple, probability)` rows.
    pub fn rows(&self) -> &[(Tuple, W)] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The declared `p_t` of a tuple (0 if absent).
    pub fn prob(&self, t: &Tuple) -> W {
        self.rows
            .iter()
            .find(|(s, _)| s == t)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(W::zero)
    }

    /// **The Prop. 2 semantics**: the unique p-database in which the
    /// events `E_t = {I | t ∈ I}` are jointly independent with
    /// `P[E_t] = p_t` — built as the product of Bernoulli spaces imaged
    /// through "predicate ↦ its true-set" (§7).
    pub fn mod_space(&self) -> Result<PDatabase<W>, ProbError> {
        let factors: Vec<FiniteSpace<bool, W>> = self
            .rows
            .iter()
            .map(|(_, p)| FiniteSpace::bernoulli(true, false, p.clone()))
            .collect::<Result<_, _>>()?;
        let product = FiniteSpace::product_all(&factors);
        let arity = self.arity;
        let rows = &self.rows;
        let space = product.try_image(|mask| -> Result<Instance, ProbError> {
            let mut inst = Instance::empty(arity);
            for (present, (t, _)) in mask.iter().zip(rows.iter()) {
                if *present {
                    inst.insert(t.clone())?;
                }
            }
            Ok(inst)
        })?;
        Ok(PDatabase::from_space(self.arity, space))
    }

    /// The embedding into probabilistic c-tables (§8): p-`?`-tables
    /// "correspond to restricted boolean pc-tables, just like ?-tables" —
    /// one fresh boolean variable per row, condition `x`, with
    /// `P[x = true] = p_t`.
    pub fn to_pctable(&self, gen: &mut VarGen) -> Result<PcTable<W>, ProbError> {
        let mut builder = ipdb_tables::CTable::builder(self.arity);
        let mut dists = Vec::new();
        for (t, p) in &self.rows {
            let x = gen.fresh();
            builder = builder.ground_row(t.iter().cloned(), Condition::bvar(x));
            dists.push((
                x,
                FiniteSpace::bernoulli(
                    ipdb_rel::Value::Bool(true),
                    ipdb_rel::Value::Bool(false),
                    p.clone(),
                )?,
            ));
        }
        PcTable::new(builder.build()?, dists)
    }
}

impl<W: fmt::Debug> fmt::Display for PTable<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p-?-table (arity {}):", self.arity)?;
        for (t, p) in &self.rows {
            writeln!(f, "  {t} : {p:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_rel::{instance, tuple};

    /// The paper's Example 6 p-`?`-table T:
    /// (1,2):0.4, (3,4):0.3, (5,6):1.0.
    fn example6() -> PTable<Rat> {
        PTable::from_rows(
            2,
            [
                (tuple![1, 2], rat!(4, 10)),
                (tuple![3, 4], rat!(3, 10)),
                (tuple![5, 6], Rat::ONE),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let mut t: PTable<Rat> = PTable::new(1);
        assert!(t.push(tuple![1, 2], Rat::ONE).is_err());
        assert!(matches!(
            t.push(tuple![1], rat!(3, 2)),
            Err(ProbError::InvalidProbability(_))
        ));
        t.push(tuple![1], rat!(1, 2)).unwrap();
        assert!(matches!(
            t.push(tuple![1], rat!(1, 2)),
            Err(ProbError::DuplicateOutcome(_))
        ));
    }

    #[test]
    fn example6_distribution() {
        let m = example6().mod_space().unwrap();
        // P[{(1,2),(3,4),(5,6)}] = 0.4 * 0.3 * 1 = 0.12
        assert_eq!(
            m.world_prob(&instance![[1, 2], [3, 4], [5, 6]]),
            rat!(12, 100)
        );
        // P[{(5,6)}] = 0.6 * 0.7 = 0.42
        assert_eq!(m.world_prob(&instance![[5, 6]]), rat!(42, 100));
        // (5,6) has probability 1: worlds lacking it have probability 0.
        assert_eq!(m.world_prob(&Instance::empty(2)), Rat::ZERO);
        assert_eq!(m.space().total_mass(), Rat::ONE);
    }

    #[test]
    fn prop2_marginals_match_declared() {
        let t = example6();
        let m = t.mod_space().unwrap();
        for (tup, p) in t.rows() {
            assert_eq!(m.tuple_prob(tup), *p);
        }
    }

    #[test]
    fn prop2_events_are_independent() {
        let t = example6();
        let m = t.mod_space().unwrap();
        // P[E_{(1,2)} ∩ E_{(3,4)}] = P[E_{(1,2)}]·P[E_{(3,4)}]
        let both = m
            .space()
            .prob_of(|w| w.contains(&tuple![1, 2]) && w.contains(&tuple![3, 4]));
        assert_eq!(both, rat!(4, 10) * rat!(3, 10));
        // Triple-wise too.
        let all3 = m.space().prob_of(|w| {
            w.contains(&tuple![1, 2]) && w.contains(&tuple![3, 4]) && w.contains(&tuple![5, 6])
        });
        assert_eq!(all3, rat!(4, 10) * rat!(3, 10) * Rat::ONE);
    }

    #[test]
    fn pctable_embedding_same_distribution() {
        let t = example6();
        let mut g = VarGen::new();
        let pc = t.to_pctable(&mut g).unwrap();
        assert!(pc
            .mod_space()
            .unwrap()
            .same_distribution(&t.mod_space().unwrap()));
    }

    #[test]
    fn zero_probability_tuple_never_appears() {
        let t = PTable::from_rows(1, [(tuple![1], Rat::ZERO)]).unwrap();
        let m = t.mod_space().unwrap();
        assert_eq!(m.tuple_prob(&tuple![1]), Rat::ZERO);
        assert_eq!(m.world_prob(&Instance::empty(1)), Rat::ONE);
    }

    #[test]
    fn empty_table_is_certain_empty_world() {
        let t: PTable<Rat> = PTable::new(2);
        let m = t.mod_space().unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.world_prob(&Instance::empty(2)), Rat::ONE);
    }
}
