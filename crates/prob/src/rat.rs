//! Exact rational arithmetic.
//!
//! The completeness and closure theorems for probabilistic tables
//! (Thms 8–9) assert *equalities of probability distributions*; testing
//! them with floating point would need tolerances and could mask real
//! defects. [`Rat`] is a small exact rational over `i128` (always
//! reduced, positive denominator). Probabilities in examples and tests
//! have denominators like 10, 20, 256 — products of dozens of such
//! factors stay far inside `i128`. The operator forms panic loudly on
//! overflow rather than silently wrapping; the checked forms
//! ([`Rat::checked_add`] & co., wired into the [`Weight`] trait's
//! checked operations) return `None`, so the model-counting and
//! normalization hot paths surface
//! [`ProbError::Overflow`](crate::ProbError::Overflow) instead of
//! panicking on adversarial weights.

use std::cmp::Ordering;
use std::fmt;

use ipdb_bdd::Weight;

/// An exact rational number `num/den`, reduced, `den > 0`.
///
/// ```
/// use ipdb_prob::Rat;
/// let a = Rat::new(3, 10);
/// let b = Rat::new(7, 10);
/// assert_eq!(a + b, Rat::ONE);
/// assert_eq!(a * b, Rat::new(21, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Builds `num/den`, reducing; panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: num / g,
            den: den / g,
        }
    }

    /// The integer `n`.
    pub const fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign carrier).
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Whether the value lies in `\[0, 1\]` (a valid probability).
    pub fn is_probability(&self) -> bool {
        self.num >= 0 && self.num <= self.den
    }

    /// Nearest `f64` (for reporting; arithmetic stays exact).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `num/den` reduced, or `None` when `den == 0` or the sign
    /// normalization itself overflows.
    fn checked_make(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let (num, den) = if den < 0 {
            (num.checked_neg()?, den.checked_neg()?)
        } else {
            (num, den)
        };
        // den > 0, so gcd(|num|, den) ≥ 1.
        let g = gcd(num, den);
        Some(Rat {
            num: num / g,
            den: den / g,
        })
    }

    /// Checked addition: `None` when the exact result does not fit.
    pub fn checked_add(self, o: Rat) -> Option<Rat> {
        // a/b + c/d = (ad + cb) / bd, with a pre-reduction through
        // gcd(b, d) to delay overflow.
        let g = gcd(self.den, o.den);
        let (b, d) = (self.den / g, o.den / g);
        let num = self
            .num
            .checked_mul(d)?
            .checked_add(o.num.checked_mul(b)?)?;
        Rat::checked_make(num, self.den.checked_mul(d)?)
    }

    /// Checked subtraction: `None` when the exact result does not fit.
    pub fn checked_sub(self, o: Rat) -> Option<Rat> {
        // Negating a reduced rational keeps it reduced.
        self.checked_add(Rat {
            num: o.num.checked_neg()?,
            den: o.den,
        })
    }

    /// Checked multiplication: `None` when the exact result does not
    /// fit.
    pub fn checked_mul(self, o: Rat) -> Option<Rat> {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        let g1 = if g1 == 0 { 1 } else { g1 };
        let g2 = if g2 == 0 { 1 } else { g2 };
        let num = (self.num / g1).checked_mul(o.num / g2)?;
        Rat::checked_make(num, (self.den / g2).checked_mul(o.den / g1)?)
    }

    /// Checked division: `None` on a zero divisor or when the exact
    /// result does not fit.
    pub fn checked_div(self, o: Rat) -> Option<Rat> {
        if o.num == 0 {
            return None;
        }
        self.checked_mul(Rat::checked_make(o.den, o.num)?)
    }
}

impl std::ops::Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        self.checked_add(o)
            .unwrap_or_else(|| panic!("rational overflow in add"))
    }
}

impl std::ops::Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        self.checked_sub(o)
            .unwrap_or_else(|| panic!("rational overflow in sub"))
    }
}

impl std::ops::Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        self.checked_mul(o)
            .unwrap_or_else(|| panic!("rational overflow in mul"))
    }
}

impl std::ops::Div for Rat {
    type Output = Rat;
    fn div(self, o: Rat) -> Rat {
        assert!(o.num != 0, "division by zero rational");
        self.checked_div(o)
            .unwrap_or_else(|| panic!("rational overflow in div"))
    }
}

impl std::ops::Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        // a/b vs c/d (b,d > 0): compare ad vs cb in i128 (values in this
        // workspace are far from the overflow boundary; reduce first).
        let g = gcd(self.den, o.den);
        let (b, d) = (self.den / g, o.den / g);
        (self.num * d).cmp(&(o.num * b))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl Weight for Rat {
    fn zero() -> Self {
        Rat::ZERO
    }
    fn one() -> Self {
        Rat::ONE
    }
    fn add(&self, other: &Self) -> Self {
        *self + *other
    }
    fn sub(&self, other: &Self) -> Self {
        *self - *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn div(&self, other: &Self) -> Self {
        *self / *other
    }
    fn checked_add(&self, other: &Self) -> Option<Self> {
        Rat::checked_add(*self, *other)
    }
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        Rat::checked_sub(*self, *other)
    }
    fn checked_mul(&self, other: &Self) -> Option<Self> {
        Rat::checked_mul(*self, *other)
    }
    fn checked_div(&self, other: &Self) -> Option<Self> {
        Rat::checked_div(*self, *other)
    }
}

/// Shorthand: `rat!(3, 10)` is `Rat::new(3, 10)`; `rat!(2)` is the
/// integer 2.
#[macro_export]
macro_rules! rat {
    ($n:expr) => {
        $crate::Rat::int($n as i128)
    };
    ($n:expr, $d:expr) => {
        $crate::Rat::new($n as i128, $d as i128)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(3, 1).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = rat!(1, 6);
        let b = rat!(1, 3);
        assert_eq!(a + b, rat!(1, 2));
        assert_eq!(b - a, rat!(1, 6));
        assert_eq!(a * b, rat!(1, 18));
        assert_eq!(a / b, rat!(1, 2));
        assert_eq!(-a, rat!(-1, 6));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = rat!(1) / Rat::ZERO;
    }

    #[test]
    fn ordering() {
        assert!(rat!(1, 3) < rat!(1, 2));
        assert!(rat!(-1, 2) < Rat::ZERO);
        assert_eq!(rat!(2, 4).cmp(&rat!(1, 2)), Ordering::Equal);
    }

    #[test]
    fn probability_range() {
        assert!(rat!(3, 10).is_probability());
        assert!(Rat::ZERO.is_probability());
        assert!(Rat::ONE.is_probability());
        assert!(!rat!(11, 10).is_probability());
        assert!(!rat!(-1, 10).is_probability());
    }

    #[test]
    fn weight_impl() {
        let p = rat!(3, 10);
        assert_eq!(p.complement(), rat!(7, 10));
        assert_eq!(Weight::mul(&p, &rat!(1, 3)), rat!(1, 10));
        assert!(Rat::ZERO.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(rat!(3, 10).to_string(), "3/10");
        assert_eq!(rat!(4).to_string(), "4");
        assert_eq!(rat!(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn to_f64() {
        assert!((rat!(1, 4).to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn long_products_stay_exact() {
        // 30 factors of 3/10 and back (denominator 10³⁰ ≪ i128::MAX;
        // ~38 decimal digits is the documented envelope).
        let mut acc = Rat::ONE;
        for _ in 0..30 {
            acc = acc * rat!(3, 10);
        }
        for _ in 0..30 {
            acc = acc / rat!(3, 10);
        }
        assert_eq!(acc, Rat::ONE);
    }

    #[test]
    #[should_panic(expected = "rational overflow")]
    fn overflow_panics_loudly() {
        let mut acc = Rat::ONE;
        for _ in 0..50 {
            acc = acc * rat!(3, 10);
        }
    }

    #[test]
    fn checked_ops_match_operators_in_range() {
        assert_eq!(rat!(1, 6).checked_add(rat!(1, 3)), Some(rat!(1, 2)));
        assert_eq!(rat!(1, 3).checked_sub(rat!(1, 6)), Some(rat!(1, 6)));
        assert_eq!(rat!(1, 6).checked_mul(rat!(1, 3)), Some(rat!(1, 18)));
        assert_eq!(rat!(1, 6).checked_div(rat!(1, 3)), Some(rat!(1, 2)));
    }

    #[test]
    fn checked_ops_report_overflow_as_none() {
        let tiny = Rat::new(1, i128::MAX / 3);
        assert_eq!(tiny.checked_mul(tiny), None);
        let big = Rat::int(i128::MAX);
        assert_eq!(big.checked_add(Rat::ONE), None);
        assert_eq!(Rat::int(i128::MIN).checked_sub(Rat::ONE), None);
        assert_eq!(tiny.checked_div(big), None);
        // Division by zero is `None`, not a panic, in checked form.
        assert_eq!(Rat::ONE.checked_div(Rat::ZERO), None);
        // The Weight-trait checked ops route through the same paths.
        assert_eq!(Weight::checked_mul(&tiny, &tiny), None);
        assert_eq!(Weight::checked_add(&big, &Rat::ONE), None);
        assert_eq!(
            Weight::checked_add(&rat!(1, 4), &rat!(1, 4)),
            Some(rat!(1, 2))
        );
    }
}
