//! Finite probability spaces, product spaces, image spaces.
//!
//! §6 of the paper builds every probabilistic semantics from two textbook
//! constructions: the **product** of finite spaces (Def. 12 — independent
//! components, used for p-`?`-tables via Prop. 2–3 and for pc-tables'
//! variables) and the **image** of a space under a function (Def. 10 —
//! how a query maps a distribution over instances to a distribution over
//! answers, Def. 11). [`FiniteSpace`] implements both, generic over the
//! outcome type and the [`Weight`] (exact `Rat` or `f64`).

use std::collections::BTreeMap;
use std::fmt;

use ipdb_bdd::Weight;

use crate::error::ProbError;

/// A finite probability space `(Ω, p)`: outcomes with probabilities
/// summing to 1.
///
/// Duplicate outcomes are merged (probabilities added) on construction,
/// and zero-probability outcomes are dropped, so equality of spaces is
/// equality of distributions.
///
/// ```
/// use ipdb_prob::{rat, FiniteSpace, Rat};
/// let coin = FiniteSpace::new([("h", rat!(1, 2)), ("t", rat!(1, 2))]).unwrap();
/// let two = coin.product(&coin);
/// assert_eq!(two.prob_of(|(a, b)| a == b), rat!(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteSpace<T, W> {
    outcomes: BTreeMap<T, W>,
}

impl<T, W> FiniteSpace<T, W> {
    /// Number of (non-zero) outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the space has no outcomes (only possible for
    /// unnormalized spaces).
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates over `(outcome, probability)` in outcome order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, T, W> {
        self.outcomes.iter()
    }
}

impl<T: Ord + Clone, W: Weight> FiniteSpace<T, W> {
    /// Builds a space, merging duplicates, dropping zeros, and checking
    /// the total mass is exactly `1`.
    pub fn new(outcomes: impl IntoIterator<Item = (T, W)>) -> Result<Self, ProbError> {
        let space = Self::new_unnormalized(outcomes)?;
        let mass = space.checked_total_mass()?;
        if mass != W::one() {
            return Err(ProbError::MassNotOne(format!("total mass {mass:?}")));
        }
        Ok(space)
    }

    /// Builds a sub-probability space (no mass check); used internally by
    /// constructions that assemble mass incrementally. Duplicate merging
    /// uses checked addition, surfacing [`ProbError::Overflow`] on exact
    /// weights that leave their representable range.
    pub fn new_unnormalized(outcomes: impl IntoIterator<Item = (T, W)>) -> Result<Self, ProbError> {
        let mut map: BTreeMap<T, W> = BTreeMap::new();
        for (t, w) in outcomes {
            match map.get_mut(&t) {
                Some(acc) => *acc = acc.checked_add(&w).ok_or(ProbError::Overflow)?,
                None => {
                    map.insert(t, w);
                }
            }
        }
        map.retain(|_, w| !w.is_zero());
        Ok(FiniteSpace { outcomes: map })
    }

    /// The single-outcome (Dirac) space.
    pub fn dirac(t: T) -> Self {
        FiniteSpace {
            outcomes: BTreeMap::from_iter([(t, W::one())]),
        }
    }

    /// A Bernoulli-style two-outcome space; `p` is the probability of
    /// `yes`. `yes` and `no` must differ.
    pub fn bernoulli(yes: T, no: T, p: W) -> Result<Self, ProbError> {
        FiniteSpace::new([(yes, p.clone()), (no, p.complement())])
    }

    /// The probability of a specific outcome (zero if absent).
    pub fn prob(&self, t: &T) -> W {
        self.outcomes.get(t).cloned().unwrap_or_else(W::zero)
    }

    /// `P[A]` for the event `A = {ω | pred(ω)}`.
    pub fn prob_of(&self, mut pred: impl FnMut(&T) -> bool) -> W {
        let mut acc = W::zero();
        for (t, w) in &self.outcomes {
            if pred(t) {
                acc = acc.add(w);
            }
        }
        acc
    }

    /// Total mass (1 for checked spaces). Uses the panicking weight
    /// addition — fine on spaces that already passed construction; use
    /// [`FiniteSpace::checked_total_mass`] where adversarial weights
    /// can reach the sum.
    pub fn total_mass(&self) -> W {
        let mut acc = W::zero();
        for w in self.outcomes.values() {
            acc = acc.add(w);
        }
        acc
    }

    /// Total mass via checked addition: [`ProbError::Overflow`] instead
    /// of a panic when exact weights leave their representable range —
    /// the summation [`FiniteSpace::new`] validates mass with.
    pub fn checked_total_mass(&self) -> Result<W, ProbError> {
        let mut acc = W::zero();
        for w in self.outcomes.values() {
            acc = acc.checked_add(w).ok_or(ProbError::Overflow)?;
        }
        Ok(acc)
    }

    /// **Image space** (paper Def. 10): push the distribution forward
    /// through `f`, merging collided outcomes.
    pub fn image<U: Ord + Clone>(&self, mut f: impl FnMut(&T) -> U) -> FiniteSpace<U, W> {
        let mut map: BTreeMap<U, W> = BTreeMap::new();
        for (t, w) in &self.outcomes {
            let u = f(t);
            match map.get_mut(&u) {
                Some(acc) => *acc = acc.add(w),
                None => {
                    map.insert(u, w.clone());
                }
            }
        }
        FiniteSpace { outcomes: map }
    }

    /// Fallible image (for functions that can error, e.g. query
    /// evaluation).
    pub fn try_image<U: Ord + Clone, E>(
        &self,
        mut f: impl FnMut(&T) -> Result<U, E>,
    ) -> Result<FiniteSpace<U, W>, E> {
        let mut map: BTreeMap<U, W> = BTreeMap::new();
        for (t, w) in &self.outcomes {
            let u = f(t)?;
            match map.get_mut(&u) {
                Some(acc) => *acc = acc.add(w),
                None => {
                    map.insert(u, w.clone());
                }
            }
        }
        Ok(FiniteSpace { outcomes: map })
    }

    /// **Product space** (paper Def. 12): pairs of outcomes with
    /// multiplied probabilities — the model of non-interfering
    /// components (Prop. 3).
    pub fn product<U: Ord + Clone>(&self, other: &FiniteSpace<U, W>) -> FiniteSpace<(T, U), W> {
        let mut map = BTreeMap::new();
        for (a, wa) in &self.outcomes {
            for (b, wb) in &other.outcomes {
                map.insert((a.clone(), b.clone()), wa.mul(wb));
            }
        }
        FiniteSpace { outcomes: map }
    }

    /// n-ary product: the space over vectors of one outcome per factor
    /// (`Π_i Ω_i`), probabilities multiplied.
    pub fn product_all(factors: &[FiniteSpace<T, W>]) -> FiniteSpace<Vec<T>, W> {
        let mut acc: FiniteSpace<Vec<T>, W> = FiniteSpace::dirac(Vec::new());
        for f in factors {
            let mut map = BTreeMap::new();
            for (prefix, wp) in &acc.outcomes {
                for (t, wt) in &f.outcomes {
                    let mut v = prefix.clone();
                    v.push(t.clone());
                    map.insert(v, wp.mul(wt));
                }
            }
            acc = FiniteSpace { outcomes: map };
        }
        acc
    }

    /// Whether two spaces are the same distribution. (Zero outcomes were
    /// dropped and duplicates merged at construction, so this is plain
    /// equality of the maps.)
    pub fn same_distribution(&self, other: &Self) -> bool
    where
        W: PartialEq,
    {
        self.outcomes == other.outcomes
    }
}

impl<T: fmt::Display, W: fmt::Debug> fmt::Display for FiniteSpace<T, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (t, w) in &self.outcomes {
            writeln!(f, "  {t} : {w:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;

    #[test]
    fn mass_checked() {
        assert!(FiniteSpace::new([(1, rat!(1, 2)), (2, rat!(1, 4))]).is_err());
        let ok = FiniteSpace::new([(1, rat!(1, 2)), (2, rat!(1, 2))]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn duplicates_merge_zeros_drop() {
        let s = FiniteSpace::new([(1, rat!(1, 2)), (1, rat!(1, 2)), (2, Rat::ZERO)]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.prob(&1), Rat::ONE);
        assert_eq!(s.prob(&2), Rat::ZERO);
    }

    #[test]
    fn dirac_and_bernoulli() {
        let d: FiniteSpace<i32, Rat> = FiniteSpace::dirac(7);
        assert_eq!(d.prob(&7), Rat::ONE);
        let b = FiniteSpace::bernoulli(true, false, rat!(3, 10)).unwrap();
        assert_eq!(b.prob(&true), rat!(3, 10));
        assert_eq!(b.prob(&false), rat!(7, 10));
    }

    #[test]
    fn prob_of_event() {
        let s = FiniteSpace::new([(1, rat!(1, 4)), (2, rat!(1, 4)), (3, rat!(1, 2))]).unwrap();
        assert_eq!(s.prob_of(|x| *x >= 2), rat!(3, 4));
        assert_eq!(s.prob_of(|_| false), Rat::ZERO);
    }

    #[test]
    fn image_merges_collisions() {
        let s = FiniteSpace::new([(1, rat!(1, 4)), (2, rat!(1, 4)), (3, rat!(1, 2))]).unwrap();
        let img = s.image(|x| x % 2);
        assert_eq!(img.prob(&0), rat!(1, 4));
        assert_eq!(img.prob(&1), rat!(3, 4));
        assert_eq!(img.total_mass(), Rat::ONE);
    }

    #[test]
    fn product_multiplies_and_is_independent() {
        let a = FiniteSpace::new([(0, rat!(1, 3)), (1, rat!(2, 3))]).unwrap();
        let b = FiniteSpace::new([(0, rat!(1, 2)), (1, rat!(1, 2))]).unwrap();
        let p = a.product(&b);
        assert_eq!(p.prob(&(1, 0)), rat!(1, 3));
        assert_eq!(p.total_mass(), Rat::ONE);
        // Prop. 3: marginal of the first component equals `a`.
        let m = p.image(|(x, _)| *x);
        assert!(m.same_distribution(&a));
    }

    #[test]
    fn product_all_of_three_coins() {
        let coin = FiniteSpace::bernoulli(1, 0, rat!(1, 2)).unwrap();
        let all = FiniteSpace::product_all(&[coin.clone(), coin.clone(), coin]);
        assert_eq!(all.len(), 8);
        assert_eq!(all.prob(&vec![1, 1, 1]), rat!(1, 8));
        let heads = all.image(|v| v.iter().sum::<i32>());
        assert_eq!(heads.prob(&2), rat!(3, 8));
    }

    #[test]
    fn product_all_empty_is_dirac_empty() {
        let all: FiniteSpace<Vec<i32>, Rat> = FiniteSpace::product_all(&[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all.prob(&vec![]), Rat::ONE);
    }

    #[test]
    fn try_image_propagates_errors() {
        let s = FiniteSpace::new([(1, rat!(1, 2)), (2, rat!(1, 2))]).unwrap();
        let ok: Result<FiniteSpace<i32, Rat>, &str> = s.try_image(|x| Ok(x * 10));
        assert_eq!(ok.unwrap().prob(&10), rat!(1, 2));
        let err: Result<FiniteSpace<i32, Rat>, &str> =
            s.try_image(|x| if *x == 2 { Err("boom") } else { Ok(*x) });
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn f64_spaces_work_too() {
        let s = FiniteSpace::new([(1, 0.25f64), (2, 0.75f64)]).unwrap();
        assert_eq!(s.prob_of(|x| *x == 2), 0.75);
    }
}
