//! pc-tables with conditionally dependent variables — the §9 extension.
//!
//! "As part of the proposed work, trying to make pc-tables even more
//! flexible, we plan to investigate models in which the assumption that
//! the variables take values independently is relaxed by using
//! conditional probability distributions \[14\]." (paper §9)
//!
//! [`ChainPcTable`] implements exactly that: variables are ordered, and
//! each variable's distribution may depend on the values of *earlier*
//! variables (a conditional probability table, as in Bayesian networks).
//! The semantics is the chain rule: a valuation's probability is the
//! product of each variable's conditional probability given its
//! parents' values. With no parents anywhere this degenerates to
//! Def. 13's independent pc-table — tested below — and the same closure
//! argument applies: `q̄` never touches distributions, so Thm 9 lifts.

use std::collections::BTreeMap;
use std::fmt;

use ipdb_bdd::Weight;
use ipdb_logic::{Valuation, Var};
use ipdb_rel::{Query, Value};
use ipdb_tables::CTable;

use crate::error::ProbError;
use crate::pctable::PcTable;
use crate::pdb::PDatabase;
use crate::space::FiniteSpace;

/// A conditional distribution: `P[x = · | parents = ·]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CondDist<W> {
    /// The variables this distribution conditions on (must precede the
    /// owning variable in the chain order).
    parents: Vec<Var>,
    /// One outcome distribution per assignment of parent values.
    rows: BTreeMap<Vec<Value>, FiniteSpace<Value, W>>,
}

impl<W: Weight> CondDist<W> {
    /// An unconditional distribution (no parents).
    pub fn marginal(dist: FiniteSpace<Value, W>) -> Self {
        CondDist {
            parents: Vec::new(),
            rows: BTreeMap::from([(Vec::new(), dist)]),
        }
    }

    /// A conditional distribution; every reachable parent assignment
    /// must have a row (checked during enumeration).
    pub fn conditional(
        parents: Vec<Var>,
        rows: impl IntoIterator<Item = (Vec<Value>, FiniteSpace<Value, W>)>,
    ) -> Self {
        CondDist {
            parents,
            rows: rows.into_iter().collect(),
        }
    }

    /// The parent variables.
    pub fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn dist_for(&self, nu: &Valuation) -> Result<&FiniteSpace<Value, W>, ProbError> {
        let key: Vec<Value> = self
            .parents
            .iter()
            .map(|p| {
                nu.get(*p)
                    .cloned()
                    .ok_or(ProbError::MissingDistribution(*p))
            })
            .collect::<Result<_, _>>()?;
        self.rows.get(&key).ok_or_else(|| {
            ProbError::MassNotOne(format!("no CPT row for parent assignment {key:?}"))
        })
    }

    /// All values this variable can ever take (union of row supports).
    pub fn support(&self) -> impl Iterator<Item = &Value> {
        self.rows.values().flat_map(|d| d.iter().map(|(v, _)| v))
    }
}

/// A c-table whose variables follow a chain of conditional
/// distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPcTable<W> {
    table: CTable,
    /// Topological order of the variables (parents before children).
    order: Vec<Var>,
    dists: BTreeMap<Var, CondDist<W>>,
}

impl<W: Weight> ChainPcTable<W> {
    /// Builds a chain pc-table. Every variable of the table must appear
    /// in `order` with a distribution, and each variable's parents must
    /// precede it.
    pub fn new(
        table: CTable,
        order: Vec<Var>,
        dists: impl IntoIterator<Item = (Var, CondDist<W>)>,
    ) -> Result<Self, ProbError> {
        let dists: BTreeMap<Var, CondDist<W>> = dists.into_iter().collect();
        for v in table.vars() {
            if !dists.contains_key(&v) {
                return Err(ProbError::MissingDistribution(v));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for v in &order {
            let d = dists.get(v).ok_or(ProbError::MissingDistribution(*v))?;
            for p in d.parents() {
                if !seen.contains(p) {
                    return Err(ProbError::MassNotOne(format!(
                        "parent {p} of {v} does not precede it in the chain order"
                    )));
                }
            }
            seen.insert(*v);
        }
        for v in dists.keys() {
            if !seen.contains(v) {
                return Err(ProbError::MissingDistribution(*v));
            }
        }
        let mut table = table;
        for v in table.vars() {
            let support = ipdb_rel::Domain::new(dists[&v].support().cloned());
            table.set_domain(v, support).map_err(ProbError::Table)?;
        }
        Ok(ChainPcTable {
            table,
            order,
            dists,
        })
    }

    /// The underlying c-table.
    pub fn table(&self) -> &CTable {
        &self.table
    }

    /// The chain-rule valuation space: every total valuation with its
    /// probability `Π_i P[xᵢ = νᵢ | parents]`.
    pub fn valuation_space(&self) -> Result<Vec<(Valuation, W)>, ProbError> {
        let mut acc: Vec<(Valuation, W)> = vec![(Valuation::new(), W::one())];
        for v in &self.order {
            let cond = &self.dists[v];
            let mut next = Vec::new();
            for (nu, w) in &acc {
                let dist = cond.dist_for(nu)?;
                for (val, p) in dist.iter() {
                    let mut nu2 = nu.clone();
                    nu2.bind(*v, val.clone());
                    next.push((nu2, w.mul(p)));
                }
            }
            acc = next;
        }
        Ok(acc)
    }

    /// `Mod(T)`: the image of the chain-rule space under `ν ↦ ν(T)`.
    pub fn mod_space(&self) -> Result<PDatabase<W>, ProbError> {
        let mut outcomes = Vec::new();
        for (nu, w) in self.valuation_space()? {
            outcomes.push((
                self.table.apply_valuation(&nu).map_err(ProbError::Table)?,
                w,
            ));
        }
        Ok(PDatabase::from_space(
            self.table.arity(),
            FiniteSpace::new_unnormalized(outcomes)?,
        ))
    }

    /// Thm 9 lifted: `q̄` on the table, distributions untouched (all
    /// variables kept — children may depend on variables the query
    /// dropped).
    pub fn eval_query(&self, q: &Query) -> Result<ChainPcTable<W>, ProbError> {
        Ok(ChainPcTable {
            table: self.table.eval_query(q).map_err(ProbError::Table)?,
            order: self.order.clone(),
            dists: self.dists.clone(),
        })
    }
}

impl<W: Weight> From<PcTable<W>> for ChainPcTable<W> {
    /// Every independent pc-table is a chain with no parents.
    fn from(pc: PcTable<W>) -> Self {
        let order: Vec<Var> = pc.dists().keys().copied().collect();
        let dists = pc
            .dists()
            .iter()
            .map(|(v, d)| (*v, CondDist::marginal(d.clone())))
            .collect::<Vec<_>>();
        ChainPcTable::new(pc.table().clone(), order, dists)
            .expect("independent pc-tables are valid chains")
    }
}

impl<W: fmt::Debug> fmt::Display for ChainPcTable<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain-pc-{}", self.table)?;
        for v in &self.order {
            let d = &self.dists[v];
            if d.parents.is_empty() {
                writeln!(f, "  {v} ~ marginal")?;
            } else {
                write!(f, "  {v} | ")?;
                for (i, p) in d.parents.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_logic::Condition;
    use ipdb_rel::{instance, tuple};
    use ipdb_tables::{t_const, t_var};

    fn dist(pairs: &[(&str, Rat)]) -> FiniteSpace<Value, Rat> {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    }

    /// Alice's course; Bob *tends to follow* Alice (correlated, not
    /// equal) — inexpressible with independent pc-table variables over
    /// the same vocabulary.
    fn correlated() -> ChainPcTable<Rat> {
        let (a, b) = (Var(0), Var(1));
        let table = CTable::builder(2)
            .row([t_const("Alice"), t_var(a)], Condition::True)
            .row([t_const("Bob"), t_var(b)], Condition::True)
            .build()
            .unwrap();
        let a_dist = CondDist::marginal(dist(&[("math", rat!(1, 2)), ("phys", rat!(1, 2))]));
        let b_dist = CondDist::conditional(
            vec![a],
            [
                (
                    vec![Value::from("math")],
                    dist(&[("math", rat!(9, 10)), ("phys", rat!(1, 10))]),
                ),
                (
                    vec![Value::from("phys")],
                    dist(&[("math", rat!(2, 10)), ("phys", rat!(8, 10))]),
                ),
            ],
        );
        ChainPcTable::new(table, vec![a, b], [(a, a_dist), (b, b_dist)]).unwrap()
    }

    #[test]
    fn chain_rule_probabilities() {
        let c = correlated();
        let m = c.mod_space().unwrap();
        // P[both math] = 1/2 · 9/10.
        assert_eq!(
            m.world_prob(&instance![["Alice", "math"], ["Bob", "math"]]),
            rat!(9, 20)
        );
        // P[Alice phys, Bob math] = 1/2 · 2/10.
        assert_eq!(
            m.world_prob(&instance![["Alice", "phys"], ["Bob", "math"]]),
            rat!(1, 10)
        );
        assert_eq!(m.space().total_mass(), Rat::ONE);
        // Marginal of Bob: 1/2·9/10 + 1/2·2/10 = 11/20 for math.
        assert_eq!(m.tuple_prob(&tuple!["Bob", "math"]), rat!(11, 20));
    }

    #[test]
    fn order_validation() {
        let (a, b) = (Var(0), Var(1));
        let table = CTable::builder(1)
            .row([t_var(b)], Condition::True)
            .build()
            .unwrap();
        let b_dist =
            CondDist::conditional(vec![a], [(vec![Value::from(1)], dist(&[("x", Rat::ONE)]))]);
        // b's parent a is not in the order before it.
        assert!(ChainPcTable::new(table, vec![b], [(b, b_dist)]).is_err());
    }

    #[test]
    fn independent_chain_equals_pctable() {
        let x = Var(0);
        let table = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let d = dist(&[("a", rat!(1, 4)), ("b", rat!(3, 4))]);
        let pc = PcTable::new(table, [(x, d)]).unwrap();
        let chain: ChainPcTable<Rat> = pc.clone().into();
        assert!(chain
            .mod_space()
            .unwrap()
            .same_distribution(&pc.mod_space().unwrap()));
    }

    #[test]
    fn closure_under_queries() {
        let c = correlated();
        let q = Query::select(Query::Input, ipdb_rel::Pred::eq_const(1, "math"));
        let lhs = c.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = c.mod_space().unwrap().map_query(&q).unwrap();
        assert!(lhs.same_distribution(&rhs));
    }

    #[test]
    fn missing_cpt_row_reported() {
        let (a, b) = (Var(0), Var(1));
        let table = CTable::builder(1)
            .row([t_var(b)], Condition::True)
            .build()
            .unwrap();
        let a_dist = CondDist::marginal(dist(&[("m", rat!(1, 2)), ("p", rat!(1, 2))]));
        // CPT only covers a = "m".
        let b_dist = CondDist::conditional(
            vec![a],
            [(vec![Value::from("m")], dist(&[("x", Rat::ONE)]))],
        );
        let chain = ChainPcTable::new(table, vec![a, b], [(a, a_dist), (b, b_dist)]).unwrap();
        assert!(chain.mod_space().is_err());
    }
}
