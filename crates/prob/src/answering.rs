//! Query answering on probabilistic c-tables: three engines.
//!
//! §7–§8 of the paper: the probability that a tuple `t` appears in a
//! query answer is the probability of `t`'s *event expression* — the
//! condition decorating `t` in `q̄(T)`. This module computes it three
//! ways, cheapest-to-build first:
//!
//! 1. [`tuple_prob_enum`] — enumerate the whole valuation space
//!    (exponential in the number of variables, always applicable);
//! 2. [`tuple_prob_shannon`] — Shannon expansion of the tuple's presence
//!    condition with memoization on residual conditions (touches only
//!    the variables the condition mentions);
//! 3. [`tuple_prob_bdd`] — for *boolean* pc-tables, compile the presence
//!    condition to a ROBDD and run weighted model counting;
//! 4. [`PcTable::tuple_prob_bdd`] / [`PcTable::answer_dist_bdd`] — the
//!    general finite-domain BDD path: every multi-valued variable is
//!    one-hot encoded (`ipdb_bdd::FdEncoding`), so arbitrary `Eq`/`Neq`
//!    conditions compile, and the answer distribution is computed by
//!    domain-aware WMC with one manager shared across all answer tuples.
//!
//! All engines agree exactly (property-tested with `Rat`, including the
//! `prob_oracle` differential suite in `ipdb-engine`); the benches in
//! `ipdb-bench` measure the crossovers.

use std::collections::{BTreeMap, BTreeSet};

use ipdb_bdd::{compile_condition, var_order, BddManager, Weight};
use ipdb_logic::{Condition, Term, Valuation, Var};
use ipdb_rel::{Domain, Tuple, Value};
use ipdb_tables::{algebra, CTable};

use crate::error::ProbError;
use crate::pctable::{BooleanPcTable, PcTable};
use crate::space::FiniteSpace;

/// The *presence condition* of tuple `t` in a c-table: the event
/// expression `⋁_{rows (s:φ)} (s = t ∧ φ)` — exactly the condition `t`
/// would carry in the table after merging rows (and the tuple's lineage,
/// §9).
pub fn presence_condition(table: &CTable, t: &Tuple) -> Condition {
    let t_terms: Vec<Term> = t.iter().map(|v| Term::Const(v.clone())).collect();
    Condition::or(
        table.rows().iter().map(|row| {
            Condition::and([algebra::tuples_eq(&row.tuple, &t_terms), row.cond.clone()])
        }),
    )
}

/// `P[φ]` by Shannon expansion over the variables' finite distributions,
/// with memoization on the (folded) residual condition.
///
/// Branch on the first variable of the residual: each outcome
/// contributes `P[x = a] · P[φ[x:=a]]`. Residuals that fold to
/// `true`/`false` terminate immediately, and the memo table catches the
/// (frequent, for event expressions) coinciding residuals.
pub fn prob_of_condition<W: Weight>(
    cond: &Condition,
    dists: &BTreeMap<Var, FiniteSpace<Value, W>>,
) -> Result<W, ProbError> {
    for v in cond.vars() {
        if !dists.contains_key(&v) {
            return Err(ProbError::MissingDistribution(v));
        }
    }
    let mut memo: BTreeMap<Condition, W> = BTreeMap::new();
    fn rec<W: Weight>(
        cond: &Condition,
        dists: &BTreeMap<Var, FiniteSpace<Value, W>>,
        memo: &mut BTreeMap<Condition, W>,
    ) -> Result<W, ProbError> {
        match cond {
            Condition::True => return Ok(W::one()),
            Condition::False => return Ok(W::zero()),
            _ => {}
        }
        if let Some(p) = memo.get(cond) {
            return Ok(p.clone());
        }
        let v = *cond
            .vars()
            .iter()
            .next()
            .expect("non-constant condition has a variable");
        let mut acc = W::zero();
        for (val, p) in dists[&v].iter() {
            let step = Valuation::from_iter([(v, val.clone())]);
            let residual = cond.partial_eval(&step);
            let branch = p
                .checked_mul(&rec(&residual, dists, memo)?)
                .ok_or(ProbError::Overflow)?;
            acc = acc.checked_add(&branch).ok_or(ProbError::Overflow)?;
        }
        memo.insert(cond.clone(), acc.clone());
        Ok(acc)
    }
    rec(&cond.simplify(), dists, &mut memo)
}

/// Engine 1: `P[t ∈ I]` by full enumeration of `Mod(T)`.
pub fn tuple_prob_enum<W: Weight>(pc: &PcTable<W>, t: &Tuple) -> Result<W, ProbError> {
    pc.tuple_prob_enum(t)
}

/// Engine 2: `P[t ∈ I]` by Shannon expansion of the presence condition.
pub fn tuple_prob_shannon<W: Weight>(pc: &PcTable<W>, t: &Tuple) -> Result<W, ProbError> {
    let cond = presence_condition(pc.table(), t);
    prob_of_condition(&cond, pc.dists())
}

/// Engine 3: `P[t ∈ I]` for boolean pc-tables via ROBDD + weighted model
/// counting (one Boolean BDD variable per table variable — leaner than
/// the general one-hot path when conditions are already boolean).
pub fn tuple_prob_bdd<W: Weight>(bpc: &BooleanPcTable<W>, t: &Tuple) -> Result<W, ProbError> {
    let cond = presence_condition(bpc.as_pctable().table(), t);
    let order = var_order(&cond);
    let mut mgr = BddManager::new();
    let f = compile_condition(&mut mgr, &cond, &order)?;
    // weights[i] = (P[x=false], P[x=true]) in BDD index order.
    let dists = bpc.as_pctable().dists();
    let mut weights: Vec<(W, W)> = vec![(W::one(), W::zero()); order.len()];
    for (v, idx) in &order {
        let d = &dists[v];
        weights[*idx as usize] = (d.prob(&Value::Bool(false)), d.prob(&Value::Bool(true)));
    }
    Ok(mgr.wmc(f, &weights)?)
}

/// The candidate answer tuples of a pc-table: every row's tuple grounded
/// over the domains (distribution supports) of its own tuple variables,
/// deduplicated in canonical order. Cheaper than materializing `Mod`,
/// and complete: every tuple with non-zero marginal is among these.
/// Shared by the Shannon ([`answer_marginals`]) and BDD
/// ([`PcTable::marginals_bdd`]) paths so their candidate semantics
/// cannot drift apart.
pub(crate) fn candidate_tuples<W: Weight>(pc: &PcTable<W>) -> Result<BTreeSet<Tuple>, ProbError> {
    let mut out = BTreeSet::new();
    for row in pc.table().rows() {
        let mut row_vars: Vec<Var> = row.tuple.iter().filter_map(Term::as_var).collect();
        row_vars.sort_unstable();
        row_vars.dedup();
        let doms: BTreeMap<Var, Domain> = row_vars
            .iter()
            .map(|v| {
                let d = Domain::new(pc.dists()[v].iter().map(|(val, _)| val.clone()));
                (*v, d)
            })
            .collect();
        for nu in Valuation::all_over(&doms) {
            out.insert(row.apply(&nu)?);
        }
    }
    Ok(out)
}

/// The full answer-tuple marginal table for `q` over `pc`: every
/// possible answer tuple with its probability (computed with the Shannon
/// engine), in canonical tuple order.
///
/// This is the §7 question ("the probability of tuples appearing in
/// query answers") answered through the Thm 9 closure.
pub fn answer_marginals<W: Weight>(
    pc: &PcTable<W>,
    q: &ipdb_rel::Query,
) -> Result<Vec<(Tuple, W)>, ProbError> {
    let answered = pc.eval_query(q)?;
    let mut out = Vec::new();
    for t in candidate_tuples(&answered)? {
        let p = tuple_prob_shannon(&answered, &t)?;
        if !p.is_zero() {
            out.push((t, p));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use crate::space::FiniteSpace;
    use ipdb_logic::VarGen;
    use ipdb_rel::{tuple, Pred, Query};
    use ipdb_tables::{t_const, t_var, BooleanCTable};

    fn uniform(vals: &[i64]) -> FiniteSpace<Value, Rat> {
        let n = vals.len() as i128;
        FiniteSpace::new(vals.iter().map(|v| (Value::from(*v), Rat::new(1, n)))).unwrap()
    }

    fn small_pc() -> PcTable<Rat> {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let table = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(9)], Condition::eq_vv(x, y))
            .build()
            .unwrap();
        PcTable::new(table, [(x, uniform(&[1, 2, 3])), (y, uniform(&[1, 2, 3]))]).unwrap()
    }

    #[test]
    fn presence_condition_shape() {
        let pc = small_pc();
        let c = presence_condition(pc.table(), &tuple![9]);
        // (9 = x ∧ true) ∨ (9 = 9 ∧ x = y) — first disjunct keeps x=9,
        // second folds to x=y.
        assert!(c.vars().len() == 2);
    }

    #[test]
    fn three_engines_agree_on_small_pc() {
        let pc = small_pc();
        for t in [tuple![1], tuple![2], tuple![9], tuple![7]] {
            let e = tuple_prob_enum(&pc, &t).unwrap();
            let s = tuple_prob_shannon(&pc, &t).unwrap();
            assert_eq!(e, s, "tuple {t}");
        }
        // Hand-checked: P[(1)] = P[x=1] = 1/3;
        // P[(9)] = P[x=y] = 1/3 (9 not in dom(x)).
        assert_eq!(tuple_prob_shannon(&pc, &tuple![1]).unwrap(), rat!(1, 3));
        assert_eq!(tuple_prob_shannon(&pc, &tuple![9]).unwrap(), rat!(1, 3));
    }

    #[test]
    fn bdd_engine_agrees_on_boolean_tables() {
        let (a, b) = (Var(0), Var(1));
        let mut bt = BooleanCTable::new(1);
        bt.push(
            tuple![1],
            Condition::or([Condition::bvar(a), Condition::bvar(b)]),
        )
        .unwrap();
        bt.push(
            tuple![2],
            Condition::and([Condition::bvar(a), Condition::nbvar(b)]),
        )
        .unwrap();
        let bpc = BooleanPcTable::new(bt, [(a, rat!(1, 2)), (b, rat!(1, 4))]).unwrap();
        for t in [tuple![1], tuple![2], tuple![3]] {
            let e = tuple_prob_enum(bpc.as_pctable(), &t).unwrap();
            let s = tuple_prob_shannon(bpc.as_pctable(), &t).unwrap();
            let d = tuple_prob_bdd(&bpc, &t).unwrap();
            assert_eq!(e, s, "tuple {t}");
            assert_eq!(e, d, "tuple {t}");
        }
        // P[(1)] = 1 - 1/2·3/4 = 5/8.
        assert_eq!(tuple_prob_bdd(&bpc, &tuple![1]).unwrap(), rat!(5, 8));
    }

    #[test]
    fn fd_bdd_engine_agrees_on_general_tables() {
        // small_pc has non-boolean atoms (x = 1, x = y), which the
        // boolean compiler rejects; the finite-domain path handles them.
        let pc = small_pc();
        for t in [tuple![1], tuple![2], tuple![9], tuple![7]] {
            let e = tuple_prob_enum(&pc, &t).unwrap();
            let s = tuple_prob_shannon(&pc, &t).unwrap();
            let d = pc.tuple_prob_bdd(&t).unwrap();
            assert_eq!(e, d, "enum vs bdd on tuple {t}");
            assert_eq!(s, d, "shannon vs bdd on tuple {t}");
        }
        assert_eq!(pc.tuple_prob_bdd(&tuple![9]).unwrap(), rat!(1, 3));
    }

    #[test]
    fn answer_dist_bdd_matches_enum_and_shannon_marginals() {
        let pc = small_pc();
        for q in [
            Query::Input,
            Query::select(Query::Input, Pred::neq_const(0, 9)),
            Query::union(Query::Input, Query::Lit(ipdb_rel::instance![[2]])),
        ] {
            let bdd = pc.answer_dist_bdd(&q).unwrap();
            assert_eq!(bdd, pc.answer_dist_enum(&q).unwrap(), "query {q}");
            assert_eq!(bdd, answer_marginals(&pc, &q).unwrap(), "query {q}");
        }
    }

    #[test]
    fn prob_of_condition_basics() {
        let x = Var(0);
        let dists = BTreeMap::from([(x, uniform(&[1, 2, 3, 4]))]);
        assert_eq!(
            prob_of_condition(&Condition::eq_vc(x, 1), &dists).unwrap(),
            rat!(1, 4)
        );
        assert_eq!(
            prob_of_condition(&Condition::neq_vc(x, 1), &dists).unwrap(),
            rat!(3, 4)
        );
        assert_eq!(
            prob_of_condition(&Condition::True, &dists).unwrap(),
            Rat::ONE
        );
        assert_eq!(
            prob_of_condition(&Condition::eq_vc(x, 77), &dists).unwrap(),
            Rat::ZERO
        );
        assert_eq!(
            prob_of_condition(&Condition::eq_vc(Var(9), 1), &dists),
            Err(ProbError::MissingDistribution(Var(9)))
        );
    }

    #[test]
    fn answer_marginals_on_query() {
        let pc = small_pc();
        // σ_{#1≠9}(V): drops the 9 row unless... keeps x-row tuples ≠ 9.
        let q = Query::select(Query::Input, Pred::neq_const(0, 9));
        let m = answer_marginals(&pc, &q).unwrap();
        // Possible answers: 1, 2, 3 each with P = 1/3.
        assert_eq!(m.len(), 3);
        for (t, p) in &m {
            assert_eq!(*p, rat!(1, 3), "tuple {t}");
        }
    }

    #[test]
    fn answer_marginals_match_mod_space() {
        let pc = small_pc();
        let q = Query::union(Query::Input, Query::Lit(ipdb_rel::instance![[2]]));
        let m = answer_marginals(&pc, &q).unwrap();
        let answered = pc.eval_query(&q).unwrap().mod_space().unwrap();
        for (t, p) in &m {
            assert_eq!(*p, answered.tuple_prob(t), "tuple {t}");
        }
        // And (2) is now certain.
        assert!(m.contains(&(tuple![2], Rat::ONE)));
    }
}
