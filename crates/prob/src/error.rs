//! Errors for the probabilistic layer.

use std::fmt;

use ipdb_bdd::BddError;
use ipdb_logic::{LogicError, Var};
use ipdb_rel::RelError;
use ipdb_tables::TableError;

/// Errors raised by probabilistic tables, spaces, and query answering.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// Outcome probabilities do not sum to 1.
    MassNotOne(String),
    /// A probability lies outside `\[0, 1\]`.
    InvalidProbability(String),
    /// A pc-table variable has no attached distribution.
    MissingDistribution(Var),
    /// A distribution listed the same outcome twice.
    DuplicateOutcome(String),
    /// A distribution has no outcomes.
    EmptyDistribution,
    /// Two pc-relations of one catalog gave the same (shared-namespace)
    /// variable different distributions.
    ConflictingDistribution(Var),
    /// Exact-weight arithmetic left the weight type's representable
    /// range (e.g. [`Rat`](crate::Rat) denominators past `i128`) during
    /// model counting or normalization. Surfaced as an error instead of
    /// a panic so adversarial weights cannot crash the answering entry
    /// points.
    Overflow,
    /// An underlying table error.
    Table(TableError),
    /// An underlying logic error.
    Logic(LogicError),
    /// An underlying relational error.
    Rel(RelError),
    /// An underlying BDD compilation / model-counting error.
    Bdd(BddError),
    /// Lifted (extensional) evaluation was asked for a non-hierarchical
    /// query, where no safe plan exists (Dalvi–Suciu dichotomy; paper
    /// §8's discussion of \[9\]).
    NonHierarchical(String),
    /// A conjunctive-query atom referenced an unknown relation.
    UnknownRelation(String),
    /// A conjunctive-query atom's arity does not match its relation.
    AtomArity {
        /// The relation name.
        rel: String,
        /// Arity expected by the stored relation.
        expected: usize,
        /// Arity used by the atom.
        got: usize,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::MassNotOne(s) => write!(f, "probabilities do not sum to 1: {s}"),
            ProbError::InvalidProbability(s) => write!(f, "probability out of [0,1]: {s}"),
            ProbError::MissingDistribution(v) => {
                write!(f, "variable {v} has no probability distribution")
            }
            ProbError::DuplicateOutcome(s) => write!(f, "duplicate outcome in distribution: {s}"),
            ProbError::EmptyDistribution => write!(f, "distribution has no outcomes"),
            ProbError::ConflictingDistribution(v) => write!(
                f,
                "variable {v} carries different distributions in different relations \
                 of the catalog"
            ),
            ProbError::Overflow => write!(
                f,
                "exact rational arithmetic overflowed during probability computation"
            ),
            ProbError::Table(e) => write!(f, "{e}"),
            ProbError::Logic(e) => write!(f, "{e}"),
            ProbError::Rel(e) => write!(f, "{e}"),
            ProbError::Bdd(e) => write!(f, "{e}"),
            ProbError::NonHierarchical(s) => {
                write!(f, "query is not hierarchical (no safe plan): {s}")
            }
            ProbError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            ProbError::AtomArity { rel, expected, got } => {
                write!(
                    f,
                    "atom over {rel} has arity {got}, relation has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ProbError {}

impl From<TableError> for ProbError {
    fn from(e: TableError) -> Self {
        ProbError::Table(e)
    }
}

impl From<LogicError> for ProbError {
    fn from(e: LogicError) -> Self {
        ProbError::Logic(e)
    }
}

impl From<RelError> for ProbError {
    fn from(e: RelError) -> Self {
        ProbError::Rel(e)
    }
}

impl From<BddError> for ProbError {
    fn from(e: BddError) -> Self {
        match e {
            // Weight overflow is a property of the probability layer's
            // arithmetic, not of the diagram: keep one variant for it so
            // callers match a single error regardless of which engine
            // (WMC, Shannon, enumeration) hit the edge.
            BddError::Overflow => ProbError::Overflow,
            e => ProbError::Bdd(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_froms() {
        let e: ProbError = TableError::EmptyOrSet.into();
        assert!(matches!(e, ProbError::Table(_)));
        let e: ProbError = LogicError::UnboundVar(Var(3)).into();
        assert!(e.to_string().contains("x3"));
        let e: ProbError = RelError::RaggedLiteral.into();
        assert!(matches!(e, ProbError::Rel(_)));
        let e: ProbError = BddError::UnknownVar(Var(4)).into();
        assert!(matches!(e, ProbError::Bdd(_)));
        assert!(e.to_string().contains("x4"));
        assert!(ProbError::NonHierarchical("h0".into())
            .to_string()
            .contains("hierarchical"));
        let e: ProbError = BddError::Overflow.into();
        assert_eq!(e, ProbError::Overflow);
        assert!(e.to_string().contains("overflow"));
        assert!(ProbError::ConflictingDistribution(Var(2))
            .to_string()
            .contains("x2"));
    }
}
