//! Probabilistic c-tables (paper Definition 13) — the paper's new model.
//!
//! A pc-table is a c-table together with a finite probability space
//! `dom(x)` for each variable. The semantics (§8) is the image of the
//! product space `V = Π_x dom(x)` — whose outcomes "are in fact the
//! valuations for the c-table T!" — under `g(ν) = ν(T)`.
//!
//! Closure (Thm 9): `q(Mod(T))` *as a distribution* equals
//! `Mod(q̄(T))` with the same variable distributions — the same c-table
//! algebra of Theorem 4 does all the work. [`PcTable::eval_query`]
//! implements it; the equality is property-tested.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ipdb_bdd::{BddManager, BddStats, FdEncoding, Weight};
use ipdb_logic::{Condition, Valuation, Var};
use ipdb_rel::{Domain, Query, Tuple, Value};
use ipdb_tables::{BooleanCTable, CTable};

use crate::answering::presence_condition;
use crate::error::ProbError;
use crate::pdb::PDatabase;
use crate::space::FiniteSpace;

/// A probabilistic c-table: a c-table whose variables carry independent
/// finite distributions.
///
/// ```
/// use ipdb_logic::{Condition, Var, VarGen};
/// use ipdb_prob::{rat, FiniteSpace, PcTable, Rat};
/// use ipdb_rel::Value;
/// use ipdb_tables::{t_const, t_var, CTable};
///
/// // One row (x) with x uniform on {1, 2}.
/// let mut g = VarGen::new();
/// let x = g.fresh();
/// let t = CTable::builder(1).row([t_var(x)], Condition::True).build().unwrap();
/// let dist = FiniteSpace::new([
///     (Value::from(1), rat!(1, 2)),
///     (Value::from(2), rat!(1, 2)),
/// ]).unwrap();
/// let pc = PcTable::new(t, [(x, dist)]).unwrap();
/// let m = pc.mod_space().unwrap();
/// assert_eq!(m.tuple_prob(&ipdb_rel::tuple![1]), rat!(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcTable<W> {
    table: CTable,
    dists: BTreeMap<Var, FiniteSpace<Value, W>>,
}

/// Shared state of the BDD probability engine: the manager, the one-hot
/// encoding, and the Boolean branch-weight vector.
type BddCtx<W> = (BddManager, FdEncoding, Vec<(W, W)>);

/// A variable-to-distribution assignment, in the list form accepted by
/// [`PcTable::new`] and produced by the `dists_restricted` family.
pub type VarDists<W> = Vec<(Var, FiniteSpace<Value, W>)>;

impl<W: Weight> PcTable<W> {
    /// Builds a pc-table: every variable of `table` must have a
    /// distribution; the table's finite domains are synchronized to the
    /// distributions' supports.
    pub fn new(
        table: CTable,
        dists: impl IntoIterator<Item = (Var, FiniteSpace<Value, W>)>,
    ) -> Result<Self, ProbError> {
        let dists: BTreeMap<Var, FiniteSpace<Value, W>> = dists.into_iter().collect();
        let mut table = table;
        for v in table.vars() {
            let d = dists.get(&v).ok_or(ProbError::MissingDistribution(v))?;
            if d.is_empty() {
                return Err(ProbError::EmptyDistribution);
            }
            let support = Domain::new(d.iter().map(|(val, _)| val.clone()));
            table.set_domain(v, support)?;
        }
        Ok(PcTable { table, dists })
    }

    /// The underlying c-table (domains = distribution supports).
    pub fn table(&self) -> &CTable {
        &self.table
    }

    /// The per-variable distributions.
    pub fn dists(&self) -> &BTreeMap<Var, FiniteSpace<Value, W>> {
        &self.dists
    }

    /// Table arity.
    pub fn arity(&self) -> usize {
        self.table.arity()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The product space of valuations `V = Π_x dom(x)` (§8), as
    /// `(valuation, probability)` pairs. Probability products go through
    /// the checked [`Weight`] multiplication, so adversarial exact
    /// weights report [`ProbError::Overflow`] instead of panicking.
    pub fn valuation_space(&self) -> Result<Vec<(Valuation, W)>, ProbError> {
        let vars: Vec<Var> = self.table.vars().into_iter().collect();
        let mut acc: Vec<(Valuation, W)> = vec![(Valuation::new(), W::one())];
        for v in vars {
            let dist = &self.dists[&v];
            let mut next = Vec::with_capacity(acc.len() * dist.len());
            for (nu, w) in &acc {
                for (val, p) in dist.iter() {
                    let mut nu2 = nu.clone();
                    nu2.bind(v, val.clone());
                    next.push((nu2, w.checked_mul(p).ok_or(ProbError::Overflow)?));
                }
            }
            acc = next;
        }
        Ok(acc)
    }

    /// **Def. 13 semantics**: `Mod(T)` = image of the valuation space
    /// under `g(ν) = ν(T)`.
    pub fn mod_space(&self) -> Result<PDatabase<W>, ProbError> {
        let mut outcomes = Vec::new();
        for (nu, w) in self.valuation_space()? {
            outcomes.push((self.table.apply_valuation(&nu)?, w));
        }
        Ok(PDatabase::from_space(
            self.arity(),
            FiniteSpace::new_unnormalized(outcomes)?,
        ))
    }

    /// The union of several pc-tables' variable distributions — the
    /// shared-namespace contract of catalog execution: a variable
    /// appearing in more than one relation is *one* random variable, so
    /// its distributions must coincide exactly
    /// ([`ProbError::ConflictingDistribution`] otherwise).
    pub fn merged_dists<'a>(
        tables: impl IntoIterator<Item = &'a PcTable<W>>,
    ) -> Result<BTreeMap<Var, FiniteSpace<Value, W>>, ProbError>
    where
        W: 'a,
    {
        let mut out: BTreeMap<Var, FiniteSpace<Value, W>> = BTreeMap::new();
        for t in tables {
            for (v, d) in &t.dists {
                match out.get(v) {
                    None => {
                        out.insert(*v, d.clone());
                    }
                    Some(existing) if existing == d => {}
                    Some(_) => return Err(ProbError::ConflictingDistribution(*v)),
                }
            }
        }
        Ok(out)
    }

    /// The distributions restricted to `keep ∩ dom(dists)` — the
    /// marginalization step of the Theorem 9 closure. A variable absent
    /// from the answered table is independent of every surviving
    /// condition, so dropping its distribution integrates it out
    /// exactly; a variable a selection pruned away *with its row* is
    /// dropped for the same reason (pinned by the `marginalization_*`
    /// regression tests). Walks the smaller of the two sets and clones
    /// only the kept distributions.
    pub fn dists_restricted(&self, keep: &BTreeSet<Var>) -> VarDists<W> {
        if keep.len() <= self.dists.len() {
            keep.iter()
                .filter_map(|v| self.dists.get(v).map(|d| (*v, d.clone())))
                .collect()
        } else {
            self.dists
                .iter()
                .filter(|(v, _)| keep.contains(v))
                .map(|(v, d)| (*v, d.clone()))
                .collect()
        }
    }

    /// [`PcTable::merged_dists`] restricted to `keep`: the conflict
    /// check still covers **every** variable shared between tables (two
    /// relations disagreeing on a marginalized-out variable is still an
    /// inconsistent catalog), but distributions are compared by
    /// reference and only the kept ones are cloned.
    pub fn merged_dists_restricted<'a>(
        tables: impl IntoIterator<Item = &'a PcTable<W>>,
        keep: &BTreeSet<Var>,
    ) -> Result<VarDists<W>, ProbError>
    where
        W: 'a,
    {
        let mut seen: BTreeMap<Var, &'a FiniteSpace<Value, W>> = BTreeMap::new();
        for t in tables {
            for (v, d) in &t.dists {
                match seen.get(v) {
                    None => {
                        seen.insert(*v, d);
                    }
                    Some(existing) if *existing == d => {}
                    Some(_) => return Err(ProbError::ConflictingDistribution(*v)),
                }
            }
        }
        Ok(seen
            .into_iter()
            .filter(|(v, _)| keep.contains(v))
            .map(|(v, d)| (v, d.clone()))
            .collect())
    }

    /// **Theorem 9** (closure): `q̄(T)` with the variable distributions
    /// carried along (restricted to the surviving variables — dropping an
    /// independent variable marginalizes it, which is exactly the image-
    /// space semantics).
    pub fn eval_query(&self, q: &Query) -> Result<PcTable<W>, ProbError> {
        let qt = self.table.eval_query(q)?;
        let dists = self.dists_restricted(&qt.vars());
        PcTable::new(qt, dists)
    }

    /// `P[t ∈ q-answer]` by full world enumeration (the baseline engine;
    /// see `crate::answering` for the smarter ones).
    pub fn tuple_prob_enum(&self, t: &Tuple) -> Result<W, ProbError> {
        Ok(self.mod_space()?.tuple_prob(t))
    }

    /// Shared BDD compilation state: a fresh manager, the one-hot
    /// [`FdEncoding`], and the Boolean branch-weight vector derived from
    /// the distributions.
    ///
    /// Only the variables the table actually mentions are encoded:
    /// presence conditions cannot reference anything else, and a
    /// marginalized-out independent variable contributes a probability
    /// factor of exactly 1 — so the per-tuple WMC cost scales with the
    /// (answered) table, not with how many variables the input carried.
    fn bdd_ctx(&self) -> Result<BddCtx<W>, ProbError> {
        let mut mgr = BddManager::new();
        let tvars = self.table.vars();
        let enc = FdEncoding::new(
            &mut mgr,
            self.dists
                .iter()
                .filter(|(v, _)| tvars.contains(v))
                .map(|(v, d)| (*v, d.iter().map(|(val, _)| val.clone()).collect())),
        )?;
        let bweights = enc.weights_from(
            self.dists
                .iter()
                .filter(|(v, _)| tvars.contains(v))
                .flat_map(|(v, d)| d.iter().map(|(val, w)| (*v, val.clone(), w.clone()))),
        )?;
        Ok((mgr, enc, bweights))
    }

    /// `P[t ∈ I]` via BDD + weighted model counting: compile `t`'s
    /// presence condition under the finite-domain encoding and count it —
    /// no walk over the §8 valuation product space. Exponential only in
    /// the worst-case BDD size, not unconditionally in the number of
    /// variables like [`PcTable::tuple_prob_enum`].
    pub fn tuple_prob_bdd(&self, t: &Tuple) -> Result<W, ProbError> {
        let (mut mgr, enc, bw) = self.bdd_ctx()?;
        let cond = presence_condition(&self.table, t);
        let f = enc.compile(&mut mgr, &cond)?;
        Ok(enc.wmc_with(&mut mgr, f, &bw)?)
    }

    /// The per-tuple marginal distribution of the table itself — every
    /// possible tuple with its probability, computed by BDD + WMC with
    /// **one manager shared across all answer tuples** (hash-consing and
    /// the apply cache make later tuples' compilations reuse earlier
    /// ones).
    pub fn marginals_bdd(&self) -> Result<Vec<(Tuple, W)>, ProbError> {
        self.marginals_bdd_traced().map(|(out, _)| out)
    }

    /// [`PcTable::marginals_bdd`] with the shared manager's lifetime
    /// counters ([`BddStats`]) returned alongside the distribution —
    /// how the engine's `answer_dist_analyzed` reports unique-table and
    /// apply-cache behavior. The distribution is computed identically
    /// (same manager, same compilation order).
    pub fn marginals_bdd_traced(&self) -> Result<(Vec<(Tuple, W)>, BddStats), ProbError> {
        let (mut mgr, enc, bw) = self.bdd_ctx()?;
        let mut out = Vec::new();
        for t in crate::answering::candidate_tuples(self)? {
            let cond = presence_condition(&self.table, &t);
            let f = enc.compile(&mut mgr, &cond)?;
            let p = enc.wmc_with(&mut mgr, f, &bw)?;
            if !p.is_zero() {
                out.push((t, p));
            }
        }
        Ok((out, mgr.stats()))
    }

    /// The full answer distribution of `q` — every possible answer tuple
    /// with its exact probability — via the Thm 9 closure followed by
    /// BDD + WMC on the answered table ([`PcTable::marginals_bdd`]).
    ///
    /// This is the fast path for the §8 question; it agrees exactly with
    /// valuation enumeration ([`PcTable::answer_dist_enum`], property-
    /// tested in `ipdb-engine`'s `prob_oracle` suite) while touching the
    /// valuation space only through the conditions' BDDs.
    ///
    /// ```
    /// use ipdb_logic::{Condition, VarGen};
    /// use ipdb_prob::{rat, FiniteSpace, PcTable, Rat};
    /// use ipdb_rel::{tuple, Query, Value};
    /// use ipdb_tables::{t_const, t_var, CTable};
    ///
    /// // The paper's §1/§8 running example: Alice takes course x with
    /// // x ~ {math: .3, phys: .3, chem: .4}; Bob takes x if x ∈ {phys,
    /// // chem}; Theo takes math iff t = 1, with P[t = 1] = .85.
    /// let mut g = VarGen::new();
    /// let (x, t) = (g.fresh(), g.fresh());
    /// let table = CTable::builder(2)
    ///     .row([t_const("Alice"), t_var(x)], Condition::True)
    ///     .row(
    ///         [t_const("Bob"), t_var(x)],
    ///         Condition::or([Condition::eq_vc(x, "phys"), Condition::eq_vc(x, "chem")]),
    ///     )
    ///     .row([t_const("Theo"), t_const("math")], Condition::eq_vc(t, 1))
    ///     .build()
    ///     .unwrap();
    /// let pc = PcTable::new(table, [
    ///     (x, FiniteSpace::new([
    ///         (Value::from("math"), rat!(3, 10)),
    ///         (Value::from("phys"), rat!(3, 10)),
    ///         (Value::from("chem"), rat!(4, 10)),
    ///     ]).unwrap()),
    ///     (t, FiniteSpace::new([
    ///         (Value::from(0), rat!(15, 100)),
    ///         (Value::from(1), rat!(85, 100)),
    ///     ]).unwrap()),
    /// ]).unwrap();
    ///
    /// // §8 asks for the probabilities of tuples in query answers; the
    /// // BDD path computes them by weighted model counting.
    /// let dist = pc.answer_dist_bdd(&Query::Input).unwrap();
    /// assert!(dist.contains(&(tuple!["Theo", "math"], rat!(85, 100))));
    /// assert!(dist.contains(&(tuple!["Bob", "chem"], rat!(4, 10))));
    /// // And it matches the Def. 13 enumeration semantics exactly.
    /// assert_eq!(dist, pc.answer_dist_enum(&Query::Input).unwrap());
    /// ```
    pub fn answer_dist_bdd(&self, q: &Query) -> Result<Vec<(Tuple, W)>, ProbError> {
        self.eval_query(q)?.marginals_bdd()
    }

    /// The same answer distribution by full valuation enumeration
    /// (`Mod` of the answered table) — the §8 baseline, kept as the
    /// differential oracle for [`PcTable::answer_dist_bdd`].
    pub fn answer_dist_enum(&self, q: &Query) -> Result<Vec<(Tuple, W)>, ProbError> {
        Ok(self.eval_query(q)?.mod_space()?.marginals())
    }
}

impl<W: fmt::Debug> fmt::Display for PcTable<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc-{}", self.table)?;
        for (v, d) in &self.dists {
            write!(f, "  {v} ~ {{")?;
            for (i, (val, p)) in d.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{val}: {p:?}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// A boolean pc-table (§8): ground tuples, boolean conditions, Bernoulli
/// variables. The *complete* probabilistic representation system of
/// Theorem 8, and the natural home of BDD-based query answering.
#[derive(Debug, Clone, PartialEq)]
pub struct BooleanPcTable<W> {
    inner: PcTable<W>,
}

impl<W: Weight> BooleanPcTable<W> {
    /// Builds from a boolean c-table plus `P[x = true]` per variable.
    pub fn new(
        table: BooleanCTable,
        probs: impl IntoIterator<Item = (Var, W)>,
    ) -> Result<Self, ProbError> {
        let dists = probs
            .into_iter()
            .map(|(v, p)| {
                FiniteSpace::bernoulli(Value::Bool(true), Value::Bool(false), p).map(|d| (v, d))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let inner = PcTable::new(table.into_ctable(), dists)?;
        Ok(BooleanPcTable { inner })
    }

    /// Validates a general pc-table as boolean.
    pub fn from_pctable(pc: PcTable<W>) -> Result<Self, ProbError> {
        // Re-validate through BooleanCTable.
        let _check = BooleanCTable::from_ctable(pc.table.clone())?;
        Ok(BooleanPcTable { inner: pc })
    }

    /// The underlying pc-table.
    pub fn as_pctable(&self) -> &PcTable<W> {
        &self.inner
    }

    /// Consumes the wrapper.
    pub fn into_pctable(self) -> PcTable<W> {
        self.inner
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.inner.arity()
    }

    /// `P[x = true]` per variable, in ascending variable order — the
    /// weight vector for BDD model counting.
    pub fn true_probs(&self) -> Vec<(Var, W)> {
        self.inner
            .dists
            .iter()
            .map(|(v, d)| (*v, d.prob(&Value::Bool(true))))
            .collect()
    }

    /// Row conditions (all boolean).
    pub fn conditions(&self) -> impl Iterator<Item = &Condition> {
        self.inner.table.rows().iter().map(|r| &r.cond)
    }

    /// Def. 13 semantics, inherited.
    pub fn mod_space(&self) -> Result<PDatabase<W>, ProbError> {
        self.inner.mod_space()
    }

    /// Thm 9 closure, inherited. The result of `q̄` on a boolean pc-table
    /// is still a pc-table but not necessarily *boolean* (selections can
    /// introduce constant comparisons), so this returns the general form.
    pub fn eval_query(&self, q: &Query) -> Result<PcTable<W>, ProbError> {
        self.inner.eval_query(q)
    }
}

impl<W: fmt::Debug> fmt::Display for BooleanPcTable<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "boolean {}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;
    use crate::rat::Rat;
    use ipdb_logic::VarGen;
    use ipdb_rel::{instance, tuple, Pred};
    use ipdb_tables::{t_const, t_var};

    /// The running example from §1: Alice's course x ~ {math: .3,
    /// phys: .3, chem: .4}; Bob takes x if x ∈ {phys, chem}; Theo takes
    /// math iff t = 1 with P[t=1] = .85.
    fn running_example() -> PcTable<Rat> {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = g.fresh();
        let table = CTable::builder(2)
            .row([t_const("Alice"), t_var(x)], Condition::True)
            .row(
                [t_const("Bob"), t_var(x)],
                Condition::or([Condition::eq_vc(x, "phys"), Condition::eq_vc(x, "chem")]),
            )
            .row([t_const("Theo"), t_const("math")], Condition::eq_vc(t, 1))
            .build()
            .unwrap();
        let x_dist = FiniteSpace::new([
            (Value::from("math"), rat!(3, 10)),
            (Value::from("phys"), rat!(3, 10)),
            (Value::from("chem"), rat!(4, 10)),
        ])
        .unwrap();
        let t_dist = FiniteSpace::new([
            (Value::from(0), rat!(15, 100)),
            (Value::from(1), rat!(85, 100)),
        ])
        .unwrap();
        PcTable::new(table, [(x, x_dist), (t, t_dist)]).unwrap()
    }

    #[test]
    fn missing_distribution_rejected() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        assert_eq!(
            PcTable::<Rat>::new(t, []).unwrap_err(),
            ProbError::MissingDistribution(x)
        );
    }

    #[test]
    fn running_example_worlds() {
        let pc = running_example();
        let m = pc.mod_space().unwrap();
        // x=math (0.3) ∧ t=1 (0.85): {Alice-math, Theo-math} : 0.255
        assert_eq!(
            m.world_prob(&instance![["Alice", "math"], ["Theo", "math"]]),
            rat!(255, 1000)
        );
        // x=phys (0.3) ∧ t=0 (0.15): {Alice-phys, Bob-phys} : 0.045
        assert_eq!(
            m.world_prob(&instance![["Alice", "phys"], ["Bob", "phys"]]),
            rat!(45, 1000)
        );
        assert_eq!(m.space().total_mass(), Rat::ONE);
    }

    #[test]
    fn running_example_marginals() {
        let pc = running_example();
        let m = pc.mod_space().unwrap();
        // P[Bob takes some course] = P[x ∈ {phys, chem}] = 0.7
        assert_eq!(
            m.space()
                .prob_of(|w| w.iter().any(|t| t[0] == Value::from("Bob"))),
            rat!(7, 10)
        );
        assert_eq!(m.tuple_prob(&tuple!["Theo", "math"]), rat!(85, 100));
        assert_eq!(m.tuple_prob(&tuple!["Alice", "chem"]), rat!(4, 10));
    }

    #[test]
    fn restricted_dists_marginalize_without_losing_conflicts() {
        let pc = running_example();
        let all: BTreeSet<Var> = pc.dists().keys().copied().collect();
        // keep = ∅ clones nothing; keep = dom(dists) clones everything.
        assert!(pc.dists_restricted(&BTreeSet::new()).is_empty());
        assert_eq!(pc.dists_restricted(&all).len(), pc.dists().len());
        // A keep-set larger than dom(dists) flips the walk direction and
        // silently ignores the unknown variables.
        let mut g = VarGen::new();
        let x = g.fresh();
        let mut big = all.clone();
        for _ in 0..8 {
            big.insert(g.fresh());
        }
        let from_small = pc.dists_restricted(&all);
        let from_big = pc.dists_restricted(&big);
        assert_eq!(from_small, from_big);

        // merged_dists_restricted: the conflict check covers variables
        // the keep-set drops — two relations disagreeing on a
        // marginalized-out variable is still an inconsistent catalog.
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let d1 =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let d2 =
            FiniteSpace::new([(Value::from(1), rat!(1, 4)), (Value::from(2), rat!(3, 4))]).unwrap();
        let a = PcTable::new(t.clone(), [(x, d1.clone())]).unwrap();
        let b = PcTable::new(t.clone(), [(x, d2)]).unwrap();
        assert_eq!(
            PcTable::merged_dists_restricted([&a, &b], &BTreeSet::new()).unwrap_err(),
            ProbError::ConflictingDistribution(x)
        );
        // Agreeing duplicates merge; restriction keeps only `keep`.
        let c = PcTable::new(t, [(x, d1.clone())]).unwrap();
        let keep: BTreeSet<Var> = [x].into_iter().collect();
        assert_eq!(
            PcTable::merged_dists_restricted([&a, &c], &keep).unwrap(),
            vec![(x, d1)]
        );
        assert!(PcTable::merged_dists_restricted([&a, &c], &BTreeSet::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn theorem9_closure_on_running_example() {
        let pc = running_example();
        // q: who takes the same course as Alice (and isn't Alice)?
        // π₁(σ_{2=4, 1≠'Alice'}(V × σ_{1='Alice'}(V)))
        let q = Query::project(
            Query::select(
                Query::product(
                    Query::Input,
                    Query::select(Query::Input, Pred::eq_const(0, "Alice")),
                ),
                Pred::and([Pred::eq_cols(1, 3), Pred::neq_const(0, "Alice")]),
            ),
            vec![0],
        );
        let lhs = pc.mod_space().unwrap().map_query(&q).unwrap();
        let rhs = pc.eval_query(&q).unwrap().mod_space().unwrap();
        assert!(lhs.same_distribution(&rhs));
        // And the answer is meaningful: Bob matches with prob 0.7.
        assert_eq!(rhs.tuple_prob(&tuple!["Bob"]), rat!(7, 10));
    }

    #[test]
    fn eval_query_drops_vanished_vars() {
        let pc = running_example();
        let q = Query::select(Query::Input, Pred::eq_const(0, "Theo"));
        let out = pc.eval_query(&q).unwrap();
        // Only t survives (Alice/Bob rows keep x though — their
        // conditions still mention it via selection on terms).
        assert!(out.dists().len() <= 2);
        let m = out.mod_space().unwrap();
        assert_eq!(m.tuple_prob(&tuple!["Theo", "math"]), rat!(85, 100));
    }

    #[test]
    fn boolean_pctable_validation_and_probs() {
        let (a, b) = (Var(0), Var(1));
        let mut bt = BooleanCTable::new(1);
        bt.push(tuple![1], Condition::bvar(a)).unwrap();
        bt.push(
            tuple![2],
            Condition::and([Condition::bvar(a), Condition::nbvar(b)]),
        )
        .unwrap();
        let bpc = BooleanPcTable::new(bt, [(a, rat!(1, 2)), (b, rat!(1, 4))]).unwrap();
        let probs = bpc.true_probs();
        assert_eq!(probs, vec![(a, rat!(1, 2)), (b, rat!(1, 4))]);
        let m = bpc.mod_space().unwrap();
        // {1,2}: a ∧ ¬b = 1/2 · 3/4 = 3/8
        assert_eq!(m.world_prob(&instance![[1], [2]]), rat!(3, 8));
        // {1}: a ∧ b = 1/8
        assert_eq!(m.world_prob(&instance![[1]]), rat!(1, 8));
        // {}: ¬a = 1/2
        assert_eq!(m.world_prob(&Instance::empty(1)), rat!(1, 2));
    }

    use ipdb_rel::Instance;

    #[test]
    fn from_pctable_rejects_non_boolean() {
        let pc = running_example();
        assert!(BooleanPcTable::from_pctable(pc).is_err());
    }

    #[test]
    fn bdd_path_ignores_distributions_of_unmentioned_vars() {
        // A distribution may cover variables the table never mentions
        // (e.g. after external marginalization); the BDD path must not
        // encode them — they contribute a factor of exactly 1.
        let mut g = VarGen::new();
        let (x, spare) = (g.fresh(), g.fresh());
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::neq_vc(x, 0))
            .build()
            .unwrap();
        let uniform =
            |n: i64| FiniteSpace::new((0..n).map(|i| (Value::from(i), rat!(1, n)))).unwrap();
        let pc = PcTable::new(t, [(x, uniform(3)), (spare, uniform(4))]).unwrap();
        assert_eq!(pc.tuple_prob_bdd(&tuple![1]).unwrap(), rat!(1, 3));
        let m = pc.marginals_bdd().unwrap();
        assert_eq!(m, vec![(tuple![1], rat!(1, 3)), (tuple![2], rat!(1, 3))]);
        // And it still matches the enumeration oracle.
        assert_eq!(m, pc.answer_dist_enum(&Query::Input).unwrap());
    }

    use ipdb_rel::Query;

    #[test]
    fn adversarial_weights_overflow_gracefully_not_panic() {
        // Regression: three variables with ~1e18 denominators make every
        // answering engine's arithmetic leave i128 (products reach 1e54).
        // Each entry point must report ProbError::Overflow, not panic.
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        const D: i128 = 1_000_000_000_000_000_003;
        let dist = || {
            FiniteSpace::new([
                (Value::from(0), Rat::new(1, D)),
                (Value::from(1), Rat::new(D - 1, D)),
            ])
            .unwrap()
        };
        let t = CTable::builder(1)
            .row(
                [t_const(7)],
                Condition::and([
                    Condition::eq_vc(x, 0),
                    Condition::eq_vc(y, 0),
                    Condition::eq_vc(z, 0),
                ]),
            )
            .build()
            .unwrap();
        let pc = PcTable::new(t, [(x, dist()), (y, dist()), (z, dist())]).unwrap();
        // BDD + WMC fast path.
        assert_eq!(pc.tuple_prob_bdd(&tuple![7]), Err(ProbError::Overflow));
        assert_eq!(pc.marginals_bdd(), Err(ProbError::Overflow));
        assert_eq!(pc.answer_dist_bdd(&Query::Input), Err(ProbError::Overflow));
        // Shannon expansion.
        assert_eq!(
            crate::answering::tuple_prob_shannon(&pc, &tuple![7]),
            Err(ProbError::Overflow)
        );
        // Valuation enumeration (§8 product space).
        assert_eq!(pc.valuation_space(), Err(ProbError::Overflow));
        assert!(matches!(pc.mod_space(), Err(ProbError::Overflow)));
        assert_eq!(pc.answer_dist_enum(&Query::Input), Err(ProbError::Overflow));
        assert_eq!(pc.tuple_prob_enum(&tuple![7]), Err(ProbError::Overflow));
    }

    #[test]
    fn valuation_space_mass_is_one() {
        let pc = running_example();
        let total = pc
            .valuation_space()
            .unwrap()
            .into_iter()
            .fold(Rat::ZERO, |acc, (_, w)| acc + w);
        assert_eq!(total, Rat::ONE);
    }
}
