//! # `ipdb-obs` — engine-wide metrics, std-only
//!
//! The answering pipeline spans four hot subsystems (plan optimizer,
//! morsel-parallel columnar executor, c-/pc-table pruning executor, BDD
//! compile + WMC); this crate is the substrate they all report into:
//!
//! * a process-wide **counter registry** ([`counter`] / [`add`] /
//!   [`incr`]): named monotonic `AtomicU64`s, registered on first use
//!   and alive for the rest of the process;
//! * **monotonic timers** ([`Timer`]) and a lightweight **span/scope
//!   API** ([`span`]) that accumulates `<name>.ns` / `<name>.calls`
//!   pairs into the registry;
//! * **snapshots** ([`snapshot`] → [`MetricsSnapshot`]) with JSON and
//!   pretty-text export.
//!
//! ## The enabled flag, and what "zero cost when off" means
//!
//! The registry is always *callable*, but instrumented call sites are
//! expected to consult the global [`enabled`] flag (one relaxed atomic
//! load) — or an equivalent per-call knob such as the engine's
//! `ExecConfig::metrics` — before touching it, and to do so **per stage
//! or per morsel, never per row**. The flag initializes from the
//! `IPDB_METRICS` environment variable (`1`/`true`/`on`, case-
//! insensitive) and can be flipped at runtime with [`set_enabled`];
//! `bench_smoke`'s off-vs-on overhead series holds the metrics-off cost
//! of the instrumented 100k-row probe join within 5%.
//!
//! [`span`] checks the flag itself (a disabled span skips even the
//! clock read), so it is safe to leave in cold paths unconditionally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// The global enabled flag.
// ---------------------------------------------------------------------

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("IPDB_METRICS")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "true" || v == "on"
            })
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether metrics collection is globally enabled — one relaxed atomic
/// load, the check instrumented call sites make before recording.
/// Initialized from `IPDB_METRICS` on first use.
pub fn enabled() -> bool {
    // ORDERING: Relaxed — a standalone on/off flag; call sites only skip
    // or take the recording branch, no other data is published through it.
    flag().load(Ordering::Relaxed)
}

/// Flips the global metrics flag at runtime (overriding whatever
/// `IPDB_METRICS` said). Benchmarks use this to interleave off/on runs
/// in one process.
pub fn set_enabled(on: bool) {
    // ORDERING: Relaxed — same flag-only contract as `enabled`.
    flag().store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Counters and the registry.
// ---------------------------------------------------------------------

/// A monotonic event counter; shareable across threads (relaxed atomic
/// increments — counts are exact, cross-counter ordering is not).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — the atomic RMW keeps the tally exact under
        // concurrent bumps; cross-counter ordering is explicitly not part
        // of the contract (see the type docs).
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — a statistic read on its own; a read racing a
        // bump legitimately lands on either side of it.
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (used by [`reset`] for bench isolation).
    pub fn reset(&self) {
        // ORDERING: Relaxed — bench isolation only; callers quiesce their
        // own workload before resetting, nothing synchronizes through it.
        self.0.store(0, Ordering::Relaxed);
    }
}

type Registry = Mutex<BTreeMap<String, &'static Counter>>;

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The registered counter named `name`, creating (and leaking — one
/// allocation per distinct name, alive for the process) it on first
/// use. The lookup takes the registry mutex: call per stage, not per
/// row, and gate hot paths on [`enabled`] first.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry mutex");
    if let Some(c) = reg.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.insert(name.to_string(), c);
    c
}

/// `counter(name).add(n)` — registry convenience.
pub fn add(name: &str, n: u64) {
    counter(name).add(n);
}

/// `counter(name).incr()` — registry convenience.
pub fn incr(name: &str) {
    counter(name).incr();
}

/// Zeroes every registered counter (names stay registered). Benchmarks
/// call this between series so snapshots attribute counts to one run.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry mutex");
    for c in reg.values() {
        c.reset();
    }
}

/// A point-in-time copy of every registered counter.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry mutex");
    MetricsSnapshot {
        entries: reg.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
    }
}

// ---------------------------------------------------------------------
// Timers and spans.
// ---------------------------------------------------------------------

/// A monotonic wall-clock timer (`std::time::Instant` underneath).
#[derive(Debug, Clone, Copy)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Nanoseconds elapsed since [`Timer::start`], saturating at
    /// `u64::MAX` (≈ 584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A scope guard recording its lifetime into the registry: on drop,
/// adds the elapsed nanoseconds to `<name>.ns` and 1 to `<name>.calls`.
/// Created disarmed (no clock read, nothing recorded) when metrics are
/// globally [`enabled`]`() == false`.
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Option<Timer>,
}

/// Opens a [`Span`] named `name`; see the type docs for the contract.
pub fn span(name: impl Into<String>) -> Span {
    Span {
        name: name.into(),
        started: enabled().then(Timer::start),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = self.started {
            add(&format!("{}.ns", self.name), t.elapsed_ns());
            incr(&format!("{}.calls", self.name));
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------

/// An immutable name → value copy of the registry, name-ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// The value of one counter, if it was registered at snapshot time.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Number of counters captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot captured no counters at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// The snapshot as a flat JSON object (sorted keys, one per line).
    /// Counter names never need escaping beyond `"`/`\` — they are
    /// ASCII identifiers by convention — but both are escaped anyway.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!("  \"{escaped}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Aligned `name  value` lines, for humans.
    pub fn render(&self) -> String {
        let width = self.entries.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share one process-global registry and flag — and
    // `reset()` zeroes *every* counter — so each test uses its own
    // counter names, restores the flag, and holds this lock for its
    // whole body (the harness otherwise interleaves them across
    // threads, letting one test's global `reset()` eat another's
    // in-flight increments).
    static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_STATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_register_and_accumulate() {
        let _g = serialized();
        let c = counter("test.alpha");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        // Same name → same counter.
        add("test.alpha", 1);
        assert_eq!(counter("test.alpha").get(), 5);
        // Distinct names are independent.
        incr("test.beta");
        assert_eq!(counter("test.beta").get(), 1);
        assert_eq!(counter("test.alpha").get(), 5);
    }

    #[test]
    fn snapshot_captures_and_exports() {
        let _g = serialized();
        add("test.snap.x", 7);
        add("test.snap.y", 2);
        let snap = snapshot();
        assert!(!snap.is_empty());
        assert!(snap.len() >= 2);
        assert_eq!(snap.get("test.snap.x"), Some(7));
        assert_eq!(snap.get("test.snap.missing"), None);
        let json = snap.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"test.snap.x\": 7"));
        assert!(json.trim_end().ends_with('}'));
        let pretty = snap.render();
        assert!(pretty.contains("test.snap.y"));
        assert_eq!(pretty, snap.to_string());
        // Names come out sorted.
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let _g = serialized();
        add("test.esc.\"q\\uote\"", 1);
        let json = snapshot().to_json();
        assert!(json.contains("\"test.esc.\\\"q\\\\uote\\\"\": 1"));
    }

    #[test]
    fn spans_record_only_when_enabled() {
        let _g = serialized();
        let was = enabled();
        set_enabled(false);
        drop(span("test.span.off"));
        let snap = snapshot();
        assert_eq!(snap.get("test.span.off.calls"), None);

        set_enabled(true);
        assert!(enabled());
        {
            let _s = span("test.span.on");
            std::hint::black_box(0u64);
        }
        let snap = snapshot();
        assert_eq!(snap.get("test.span.on.calls"), Some(1));
        assert!(snap.get("test.span.on.ns").is_some());
        set_enabled(was);
    }

    #[test]
    fn timers_are_monotonic() {
        let t = Timer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = serialized();
        add("test.reset.me", 41);
        reset();
        assert_eq!(counter("test.reset.me").get(), 0);
        assert_eq!(snapshot().get("test.reset.me"), Some(0));
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let _g = serialized();
        let c = counter("test.contended");
        c.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
