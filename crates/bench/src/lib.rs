//! Shared workload generators for the benches and the experiments
//! harness.
//!
//! Everything is seeded (`StdRng::seed_from_u64`) so benchmark inputs
//! and experiment rows are reproducible run to run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use ipdb_engine::{Catalog, Schema};
use ipdb_logic::{Condition, Term, Var, VarGen};
use ipdb_prob::{BooleanPcTable, FiniteSpace, PTable, PcTable, Rat};
use ipdb_rel::{Domain, IDatabase, Instance, Tuple, Value};
use ipdb_tables::{BooleanCTable, CRow, CTable};

/// A random c-table: `rows` rows of the given arity over `nvars`
/// variables and constants `0..const_pool`, each row guarded by a random
/// small condition.
pub fn random_ctable(rows: usize, arity: usize, nvars: u32, const_pool: i64, seed: u64) -> CTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let tuple: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.5) && nvars > 0 {
                    Term::Var(Var(rng.gen_range(0..nvars)))
                } else {
                    Term::constant(rng.gen_range(0..const_pool))
                }
            })
            .collect();
        out.push(CRow::new(
            tuple,
            random_condition(&mut rng, nvars, const_pool, 2),
        ));
    }
    CTable::new(arity, out).expect("arity fixed")
}

/// A random finite-domain c-table: [`random_ctable`] plus the domain
/// `{0..domain_size}` on every variable.
pub fn random_finite_ctable(
    rows: usize,
    arity: usize,
    nvars: u32,
    domain_size: i64,
    seed: u64,
) -> CTable {
    let t = random_ctable(rows, arity, nvars, domain_size, seed);
    let domains = t
        .vars()
        .into_iter()
        .map(|v| (v, Domain::ints(0..domain_size)))
        .collect();
    CTable::with_domains(t.arity(), t.rows().to_vec(), domains).expect("valid domains")
}

fn random_condition(rng: &mut StdRng, nvars: u32, const_pool: i64, depth: u32) -> Condition {
    if depth == 0 || nvars == 0 || rng.gen_bool(0.4) {
        if nvars == 0 {
            return Condition::True;
        }
        let x = Var(rng.gen_range(0..nvars));
        let atom = if rng.gen_bool(0.5) {
            Condition::eq_vc(x, rng.gen_range(0..const_pool))
        } else {
            Condition::neq_vc(x, rng.gen_range(0..const_pool))
        };
        return atom;
    }
    let l = random_condition(rng, nvars, const_pool, depth - 1);
    let r = random_condition(rng, nvars, const_pool, depth - 1);
    if rng.gen_bool(0.5) {
        Condition::and([l, r])
    } else {
        Condition::or([l, r])
    }
}

/// A random boolean condition over `nvars` variables (for event
/// expressions).
pub fn random_boolean_condition(rng: &mut StdRng, nvars: u32, depth: u32) -> Condition {
    if depth == 0 || rng.gen_bool(0.35) {
        let x = Var(rng.gen_range(0..nvars.max(1)));
        return if rng.gen_bool(0.5) {
            Condition::bvar(x)
        } else {
            Condition::nbvar(x)
        };
    }
    let l = random_boolean_condition(rng, nvars, depth - 1);
    let r = random_boolean_condition(rng, nvars, depth - 1);
    if rng.gen_bool(0.5) {
        Condition::and([l, r])
    } else {
        Condition::or([l, r])
    }
}

/// A random boolean pc-table over `nvars` Bernoulli variables with
/// dyadic probabilities (exact in both `Rat` and `f64`).
pub fn random_boolean_pctable(
    rows: usize,
    arity: usize,
    nvars: u32,
    seed: u64,
) -> BooleanPcTable<Rat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = BooleanCTable::new(arity);
    for _ in 0..rows {
        let tuple: Tuple = (0..arity)
            .map(|_| Value::from(rng.gen_range(0..64i64)))
            .collect();
        let cond = random_boolean_condition(&mut rng, nvars, 3);
        t.push(tuple, cond).expect("boolean by construction");
    }
    let probs: Vec<(Var, Rat)> = t
        .vars()
        .into_iter()
        .map(|v| (v, Rat::new(rng.gen_range(1..=7), 8)))
        .collect();
    BooleanPcTable::new(t, probs).expect("valid probabilities")
}

/// The same boolean pc-table with `f64` weights (for the fast path).
pub fn random_boolean_pctable_f64(
    rows: usize,
    arity: usize,
    nvars: u32,
    seed: u64,
) -> BooleanPcTable<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = BooleanCTable::new(arity);
    for _ in 0..rows {
        let tuple: Tuple = (0..arity)
            .map(|_| Value::from(rng.gen_range(0..64i64)))
            .collect();
        let cond = random_boolean_condition(&mut rng, nvars, 3);
        t.push(tuple, cond).expect("boolean by construction");
    }
    let probs: Vec<(Var, f64)> = t
        .vars()
        .into_iter()
        .map(|v| (v, rng.gen_range(1..=7) as f64 / 8.0))
        .collect();
    BooleanPcTable::new(t, probs).expect("valid probabilities")
}

/// A random pc-table over `nvars` finite-domain variables with uniform
/// distributions.
pub fn random_pctable(
    rows: usize,
    arity: usize,
    nvars: u32,
    domain_size: i64,
    seed: u64,
) -> PcTable<Rat> {
    let t = random_finite_ctable(rows, arity, nvars, domain_size, seed);
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = t
        .vars()
        .into_iter()
        .map(|v| {
            let d = FiniteSpace::new(
                (0..domain_size).map(|i| (Value::from(i), Rat::new(1, domain_size as i128))),
            )
            .expect("uniform");
            (v, d)
        })
        .collect();
    PcTable::new(t, dists).expect("all vars covered")
}

/// A random tuple-independent table with `n` distinct unary tuples and
/// dyadic probabilities.
pub fn random_ptable(n: usize, seed: u64) -> PTable<Rat> {
    let mut rng = StdRng::seed_from_u64(seed);
    PTable::from_rows(
        1,
        (0..n as i64).map(|i| (Tuple::new([i]), Rat::new(rng.gen_range(1..=7), 8))),
    )
    .expect("distinct tuples")
}

/// A random non-empty finite i-database: `worlds` instances of the given
/// arity with at most `max_tuples` tuples each.
pub fn random_idb(
    worlds: usize,
    arity: usize,
    max_tuples: usize,
    const_pool: i64,
    seed: u64,
) -> IDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = IDatabase::empty(arity);
    while db.len() < worlds {
        let ntup = rng.gen_range(0..=max_tuples);
        let mut inst = Instance::empty(arity);
        for _ in 0..ntup {
            let t: Tuple = (0..arity)
                .map(|_| Value::from(rng.gen_range(0..const_pool)))
                .collect();
            inst.insert(t).expect("arity fixed");
        }
        db.insert(inst).expect("arity fixed");
    }
    db
}

/// Fresh-variable generator disjoint from a table's variables.
pub fn gen_for(t: &CTable) -> VarGen {
    VarGen::avoiding(t.vars())
}

/// The engine benches' σ(×) self-join workload, shared by
/// `bench_engine` and the CI `bench_smoke` gate so the two always
/// measure the same query: `#0=1` prunes the left factor to ~1/8 of its
/// rows, `#2=2` the right factor likewise, and `#1=#3` spans the
/// product — the optimizer turns it into a hash join key.
pub const ENGINE_PRODUCT_HEAVY: &str = "pi[1](sigma[and(#0=1, #2=2, #1=#3)](V x V))";

/// The pushdown-only strategy for [`ENGINE_PRODUCT_HEAVY`], written out
/// by hand and meant to be prepared with the optimizer *off*: factors
/// pre-filtered (right-side conjunct re-based), the spanning equality
/// left as a selection above the product — what the optimizer produced
/// before it learned to build joins.
pub const ENGINE_PRODUCT_HEAVY_PUSHED: &str =
    "pi[1](sigma[#1=#3](sigma[#0=1](V) x sigma[#0=2](V)))";

/// The `bench_smoke` pc-table probability workload: a query whose answer
/// distribution both paths compute — enumeration walks the valuation
/// product space of the answered table, the BDD path counts models of
/// the per-tuple presence conditions.
pub const PROB_SMOKE_QUERY: &str = "sigma[#0!=0](V union {(7)})";

/// A pc-table for the probability smoke series: exactly `nvars` binary
/// variables, **every one appearing** (so valuation enumeration really
/// visits `2^nvars` outcomes), one row per variable whose condition
/// couples it with its ring neighbor, plus skewed dyadic marginals.
pub fn prob_smoke_pctable(nvars: u32, seed: u64) -> PcTable<Rat> {
    assert!(nvars >= 2, "need at least two variables to couple");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CTable::builder(1);
    for i in 0..nvars {
        let x = Var(i);
        let y = Var((i + 1) % nvars);
        let cond = if rng.gen_bool(0.5) {
            Condition::or([
                Condition::eq_vc(x, 1),
                Condition::and([Condition::eq_vc(y, 0), Condition::neq_vv(x, y)]),
            ])
        } else {
            Condition::and([
                Condition::neq_vc(x, 0),
                Condition::or([Condition::eq_vv(x, y), Condition::neq_vc(y, 1)]),
            ])
        };
        b = b.row([Term::constant(i as i64 % 3 + 1)], cond);
        b = b.row([Term::Var(x)], Condition::neq_vv(x, y));
    }
    let t = b.build().expect("arity fixed");
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = (0..nvars)
        .map(|i| {
            let p = Rat::new(rng.gen_range(1..=7), 8);
            let d = FiniteSpace::new([(Value::from(1), p), (Value::from(0), Rat::ONE - p)])
                .expect("dyadic mass");
            (Var(i), d)
        })
        .collect();
    let pc = PcTable::new(t, dists).expect("all vars covered");
    assert_eq!(
        pc.table().vars().len(),
        nvars as usize,
        "workload must use every variable"
    );
    pc
}

/// `rows` distinct tuples `(i mod 8, i div 8)` — 8 join-key groups, so
/// each pushed-down selection of [`ENGINE_PRODUCT_HEAVY`] keeps rows/8
/// tuples.
pub fn skewed_instance(rows: usize) -> Instance {
    Instance::from_tuples(
        2,
        (0..rows).map(|i| Tuple::new([Value::from((i % 8) as i64), Value::from((i / 8) as i64)])),
    )
    .expect("fixed arity")
}

/// The morsel-executor scaling workload: an asymmetric equijoin of a
/// small build relation `R` against a ≥100k-row probe relation `S`,
/// written as σ(×) so the optimizer extracts the hash join on `#1=#2`,
/// pushes `#1!=0` onto `R`, and leaves `#0!=#3` as a vectorized
/// residual. The probe scan dominates the runtime, which is exactly the
/// shape morsel fan-out parallelizes.
pub const ENGINE_PARALLEL_JOIN: &str = "sigma[and(#1=#2, #0!=#3, #1!=0)](R x S)";

/// The schema of the scaling workload: build side `R`, probe side `S`.
pub fn parallel_schema() -> Schema {
    Schema::new([("R", 2), ("S", 2)]).expect("distinct names")
}

/// The [`ENGINE_PARALLEL_JOIN`] build side: `rows` key pairs `(k, k)`.
pub fn parallel_build_side(rows: usize) -> Instance {
    Instance::from_tuples(
        2,
        (0..rows).map(|k| Tuple::new([Value::from(k as i64), Value::from(k as i64)])),
    )
    .expect("fixed arity")
}

/// The [`ENGINE_PARALLEL_JOIN`] probe side: `rows` tuples `(j, j mod 3)`.
/// Joining `R.#1 = S.#0` hashes every one of the `rows` probe keys but
/// only the `|R|` smallest hit, so the output (and its set-semantics
/// materialization) stays small while the parallelizable probe scan does
/// the work.
pub fn parallel_probe_side(rows: usize) -> Instance {
    Instance::from_tuples(
        2,
        (0..rows).map(|j| Tuple::new([Value::from(j as i64), Value::from(j as i64 % 3)])),
    )
    .expect("fixed arity")
}

/// The 3-relation chain-join catalog workload (`R(a,b) ⋈ S(b,c) ⋈
/// T(c,d)`) in its naive σ(×) spelling; prepared with the optimizer on,
/// it plans to two stacked hash joins over the named relations.
pub const ENGINE_CHAIN_NAIVE: &str = "sigma[and(#1=#2,#3=#4)]((R x S) x T)";

/// The schema of the chain-join workload: three binary relations.
pub fn chain_schema() -> Schema {
    Schema::new([("R", 2), ("S", 2), ("T", 2)]).expect("distinct names")
}

/// A seeded instance catalog for [`ENGINE_CHAIN_NAIVE`]: three `rows`-row
/// binary relations with keys drawn from `0..keys`, so each hash join
/// keeps roughly `rows²/keys` pairs while the naive product walks
/// `rows³` concatenations.
pub fn random_chain_catalog(rows: usize, keys: i64, seed: u64) -> Catalog<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    for name in ["R", "S", "T"] {
        let inst = Instance::from_tuples(
            2,
            (0..rows).map(|_| {
                Tuple::new([
                    Value::from(rng.gen_range(0..keys)),
                    Value::from(rng.gen_range(0..keys)),
                ])
            }),
        )
        .expect("fixed arity");
        cat.insert(name, inst);
    }
    cat
}

// ---------------------------------------------------------------------
// Serving-layer traffic workload: a small star of relations, a pool of
// distinct read templates with Zipf-skewed popularity, and a ~90/10
// read/write trace — the shape a plan cache and snapshot catalogs are
// built for.
// ---------------------------------------------------------------------

/// Number of relations in the serving-traffic workload (`Z0`..`Z7`).
pub const SERVE_RELS: usize = 8;

/// The serving-traffic schema: [`SERVE_RELS`] binary relations.
pub fn serve_schema() -> Schema {
    Schema::new((0..SERVE_RELS).map(|r| (format!("Z{r}"), 2))).expect("distinct names")
}

/// One serving relation: `rows` tuples `(i, (i + shift) mod rows)` — a
/// shifted permutation in the second column, so the chain joins of
/// [`serve_query_pool`] match exactly one row per probe and answers stay
/// `O(rows)` regardless of which relations a template picks.
pub fn serve_relation(rows: usize, shift: i64) -> Instance {
    let n = rows as i64;
    Instance::from_tuples(
        2,
        (0..n).map(|i| Tuple::new([Value::from(i), Value::from((i + shift).rem_euclid(n))])),
    )
    .expect("fixed arity")
}

/// The serving-traffic base catalog: `Z{r}` is [`serve_relation`] with
/// shift `r + 1`.
pub fn serve_catalog(rows: usize) -> Catalog<Instance> {
    (0..SERVE_RELS)
        .map(|r| (format!("Z{r}"), serve_relation(rows, r as i64 + 1)))
        .collect()
}

/// `n` distinct read templates over the serving schema, written the way
/// machines write queries: a 4-relation chain join in its verbose σ(×)
/// spelling, wrapped in redundant projection/selection layers whose
/// wide always-true guards (8 conjuncts each) the optimizer has to
/// fuse, push down, and prune on every prepare. The optimizer collapses
/// each template to a small 3-join plan, so execution is cheap while
/// preparation is the dominant per-request cost — exactly the workload
/// a plan cache amortizes. The guard constants embed the template index
/// `i`, so every template has a distinct canonical text: a cold cache
/// misses once per template, never by accident twice.
pub fn serve_query_pool(n: usize, seed: u64) -> Vec<String> {
    use std::fmt::Write as _;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let a = zipf_index(&mut rng, SERVE_RELS);
            let b = zipf_index(&mut rng, SERVE_RELS);
            let c = zipf_index(&mut rng, SERVE_RELS);
            let d = zipf_index(&mut rng, SERVE_RELS);
            // Always-true guards: relation values stay far below 9e6,
            // and `i` keeps the texts template-unique.
            let guard = |col: usize, base: i64| {
                let mut g = String::new();
                for k in 0..8 {
                    if k > 0 {
                        g.push_str(", ");
                    }
                    let _ = write!(g, "#{col}!={}", base + 10 * i as i64 + k);
                }
                g
            };
            let (g0, g1) = (guard(0, 9_000_001), guard(1, 9_100_001));
            format!(
                "pi[0](sigma[and({g0})](pi[0](sigma[and({g1})](pi[0,1](\
                 sigma[and(#1=#2, #3=#4, #5=#6)](((pi[0,1](sigma[and({g0})](Z{a})) x \
                 pi[0,1](sigma[and({g1})](Z{b}))) x Z{c}) x pi[0,1](Z{d})))))))"
            )
        })
        .collect()
}

/// One operation of the serving-traffic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// Execute read template `i` of the pool.
    Read(usize),
    /// Reinstall relation `Z{rel}` as [`serve_relation`] with this shift.
    Write {
        /// Relation index in `0..SERVE_RELS`.
        rel: usize,
        /// The new relation's link shift.
        shift: i64,
    },
}

/// A `len`-operation trace over a `pool`-template read set: ~90% reads
/// with Zipf-skewed template popularity (the workload a warm plan cache
/// serves out of its hottest entries), ~10% single-relation reinstalls.
pub fn serve_trace(pool: usize, len: usize, seed: u64) -> Vec<ServeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|k| {
            if rng.gen_bool(0.1) {
                ServeOp::Write {
                    rel: rng.gen_range(0..SERVE_RELS),
                    shift: k as i64 % 31 + 1,
                }
            } else {
                ServeOp::Read(zipf_index(&mut rng, pool))
            }
        })
        .collect()
}

/// A Zipf(s = 1.1) rank in `0..n` (rank 0 the most popular), sampled by
/// inverse CDF over the finite harmonic weights `1/(k+1)^1.1`.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    let weight = |k: usize| 1.0 / ((k + 1) as f64).powf(1.1);
    let total: f64 = (0..n).map(weight).sum();
    // A uniform in [0, 1) from 53 mantissa bits (the vendored rand has
    // no float sampling).
    let uniform = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let mut u = uniform * total;
    for k in 0..n {
        u -= weight(k);
        if u <= 0.0 {
            return k;
        }
    }
    n - 1
}

/// The catalog-leaf-reuse series workload: one ground `rows`-row binary
/// c-table. Ground rows keep the c-table evaluator's own work small, so
/// the series isolates what `Arc`-shared catalog leaves removed — the
/// per-query deep clone of every referenced relation.
pub fn leaf_reuse_ctable(rows: usize) -> CTable {
    let mut b = CTable::builder(2);
    for i in 0..rows as i64 {
        b = b.ground_row([i % 97, i % 13], Condition::True);
    }
    b.build().expect("arity fixed")
}

/// A seeded pc-table catalog for [`ENGINE_CHAIN_NAIVE`]: three binary
/// pc-relations over **one shared variable namespace** — relation `j`
/// uses variables `j·(k−1) ..= (j+1)·(k−1)`, so each consecutive pair
/// shares a boundary variable (`3k − 2` variables in total, all binary:
/// the enumeration path walks `2^(3k−2)` valuations). Ground join-key
/// columns keep the chain joins hash-executed; the conditions carry the
/// variables through to the answer.
pub fn chain_pc_catalog(vars_per_rel: u32, keys: i64, seed: u64) -> Catalog<PcTable<Rat>> {
    assert!(
        vars_per_rel >= 2,
        "need at least two variables per relation"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let total_vars = 3 * (vars_per_rel - 1) + 1;
    // One distribution per variable, fixed up front so relations sharing
    // a boundary variable agree exactly (the catalog contract).
    let dists: Vec<(Var, FiniteSpace<Value, Rat>)> = (0..total_vars)
        .map(|i| {
            let p = Rat::new(rng.gen_range(1..=7), 8);
            let d = FiniteSpace::new([(Value::from(1), p), (Value::from(0), Rat::ONE - p)])
                .expect("dyadic mass");
            (Var(i), d)
        })
        .collect();
    let mut cat = Catalog::new();
    for (j, name) in ["R", "S", "T"].into_iter().enumerate() {
        let lo = j as u32 * (vars_per_rel - 1);
        let vars: Vec<Var> = (lo..lo + vars_per_rel).map(Var).collect();
        let mut b = CTable::builder(2);
        for (i, w) in vars.windows(2).enumerate() {
            let (x, y) = (w[0], w[1]);
            let key = (i as i64 + j as i64) % keys;
            b = b.ground_row(
                [key, (key + 1) % keys],
                Condition::or([Condition::eq_vc(x, 1), Condition::eq_vv(x, y)]),
            );
            b = b.ground_row(
                [(key + 1) % keys, key],
                Condition::and([Condition::neq_vc(y, 0), Condition::neq_vv(x, y)]),
            );
        }
        let t = b.build().expect("arity fixed");
        let mine: Vec<_> = dists
            .iter()
            .filter(|(v, _)| vars.contains(v))
            .cloned()
            .collect();
        cat.insert(name, PcTable::new(t, mine).expect("all vars covered"));
    }
    cat
}
