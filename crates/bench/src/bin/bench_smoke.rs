//! Quick-mode engine perf smoke: times the three execution strategies
//! of `bench_engine` (naive σ(×), pushdown-only, hash join) plus the two
//! pc-table probability paths (valuation enumeration vs BDD + WMC) with
//! capped iteration counts and writes the ns/iter figures to
//! `BENCH_engine.json`. The tracked copy of that file at the repo root
//! is the perf-trajectory record — re-run this bin and commit the
//! refreshed numbers when the engine's execution paths change; CI runs
//! it per push as a gate (printing, not persisting, its figures).
//!
//! Run with `cargo run --release -p ipdb-bench --bin bench_smoke`.
//! Unlike the criterion benches this is fast enough (< a few seconds)
//! to run on every CI push, and it *asserts* the acceptance floors: the
//! join path must beat the naive nested-loop σ(×) by ≥ 10× on the
//! 256-row instance self-join and must beat it on the c-table case, and
//! the BDD probability path must beat valuation enumeration by ≥ 10× on
//! the 14-variable pc-table workload (where enumeration visits 2¹⁴
//! valuations).

use std::fmt::Write as _;
use std::time::Instant;

use ipdb_bench::{
    chain_pc_catalog, chain_schema, prob_smoke_pctable, random_chain_catalog, random_ctable,
    skewed_instance, ENGINE_CHAIN_NAIVE, ENGINE_PRODUCT_HEAVY as PRODUCT_HEAVY,
    ENGINE_PRODUCT_HEAVY_PUSHED as PRODUCT_HEAVY_PUSHED, PROB_SMOKE_QUERY,
};
use ipdb_engine::{Backend, Engine};

/// Median-of-runs wall-clock timer with quick-mode caps: 2 warmup runs,
/// then up to `max_iters` timed runs or ~250 ms, whichever first.
fn time_ns(mut f: impl FnMut()) -> f64 {
    const MAX_ITERS: usize = 30;
    const BUDGET_NS: u128 = 250_000_000;
    f();
    f();
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < MAX_ITERS && start.elapsed().as_nanos() < BUDGET_NS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let pushed_stmt = Engine { optimize: false }
        .prepare_text(PRODUCT_HEAVY_PUSHED, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let pushed = pushed_stmt.query();
    let join = stmt.query();

    let i = skewed_instance(256);
    assert_eq!(i.run(naive).unwrap(), i.run(join).unwrap());
    assert_eq!(i.run(pushed).unwrap(), i.run(join).unwrap());
    let inst_naive = time_ns(|| {
        i.run(naive).unwrap();
    });
    let inst_pushdown = time_ns(|| {
        i.run(pushed).unwrap();
    });
    let inst_join = time_ns(|| {
        i.run(join).unwrap();
    });

    let t = random_ctable(64, 2, 6, 4, 0xE9 + 64);
    let ct_naive = time_ns(|| {
        t.run(naive).unwrap();
    });
    let ct_join = time_ns(|| {
        t.run(join).unwrap();
    });

    // Pc-table probability series: the answer distribution of the smoke
    // query over a 14-variable pc-table (2¹⁴ valuations for the
    // enumeration path), by valuation enumeration vs the BDD + WMC fast
    // path. Exact equality of the two distributions is asserted before
    // timing.
    const PROB_NVARS: u32 = 14;
    let pc = prob_smoke_pctable(PROB_NVARS, 0xBDD);
    let pstmt = Engine::new()
        .prepare_text(PROB_SMOKE_QUERY, 1)
        .expect("well-typed");
    assert_eq!(
        pstmt.answer_dist(&pc).unwrap(),
        pstmt.answer_dist_enum(&pc).unwrap(),
        "BDD and enumeration paths must produce the same distribution"
    );
    let prob_enum = time_ns(|| {
        pstmt.answer_dist_enum(&pc).unwrap();
    });
    let prob_bdd = time_ns(|| {
        pstmt.answer_dist(&pc).unwrap();
    });

    // Named-relation catalog series: the 3-relation chain join
    // R ⋈ S ⋈ T, prepared once over the {R,S,T} schema. Instance
    // catalog: hash joins vs the naive σ((R×S)×T) walk of rows³
    // concatenations. Pc-table catalog (shared variable namespace):
    // BDD answer distribution vs §8 valuation enumeration. Equality is
    // asserted before timing, as for the single-relation series.
    const CHAIN_ROWS: usize = 64;
    let chain_stmt = Engine::new()
        .prepare_text_schema(ENGINE_CHAIN_NAIVE, &chain_schema())
        .expect("well-typed");
    assert!(
        chain_stmt.explain().matches("join[").count() == 2,
        "chain workload must plan to two stacked hash joins:\n{}",
        chain_stmt.explain()
    );
    let chain_cat = random_chain_catalog(CHAIN_ROWS, 16, 0xCA7);
    assert_eq!(
        chain_stmt.execute_catalog(&chain_cat).unwrap(),
        chain_stmt.execute_catalog_naive(&chain_cat).unwrap()
    );
    let chain_naive = time_ns(|| {
        chain_stmt.execute_catalog_naive(&chain_cat).unwrap();
    });
    let chain_join = time_ns(|| {
        chain_stmt.execute_catalog(&chain_cat).unwrap();
    });

    const CHAIN_VARS_PER_REL: u32 = 5;
    let chain_pc = chain_pc_catalog(CHAIN_VARS_PER_REL, 4, 0xBDD2);
    assert_eq!(
        chain_stmt.answer_dist_catalog(&chain_pc).unwrap(),
        chain_stmt.answer_dist_catalog_enum(&chain_pc).unwrap(),
        "catalog BDD and enumeration paths must produce the same distribution"
    );
    let chain_prob_enum = time_ns(|| {
        chain_stmt.answer_dist_catalog_enum(&chain_pc).unwrap();
    });
    let chain_prob_bdd = time_ns(|| {
        chain_stmt.answer_dist_catalog(&chain_pc).unwrap();
    });

    let speedup_inst = inst_naive / inst_join;
    let speedup_ct = ct_naive / ct_join;
    let speedup_prob = prob_enum / prob_bdd;
    let speedup_chain = chain_naive / chain_join;
    let speedup_chain_prob = chain_prob_enum / chain_prob_bdd;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"engine\",");
    let _ = writeln!(out, "  \"mode\": \"quick-smoke\",");
    let _ = writeln!(out, "  \"unit\": \"ns_per_iter\",");
    let _ = writeln!(out, "  \"workload\": \"{PRODUCT_HEAVY}\",");
    let _ = writeln!(out, "  \"instance_256\": {{");
    let _ = writeln!(out, "    \"naive\": {inst_naive:.0},");
    let _ = writeln!(out, "    \"pushdown\": {inst_pushdown:.0},");
    let _ = writeln!(out, "    \"join\": {inst_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_inst:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"ctable_64\": {{");
    let _ = writeln!(out, "    \"naive\": {ct_naive:.0},");
    let _ = writeln!(out, "    \"join\": {ct_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_ct:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"pctable_prob_{PROB_NVARS}var\": {{");
    let _ = writeln!(out, "    \"workload\": \"{PROB_SMOKE_QUERY}\",");
    let _ = writeln!(out, "    \"enum\": {prob_enum:.0},");
    let _ = writeln!(out, "    \"bdd\": {prob_bdd:.0},");
    let _ = writeln!(out, "    \"speedup_enum_over_bdd\": {speedup_prob:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"catalog_chain_instance_{CHAIN_ROWS}\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_CHAIN_NAIVE}\",");
    let _ = writeln!(out, "    \"naive\": {chain_naive:.0},");
    let _ = writeln!(out, "    \"join\": {chain_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_chain:.2}");
    let _ = writeln!(out, "  }},");
    let chain_nvars = 3 * (CHAIN_VARS_PER_REL - 1) + 1;
    let _ = writeln!(out, "  \"catalog_chain_pctable_{chain_nvars}var\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_CHAIN_NAIVE}\",");
    let _ = writeln!(out, "    \"enum\": {chain_prob_enum:.0},");
    let _ = writeln!(out, "    \"bdd\": {chain_prob_bdd:.0},");
    let _ = writeln!(
        out,
        "    \"speedup_enum_over_bdd\": {speedup_chain_prob:.2}"
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    std::fs::write("BENCH_engine.json", &out).expect("write BENCH_engine.json");
    print!("{out}");

    assert!(
        speedup_inst >= 10.0,
        "join path must be >= 10x the naive nested loop on the 256-row \
         instance self-join, measured {speedup_inst:.2}x"
    );
    assert!(
        speedup_ct > 1.0,
        "join path must improve the c-table case, measured {speedup_ct:.2}x"
    );
    assert!(
        speedup_prob >= 10.0,
        "BDD probability path must be >= 10x valuation enumeration on the \
         {PROB_NVARS}-variable pc-table workload, measured {speedup_prob:.2}x"
    );
    assert!(
        speedup_chain >= 10.0,
        "catalog hash joins must be >= 10x the naive product walk on the \
         {CHAIN_ROWS}-row 3-relation chain join, measured {speedup_chain:.2}x"
    );
    assert!(
        speedup_chain_prob >= 3.0,
        "catalog BDD path must be >= 3x valuation enumeration on the \
         {chain_nvars}-variable chain pc-catalog, measured {speedup_chain_prob:.2}x"
    );
    println!(
        "bench_smoke: ok (instance {speedup_inst:.1}x, c-table {speedup_ct:.1}x, \
         pc-table prob {speedup_prob:.1}x, chain {speedup_chain:.1}x, \
         chain prob {speedup_chain_prob:.1}x) -> BENCH_engine.json"
    );
}
