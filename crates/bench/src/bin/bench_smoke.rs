//! Quick-mode engine perf smoke: times the three execution strategies
//! of `bench_engine` (naive σ(×), pushdown-only, hash join) plus the two
//! pc-table probability paths (valuation enumeration vs BDD + WMC) with
//! capped iteration counts and writes the ns/iter figures to
//! `BENCH_engine.json`. The tracked copy of that file at the repo root
//! is the perf-trajectory record — re-run this bin and commit the
//! refreshed numbers when the engine's execution paths change; CI runs
//! it per push as a gate (printing, not persisting, its figures).
//!
//! Run with `cargo run --release -p ipdb-bench --bin bench_smoke`.
//! Unlike the criterion benches this is fast enough (< a few seconds)
//! to run on every CI push, and it *asserts* the acceptance floors: the
//! join path must beat the naive nested-loop σ(×) by ≥ 10× on the
//! 256-row instance self-join and must beat it on the c-table case, and
//! the BDD probability path must beat valuation enumeration by ≥ 10× on
//! the 14-variable pc-table workload (where enumeration visits 2¹⁴
//! valuations).
//!
//! Two observability gates ride along: the metrics layer (`ipdb-obs`)
//! is timed off-vs-on on the 100k-row probe join and must stay within
//! 5% when off, and an `EXPLAIN ANALYZE` run plus a metrics snapshot
//! (`BENCH_metrics.json`) are produced and sanity-checked.

use std::fmt::Write as _;
use std::time::Instant;

use ipdb_bench::{
    chain_pc_catalog, chain_schema, leaf_reuse_ctable, parallel_build_side, parallel_probe_side,
    parallel_schema, prob_smoke_pctable, random_chain_catalog, random_ctable, serve_catalog,
    serve_query_pool, serve_relation, serve_trace, skewed_instance, ServeOp, ENGINE_CHAIN_NAIVE,
    ENGINE_PARALLEL_JOIN, ENGINE_PRODUCT_HEAVY as PRODUCT_HEAVY,
    ENGINE_PRODUCT_HEAVY_PUSHED as PRODUCT_HEAVY_PUSHED, PROB_SMOKE_QUERY,
};
use ipdb_engine::{
    Backend, Catalog, Engine, ExecConfig, PlanCache, Request, Server, ServerConfig, SnapshotCatalog,
};
use ipdb_rel::Instance;

/// Median-of-runs wall-clock timer with quick-mode caps: 2 warmup runs,
/// then up to `max_iters` timed runs or ~250 ms, whichever first.
fn time_ns(mut f: impl FnMut()) -> f64 {
    const MAX_ITERS: usize = 30;
    const BUDGET_NS: u128 = 250_000_000;
    f();
    f();
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < MAX_ITERS && start.elapsed().as_nanos() < BUDGET_NS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let pushed_stmt = Engine { optimize: false }
        .prepare_text(PRODUCT_HEAVY_PUSHED, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let pushed = pushed_stmt.query();
    let join = stmt.query();

    // Plan-quality series: naive σ(×) vs pushdown vs hash join, all
    // three pinned to the row-at-a-time evaluator so the ratios keep
    // measuring the *plans* (the columnar/morsel executor behind
    // `Instance::run` has its own scaling series below, and it
    // compresses these gaps by vectorizing the naive walk too).
    let i = skewed_instance(256);
    assert_eq!(naive.eval(&i).unwrap(), join.eval(&i).unwrap());
    assert_eq!(pushed.eval(&i).unwrap(), join.eval(&i).unwrap());
    let inst_naive = time_ns(|| {
        naive.eval(&i).unwrap();
    });
    let inst_pushdown = time_ns(|| {
        pushed.eval(&i).unwrap();
    });
    let inst_join = time_ns(|| {
        join.eval(&i).unwrap();
    });

    let t = random_ctable(64, 2, 6, 4, 0xE9 + 64);
    let ct_naive = time_ns(|| {
        t.run(naive).unwrap();
    });
    let ct_join = time_ns(|| {
        t.run(join).unwrap();
    });

    // Pc-table probability series: the answer distribution of the smoke
    // query over a 14-variable pc-table (2¹⁴ valuations for the
    // enumeration path), by valuation enumeration vs the BDD + WMC fast
    // path. Exact equality of the two distributions is asserted before
    // timing.
    const PROB_NVARS: u32 = 14;
    let pc = prob_smoke_pctable(PROB_NVARS, 0xBDD);
    let pstmt = Engine::new()
        .prepare_text(PROB_SMOKE_QUERY, 1)
        .expect("well-typed");
    assert_eq!(
        pstmt.answer_dist(&pc).unwrap(),
        pstmt.answer_dist_enum(&pc).unwrap(),
        "BDD and enumeration paths must produce the same distribution"
    );
    let prob_enum = time_ns(|| {
        pstmt.answer_dist_enum(&pc).unwrap();
    });
    let prob_bdd = time_ns(|| {
        pstmt.answer_dist(&pc).unwrap();
    });

    // Named-relation catalog series: the 3-relation chain join
    // R ⋈ S ⋈ T, prepared once over the {R,S,T} schema. Instance
    // catalog: hash joins vs the naive σ((R×S)×T) walk of rows³
    // concatenations. Pc-table catalog (shared variable namespace):
    // BDD answer distribution vs §8 valuation enumeration. Equality is
    // asserted before timing, as for the single-relation series.
    const CHAIN_ROWS: usize = 64;
    let chain_stmt = Engine::new()
        .prepare_text_schema(ENGINE_CHAIN_NAIVE, &chain_schema())
        .expect("well-typed");
    assert!(
        chain_stmt.explain().matches("join[").count() == 2,
        "chain workload must plan to two stacked hash joins:\n{}",
        chain_stmt.explain()
    );
    let chain_cat = random_chain_catalog(CHAIN_ROWS, 16, 0xCA7);
    assert_eq!(
        chain_stmt.execute_catalog(&chain_cat).unwrap(),
        chain_stmt.execute_catalog_naive(&chain_cat).unwrap()
    );
    let chain_naive = time_ns(|| {
        chain_stmt.execute_catalog_naive(&chain_cat).unwrap();
    });
    let chain_join = time_ns(|| {
        chain_stmt.execute_catalog(&chain_cat).unwrap();
    });

    // Columnar / morsel-parallel series: an asymmetric hash join — a
    // small build relation R probed by a 100k-row scan of S — run three
    // ways: the row-at-a-time evaluator (`Query::eval_catalog`), the
    // columnar executor pinned to one thread, and the columnar executor
    // on every available core. All three must return the identical
    // relation (the executor's determinism contract) before anything is
    // timed.
    const PAR_BUILD: usize = 1024;
    const PAR_PROBE: usize = 100_000;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let par_stmt = Engine::new()
        .prepare_text_schema(ENGINE_PARALLEL_JOIN, &parallel_schema())
        .expect("well-typed");
    assert!(
        par_stmt.explain().contains("join["),
        "scaling workload must plan to a hash join:\n{}",
        par_stmt.explain()
    );
    let (r, s) = (
        parallel_build_side(PAR_BUILD),
        parallel_probe_side(PAR_PROBE),
    );
    let par_map: std::collections::BTreeMap<String, ipdb_rel::Instance> =
        [("R".to_string(), r.clone()), ("S".to_string(), s.clone())]
            .into_iter()
            .collect();
    let mut par_cat = Catalog::new();
    par_cat.insert("R", r);
    par_cat.insert("S", s);
    let serial_cfg = ExecConfig::serial();
    let fanout_cfg = ExecConfig::with_threads(cores);
    let row_result = par_stmt.query().eval_catalog(&par_map).unwrap();
    // Join keeps the |R| probe keys that hit; the residual and the
    // pushed-down selection drop exactly k ∈ {0, 1, 2}.
    assert_eq!(row_result.len(), PAR_BUILD - 3);
    assert_eq!(
        par_stmt
            .execute_catalog_with(&par_cat, &serial_cfg)
            .unwrap(),
        row_result
    );
    assert_eq!(
        par_stmt
            .execute_catalog_with(&par_cat, &fanout_cfg)
            .unwrap(),
        row_result
    );
    // This series asserts a *scaling* floor, so it times by interleaved
    // best-of-N: one iteration of each path per round, keeping the
    // minimum. The minimum approximates the uncontended cost of each
    // path, which is the right statistic on hosts with noisy neighbors
    // (a median would compare how often each path got preempted). Even
    // so, a burst of preemption can poison every sample of one path in
    // a single pass, so the measurement re-runs (up to three passes)
    // until the floors clear; the last pass is what gets reported and
    // asserted.
    let floors_ok = |columnar: f64, parallel: f64| {
        columnar >= 1.0
            && if cores >= 4 {
                parallel >= 2.0
            } else if cores >= 2 {
                parallel >= 0.95
            } else {
                true
            }
    };
    let (mut par_row, mut par_columnar, mut par_parallel) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let once = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as f64
    };
    for attempt in 1..=3 {
        let (mut row, mut columnar, mut parallel) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..16 {
            row = row.min(once(&mut || {
                par_stmt.query().eval_catalog(&par_map).unwrap();
            }));
            columnar = columnar.min(once(&mut || {
                par_stmt
                    .execute_catalog_with(&par_cat, &serial_cfg)
                    .unwrap();
            }));
            parallel = parallel.min(once(&mut || {
                par_stmt
                    .execute_catalog_with(&par_cat, &fanout_cfg)
                    .unwrap();
            }));
        }
        (par_row, par_columnar, par_parallel) = (row, columnar, parallel);
        if floors_ok(row / columnar, columnar / parallel) {
            break;
        }
        eprintln!(
            "bench_smoke: parallel series below floor on pass {attempt} \
             (columnar {:.2}x, parallel {:.2}x), re-measuring",
            row / columnar,
            columnar / parallel
        );
    }

    // Metrics-overhead series: the same 100k-row probe join with the
    // observability layer fully off vs fully on (global flag plus the
    // per-config knob), timed by the same interleaved best-of-16
    // minimum. The `ipdb-obs` contract is near-zero cost when off —
    // every instrumented call site gates on one relaxed atomic load or
    // a config bool — so the off path must stay within 5% of itself
    // re-measured under the on flag's counter traffic. Like the scaling
    // floors, a preemption burst can poison one side of a pass, so the
    // measurement re-runs up to three times before asserting.
    let cfg_off = ExecConfig {
        metrics: false,
        ..ExecConfig::with_threads(cores)
    };
    let cfg_on = ExecConfig {
        metrics: true,
        ..ExecConfig::with_threads(cores)
    };
    let (mut met_off, mut met_on) = (f64::INFINITY, f64::INFINITY);
    for attempt in 1..=3 {
        let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..16 {
            ipdb_obs::set_enabled(false);
            off = off.min(once(&mut || {
                par_stmt.execute_catalog_with(&par_cat, &cfg_off).unwrap();
            }));
            ipdb_obs::set_enabled(true);
            on = on.min(once(&mut || {
                par_stmt.execute_catalog_with(&par_cat, &cfg_on).unwrap();
            }));
            ipdb_obs::set_enabled(false);
        }
        (met_off, met_on) = (off, on);
        if on / off <= 1.05 {
            break;
        }
        eprintln!(
            "bench_smoke: metrics overhead above floor on pass {attempt} \
             ({:.3}x), re-measuring",
            on / off
        );
    }
    let metrics_overhead = met_on / met_off;

    // EXPLAIN ANALYZE must be a pure observer with a self-consistent
    // report: the identical relation, the exact root cardinality, and
    // per-operator exclusive times that sum back to the root's
    // inclusive time, all inside the measured wall-clock total.
    let (analyzed_out, par_report) = par_stmt
        .execute_catalog_analyzed_with(&par_cat, &cfg_off)
        .unwrap();
    assert_eq!(analyzed_out, row_result, "analyzed run must match plain");
    assert_eq!(par_report.root.rows_out, (PAR_BUILD - 3) as u64);
    assert_eq!(
        par_report.root.total_exclusive_ns(),
        par_report.root.ns,
        "per-operator exclusive times must sum to the root's inclusive time"
    );
    assert!(
        par_report.root.ns <= par_report.total_ns,
        "operator tree time must fit inside the measured total"
    );
    println!("{}", par_report.render());

    const CHAIN_VARS_PER_REL: u32 = 5;
    let chain_nvars = 3 * (CHAIN_VARS_PER_REL - 1) + 1;
    let chain_pc = chain_pc_catalog(CHAIN_VARS_PER_REL, 4, 0xBDD2);
    assert_eq!(
        chain_stmt.answer_dist_catalog(&chain_pc).unwrap(),
        chain_stmt.answer_dist_catalog_enum(&chain_pc).unwrap(),
        "catalog BDD and enumeration paths must produce the same distribution"
    );
    let chain_prob_enum = time_ns(|| {
        chain_stmt.answer_dist_catalog_enum(&chain_pc).unwrap();
    });
    let chain_prob_bdd = time_ns(|| {
        chain_stmt.answer_dist_catalog(&chain_pc).unwrap();
    });

    // The analyzed probabilistic path must match the plain one and its
    // report must carry live BDD manager counters: on the
    // {chain_nvars}-variable chain pc-catalog both hash-consing
    // (unique-table hits) and apply-cache memoization are mandatory for
    // the measured speedup, so zeros here mean the counters are wired
    // wrong, not that the workload is small.
    let (chain_dist, chain_report) = chain_stmt.answer_dist_catalog_analyzed(&chain_pc).unwrap();
    assert_eq!(
        chain_dist,
        chain_stmt.answer_dist_catalog(&chain_pc).unwrap(),
        "analyzed answer distribution must match plain"
    );
    let bdd = chain_report.bdd.expect("pc-table reports carry BDD stats");
    assert!(
        bdd.nodes_allocated > 0 && bdd.wmc_calls > 0,
        "BDD compilation and WMC must both run: {bdd:?}"
    );
    assert!(
        bdd.unique_hits > 0 && bdd.apply_cache_hits > 0,
        "the {chain_nvars}-variable chain must exercise hash-consing and \
         the apply cache: {bdd:?}"
    );

    // Serving-layer traffic series: a Zipf-skewed ~90/10 read/write
    // trace over 8 small relations, answered four ways. The
    // single-threaded pair isolates the plan cache — "cold" prepares
    // every read from scratch (serving without a cache), "warm" serves
    // the same trace from a primed `PlanCache` — and carries the
    // tentpole's floor: warm qps >= 2x cold. The server pair runs the
    // full queue + worker machinery at 1 vs all-cores workers; with
    // >= 2 cores the multi-threaded server must at least break even.
    const SERVE_ROWS: usize = 16;
    const SERVE_POOL: usize = 48;
    const SERVE_TRACE_LEN: usize = 384;
    let serve_sch = ipdb_bench::serve_schema();
    let pool = serve_query_pool(SERVE_POOL, 0x21F);
    let trace = serve_trace(SERVE_POOL, SERVE_TRACE_LEN, 0x7AFF);
    let serve_engine = Engine::new();
    // Requests execute the way the server runs them: serially per
    // request, parallelism coming from concurrent workers.
    let serve_exec = ExecConfig::serial();

    // Cached and fresh prepares must answer identically on every
    // template before anything is timed.
    {
        let cache = PlanCache::new(SERVE_POOL);
        let cat = serve_catalog(SERVE_ROWS);
        for text in &pool {
            let fresh = serve_engine.prepare_text_schema(text, &serve_sch).unwrap();
            let cached = cache.prepare_text(&serve_engine, text, &serve_sch).unwrap();
            assert_eq!(
                fresh.execute_catalog(&cat).unwrap(),
                cached.execute_catalog(&cat).unwrap(),
                "cached plan diverged on {text}"
            );
        }
    }

    let apply_write = |snaps: &SnapshotCatalog<Instance>, rel: usize, shift: i64| {
        snaps.update(|c| {
            c.insert(format!("Z{rel}"), serve_relation(SERVE_ROWS, shift));
        });
    };
    let run_cold = |snaps: &SnapshotCatalog<Instance>| {
        for op in &trace {
            match op {
                ServeOp::Read(i) => {
                    let snap = snaps.snapshot();
                    serve_engine
                        .prepare_text_schema(&pool[*i], snap.schema())
                        .unwrap()
                        .execute_catalog_cfg(snap.catalog(), &serve_exec)
                        .unwrap();
                }
                ServeOp::Write { rel, shift } => apply_write(snaps, *rel, *shift),
            }
        }
    };
    let warm_cache = PlanCache::new(SERVE_POOL * 2);
    let run_warm = |snaps: &SnapshotCatalog<Instance>| {
        for op in &trace {
            match op {
                ServeOp::Read(i) => {
                    let snap = snaps.snapshot();
                    warm_cache
                        .prepare_text(&serve_engine, &pool[*i], snap.schema())
                        .unwrap()
                        .execute_catalog_cfg(snap.catalog(), &serve_exec)
                        .unwrap();
                }
                ServeOp::Write { rel, shift } => apply_write(snaps, *rel, *shift),
            }
        }
    };
    // Prime the warm cache (one untimed pass fills every template).
    run_warm(&SnapshotCatalog::new(serve_catalog(SERVE_ROWS)));

    let server_1 =
        Server::<Instance>::start(serve_catalog(SERVE_ROWS), ServerConfig::with_threads(1));
    let server_n =
        Server::<Instance>::start(serve_catalog(SERVE_ROWS), ServerConfig::with_threads(cores));
    let run_server = |server: &Server<Instance>| {
        let mut tickets = Vec::with_capacity(trace.len());
        for op in &trace {
            let req = match op {
                ServeOp::Read(i) => Request::Query(pool[*i].clone()),
                ServeOp::Write { rel, shift } => Request::Install {
                    name: format!("Z{rel}"),
                    rel: serve_relation(SERVE_ROWS, *shift),
                },
            };
            tickets.push(server.submit(req));
        }
        for t in tickets {
            t.wait().expect("trace request failed");
        }
    };
    // Prime both servers' plan caches.
    run_server(&server_1);
    run_server(&server_n);

    let serve_floors_ok = |warm_speedup: f64, multi_speedup: f64| {
        warm_speedup >= 2.0 && (cores < 2 || multi_speedup >= 0.95)
    };
    let (mut serve_cold, mut serve_warm, mut serve_srv1, mut serve_srvn) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for attempt in 1..=3 {
        let (mut cold, mut warm, mut s1, mut sn) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..8 {
            cold = cold.min(once(&mut || {
                run_cold(&SnapshotCatalog::new(serve_catalog(SERVE_ROWS)));
            }));
            warm = warm.min(once(&mut || {
                run_warm(&SnapshotCatalog::new(serve_catalog(SERVE_ROWS)));
            }));
            s1 = s1.min(once(&mut || run_server(&server_1)));
            sn = sn.min(once(&mut || run_server(&server_n)));
        }
        (serve_cold, serve_warm, serve_srv1, serve_srvn) = (cold, warm, s1, sn);
        if serve_floors_ok(cold / warm, s1 / sn) {
            break;
        }
        eprintln!(
            "bench_smoke: serving series below floor on pass {attempt} \
             (warm {:.2}x, multi {:.2}x), re-measuring",
            cold / warm,
            s1 / sn
        );
    }
    let qps_of = |ns: f64| SERVE_TRACE_LEN as f64 / (ns * 1e-9);
    let (qps_cold, qps_warm, qps_srv1, qps_srvn) = (
        qps_of(serve_cold),
        qps_of(serve_warm),
        qps_of(serve_srv1),
        qps_of(serve_srvn),
    );
    let speedup_warm_cache = serve_cold / serve_warm;
    let speedup_server_multi = serve_srv1 / serve_srvn;
    server_1.shutdown();
    server_n.shutdown();

    // Catalog-leaf-reuse series: before Arc-shared catalog leaves, the
    // c-/pc-table `run_catalog` paths deep-cloned every referenced
    // relation per query. "before_emulated" re-adds exactly that clone
    // to today's execution; "after" is the shipping path, which borrows
    // the leaf out of the snapshot. The floor pins the bugfix: the
    // clone-free path must stay comfortably ahead.
    const LEAF_ROWS: usize = 8192;
    let leaf_sch = ipdb_engine::Schema::new([("C", 2)]).expect("one name");
    let leaf_stmt = Engine::new()
        .prepare_text_schema("pi[0](sigma[#0=3](C))", &leaf_sch)
        .expect("well-typed");
    let mut leaf_cat = Catalog::new();
    leaf_cat.insert("C", leaf_reuse_ctable(LEAF_ROWS));
    let (mut leaf_before, mut leaf_after) = (f64::INFINITY, f64::INFINITY);
    for attempt in 1..=3 {
        let (mut before, mut after) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..8 {
            before = before.min(once(&mut || {
                // The per-query deep clone the old leaf execution paid.
                std::hint::black_box(leaf_cat.get("C").unwrap().clone());
                leaf_stmt.execute_catalog(&leaf_cat).unwrap();
            }));
            after = after.min(once(&mut || {
                leaf_stmt.execute_catalog(&leaf_cat).unwrap();
            }));
        }
        (leaf_before, leaf_after) = (before, after);
        if before / after >= 1.15 {
            break;
        }
        eprintln!(
            "bench_smoke: leaf-reuse series below floor on pass {attempt} \
             ({:.2}x), re-measuring",
            before / after
        );
    }
    let speedup_leaf = leaf_before / leaf_after;

    // Metrics snapshot: one instrumented pass over the parallel join
    // plus a short serving burst with the global flag up, exported
    // alongside the timing figures.
    ipdb_obs::reset();
    ipdb_obs::set_enabled(true);
    par_stmt.execute_catalog_with(&par_cat, &cfg_on).unwrap();
    chain_stmt.answer_dist_catalog_analyzed(&chain_pc).unwrap();
    {
        let server =
            Server::<Instance>::start(serve_catalog(SERVE_ROWS), ServerConfig::with_threads(2));
        for text in pool.iter().take(4) {
            server.query(text).expect("burst query");
            server.query(text).expect("burst query");
        }
        server
            .install("Z0", serve_relation(SERVE_ROWS, 9))
            .expect("burst install");
        server.shutdown();
    }
    ipdb_obs::set_enabled(false);
    let snapshot = ipdb_obs::snapshot();
    assert!(
        snapshot.to_json().contains("exec.morsels"),
        "instrumented run must record morsel counters"
    );
    for key in [
        "serve.requests",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.snapshot.installs",
    ] {
        assert!(
            snapshot.to_json().contains(key),
            "instrumented serving burst must record {key}"
        );
    }
    std::fs::write("BENCH_metrics.json", snapshot.to_json()).expect("write BENCH_metrics.json");

    let speedup_inst = inst_naive / inst_join;
    let speedup_ct = ct_naive / ct_join;
    let speedup_prob = prob_enum / prob_bdd;
    let speedup_chain = chain_naive / chain_join;
    let speedup_chain_prob = chain_prob_enum / chain_prob_bdd;
    let speedup_columnar = par_row / par_columnar;
    let speedup_parallel = par_columnar / par_parallel;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"engine\",");
    let _ = writeln!(out, "  \"mode\": \"quick-smoke\",");
    let _ = writeln!(out, "  \"unit\": \"ns_per_iter\",");
    let _ = writeln!(out, "  \"workload\": \"{PRODUCT_HEAVY}\",");
    let _ = writeln!(out, "  \"instance_256\": {{");
    let _ = writeln!(out, "    \"naive\": {inst_naive:.0},");
    let _ = writeln!(out, "    \"pushdown\": {inst_pushdown:.0},");
    let _ = writeln!(out, "    \"join\": {inst_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_inst:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"ctable_64\": {{");
    let _ = writeln!(out, "    \"naive\": {ct_naive:.0},");
    let _ = writeln!(out, "    \"join\": {ct_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_ct:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"pctable_prob_{PROB_NVARS}var\": {{");
    let _ = writeln!(out, "    \"workload\": \"{PROB_SMOKE_QUERY}\",");
    let _ = writeln!(out, "    \"enum\": {prob_enum:.0},");
    let _ = writeln!(out, "    \"bdd\": {prob_bdd:.0},");
    let _ = writeln!(out, "    \"speedup_enum_over_bdd\": {speedup_prob:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"catalog_chain_instance_{CHAIN_ROWS}\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_CHAIN_NAIVE}\",");
    let _ = writeln!(out, "    \"naive\": {chain_naive:.0},");
    let _ = writeln!(out, "    \"join\": {chain_join:.0},");
    let _ = writeln!(out, "    \"speedup_naive_over_join\": {speedup_chain:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"catalog_chain_pctable_{chain_nvars}var\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_CHAIN_NAIVE}\",");
    let _ = writeln!(out, "    \"enum\": {chain_prob_enum:.0},");
    let _ = writeln!(out, "    \"bdd\": {chain_prob_bdd:.0},");
    let _ = writeln!(
        out,
        "    \"speedup_enum_over_bdd\": {speedup_chain_prob:.2}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"parallel_join_{PAR_PROBE}\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_PARALLEL_JOIN}\",");
    let _ = writeln!(out, "    \"build_rows\": {PAR_BUILD},");
    let _ = writeln!(out, "    \"probe_rows\": {PAR_PROBE},");
    let _ = writeln!(out, "    \"threads\": {cores},");
    let _ = writeln!(out, "    \"row_at_a_time\": {par_row:.0},");
    let _ = writeln!(out, "    \"columnar_1thread\": {par_columnar:.0},");
    let _ = writeln!(out, "    \"columnar_parallel\": {par_parallel:.0},");
    let _ = writeln!(
        out,
        "    \"speedup_columnar_over_rows\": {speedup_columnar:.2},"
    );
    let _ = writeln!(
        out,
        "    \"speedup_parallel_over_serial\": {speedup_parallel:.2}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"serve_traffic\": {{");
    let _ = writeln!(out, "    \"unit\": \"qps\",");
    let _ = writeln!(out, "    \"relations\": {},", ipdb_bench::SERVE_RELS);
    let _ = writeln!(out, "    \"rows_per_relation\": {SERVE_ROWS},");
    let _ = writeln!(out, "    \"query_pool\": {SERVE_POOL},");
    let _ = writeln!(out, "    \"trace_len\": {SERVE_TRACE_LEN},");
    let _ = writeln!(out, "    \"threads\": {cores},");
    let _ = writeln!(out, "    \"qps_cold_1thread\": {qps_cold:.0},");
    let _ = writeln!(out, "    \"qps_warm_1thread\": {qps_warm:.0},");
    let _ = writeln!(out, "    \"qps_server_1thread\": {qps_srv1:.0},");
    let _ = writeln!(out, "    \"qps_server_multithread\": {qps_srvn:.0},");
    let _ = writeln!(
        out,
        "    \"speedup_warm_over_cold\": {speedup_warm_cache:.2},"
    );
    let _ = writeln!(
        out,
        "    \"speedup_multi_over_single\": {speedup_server_multi:.2}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"catalog_leaf_reuse_{LEAF_ROWS}\": {{");
    let _ = writeln!(out, "    \"workload\": \"pi[0](sigma[#0=3](C))\",");
    let _ = writeln!(out, "    \"before_emulated\": {leaf_before:.0},");
    let _ = writeln!(out, "    \"after\": {leaf_after:.0},");
    let _ = writeln!(out, "    \"speedup_after_over_before\": {speedup_leaf:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"metrics_overhead\": {{");
    let _ = writeln!(out, "    \"workload\": \"{ENGINE_PARALLEL_JOIN}\",");
    let _ = writeln!(out, "    \"probe_rows\": {PAR_PROBE},");
    let _ = writeln!(out, "    \"metrics_off\": {met_off:.0},");
    let _ = writeln!(out, "    \"metrics_on\": {met_on:.0},");
    let _ = writeln!(out, "    \"ratio_on_over_off\": {metrics_overhead:.3}");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    std::fs::write("BENCH_engine.json", &out).expect("write BENCH_engine.json");
    print!("{out}");

    assert!(
        speedup_inst >= 10.0,
        "join path must be >= 10x the naive nested loop on the 256-row \
         instance self-join, measured {speedup_inst:.2}x"
    );
    assert!(
        speedup_ct > 1.0,
        "join path must improve the c-table case, measured {speedup_ct:.2}x"
    );
    assert!(
        speedup_prob >= 10.0,
        "BDD probability path must be >= 10x valuation enumeration on the \
         {PROB_NVARS}-variable pc-table workload, measured {speedup_prob:.2}x"
    );
    assert!(
        speedup_chain >= 10.0,
        "catalog hash joins must be >= 10x the naive product walk on the \
         {CHAIN_ROWS}-row 3-relation chain join, measured {speedup_chain:.2}x"
    );
    assert!(
        speedup_chain_prob >= 3.0,
        "catalog BDD path must be >= 3x valuation enumeration on the \
         {chain_nvars}-variable chain pc-catalog, measured {speedup_chain_prob:.2}x"
    );
    assert!(
        speedup_columnar >= 1.0,
        "columnar execution must not lose to the row-at-a-time evaluator on \
         the {PAR_PROBE}-row probe join, measured {speedup_columnar:.2}x"
    );
    // Morsel fan-out floor: the full >= 2x bar applies once the machine
    // has >= 4 cores; on 2-3 core hosts the honest expectation is "does
    // not lose" (Amdahl plus shared memory bandwidth bound the best
    // case well below 2x), asserted with a 5% measurement tolerance.
    if cores >= 4 {
        assert!(
            speedup_parallel >= 2.0,
            "morsel fan-out must be >= 2x single-thread with {cores} cores \
             on the {PAR_PROBE}-row probe join, measured {speedup_parallel:.2}x"
        );
    } else if cores >= 2 {
        assert!(
            speedup_parallel >= 0.95,
            "morsel fan-out must at least break even with {cores} cores on \
             the {PAR_PROBE}-row probe join, measured {speedup_parallel:.2}x"
        );
    }
    assert!(
        metrics_overhead <= 1.05,
        "metrics-on execution must stay within 5% of metrics-off on the \
         {PAR_PROBE}-row probe join, measured {metrics_overhead:.3}x"
    );
    assert!(
        speedup_warm_cache >= 2.0,
        "a warm plan cache must serve the Zipf trace at >= 2x cold qps, \
         measured {speedup_warm_cache:.2}x ({qps_cold:.0} -> {qps_warm:.0} qps)"
    );
    if cores >= 2 {
        assert!(
            speedup_server_multi >= 0.95,
            "the {cores}-worker server must at least break even with the \
             1-worker server on the Zipf trace, measured \
             {speedup_server_multi:.2}x ({qps_srv1:.0} -> {qps_srvn:.0} qps)"
        );
    }
    assert!(
        speedup_leaf >= 1.15,
        "Arc-shared catalog leaves must beat the emulated per-query deep \
         clone on the {LEAF_ROWS}-row c-table, measured {speedup_leaf:.2}x"
    );
    println!(
        "bench_smoke: ok (instance {speedup_inst:.1}x, c-table {speedup_ct:.1}x, \
         pc-table prob {speedup_prob:.1}x, chain {speedup_chain:.1}x, \
         chain prob {speedup_chain_prob:.1}x, columnar {speedup_columnar:.1}x, \
         parallel {speedup_parallel:.1}x @ {cores} threads, metrics overhead \
         {metrics_overhead:.3}x, warm cache {speedup_warm_cache:.1}x, \
         server multi {speedup_server_multi:.2}x, leaf reuse {speedup_leaf:.1}x) \
         -> BENCH_engine.json + BENCH_metrics.json"
    );
}
