//! The experiments harness: reproduces every example and theorem of
//! Green & Tannen (EDBT 2006) and prints a paper-vs-measured report —
//! the source of `EXPERIMENTS.md`.
//!
//! Run with `cargo run --release -p ipdb-bench --bin experiments`.

use std::collections::BTreeMap;
use std::time::Instant;

use ipdb_bench::{random_boolean_pctable, random_idb, random_pctable};
use ipdb_core::{completion, finite_complete, nonclosure, ra_complete};
use ipdb_logic::{Condition, Var, VarGen};
use ipdb_prob::answering::{tuple_prob_bdd, tuple_prob_enum, tuple_prob_shannon};
use ipdb_prob::extensional::{
    exact_prob, forced_extensional, lifted_prob, BoolCq, CqArg, CqAtom, ProbDb,
};
use ipdb_prob::{theorem8_table, FiniteSpace, PDatabase, POrSetTable, PTable, PcTable, Rat};
use ipdb_provenance::connection;
use ipdb_rel::{instance, tuple, Domain, Fragment, IDatabase, Pred, Query, Tuple, Value};
use ipdb_tables::{t_const, t_var, CTable, OrSetQTable, OrSetValue, RepresentationSystem};

fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn check(label: &str, ok: bool) {
    assert!(ok, "EXPERIMENT FAILED: {label}");
    println!("  [ok] {label}");
}

fn example2_table() -> CTable {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    CTable::builder(3)
        .row([t_const(1), t_const(2), t_var(x)], Condition::True)
        .row(
            [t_const(3), t_var(x), t_var(y)],
            Condition::and([Condition::eq_vv(x, y), Condition::neq_vc(z, 2)]),
        )
        .row(
            [t_var(z), t_const(4), t_const(5)],
            Condition::or([Condition::neq_vc(x, 1), Condition::neq_vv(x, y)]),
        )
        .build()
        .unwrap()
}

fn main() {
    println!("ipdb experiments — Green & Tannen, EDBT 2006");
    println!("every check below asserts; reaching the end means all experiments hold");
    let t0 = Instant::now();

    e01_e02_examples_1_2();
    e03_example3();
    e04_e05_ra_completeness();
    e06_theorem3();
    e07_example5();
    e08_closure();
    e09_nonclosure();
    e10_e12_completion();
    e13_prop4();
    e14_e15_example6();
    e16_theorem8();
    e17_theorem9();
    e18_running_example();
    e19_provenance();
    e20_extensional();
    e21_global_conditions();
    e22_chain_pctables();
    e23_possibilistic();

    println!("\nall experiments passed in {:.2?}", t0.elapsed());
}

fn e01_e02_examples_1_2() {
    banner("E01/E02", "Examples 1–2: v-table and c-table semantics");
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let r = CTable::v_table(
        3,
        [
            vec![t_const(1), t_const(2), t_var(x)],
            vec![t_const(3), t_var(x), t_var(y)],
            vec![t_var(z), t_const(4), t_const(5)],
        ],
    )
    .unwrap();
    let slice = Domain::new([1i64, 2, 77, 89, 97]);
    let r_worlds = r.mod_over(&slice).unwrap();
    println!("  Mod(R) over {slice}: {} worlds", r_worlds.len());
    check(
        "paper world (1,2,77)(3,77,89)(97,4,5) ∈ Mod(R)",
        r_worlds.contains(&instance![[1, 2, 77], [3, 77, 89], [97, 4, 5]]),
    );
    let s = example2_table();
    let s_worlds = s.mod_over(&slice).unwrap();
    println!("  Mod(S) over {slice}: {} worlds", s_worlds.len());
    check(
        "paper world (1,2,1)(3,1,1) ∈ Mod(S)",
        s_worlds.contains(&instance![[1, 2, 1], [3, 1, 1]]),
    );
    check(
        "paper world (1,2,77)(97,4,5) ∈ Mod(S)",
        s_worlds.contains(&instance![[1, 2, 77], [97, 4, 5]]),
    );
    check(
        "conditions prune: fewer worlds than the v-table",
        s_worlds.len() < r_worlds.len(),
    );
}

fn e03_example3() {
    banner("E03", "Example 3: or-set-?-table semantics");
    let os = |vals: &[i64]| OrSetValue::new(vals.iter().copied()).unwrap();
    let t = OrSetQTable::from_rows(
        3,
        [
            (vec![os(&[1]), os(&[2]), os(&[1, 2])], false),
            (vec![os(&[3]), os(&[1, 2]), os(&[3, 4])], false),
            (vec![os(&[4, 5]), os(&[4]), os(&[5])], true),
        ],
    )
    .unwrap();
    let worlds = t.worlds().unwrap();
    println!(
        "  |Mod(T)| = {} (≤ 2·4·3 = 24 raw combinations)",
        worlds.len()
    );
    check(
        "paper's 4 displayed members present",
        [
            instance![[1, 2, 1], [3, 1, 3], [4, 4, 5]],
            instance![[1, 2, 1], [3, 1, 3]],
            instance![[1, 2, 2], [3, 1, 3], [4, 4, 5]],
            instance![[1, 2, 2], [3, 2, 4]],
        ]
        .iter()
        .all(|w| worlds.contains(w)),
    );
    let mut gen = VarGen::new();
    check(
        "c-table embedding preserves Mod (§3 equivalence)",
        t.to_ctable(&mut gen).unwrap().mod_finite().unwrap() == worlds,
    );
}

fn e04_e05_ra_completeness() {
    banner(
        "E04/E05",
        "Thms 1–2 + Example 4: RA-completeness of c-tables",
    );
    let s = example2_table();
    let verbatim = ra_complete::example4_query();
    let (generic, k) = ra_complete::theorem1_query(&s).unwrap();
    println!(
        "  Thm 1 query: size {} (paper's hand query: size {})",
        generic.size(),
        verbatim.size()
    );
    check(
        "generic Thm 1 query lies in SPJU",
        Fragment::SPJU.admits_query(&generic, k).unwrap(),
    );
    for slice in [Domain::ints(1..=3), Domain::new([1i64, 2, 5, 42])] {
        let z = IDatabase::z_k_over(&slice, 3);
        let mod_s = s.mod_over(&slice).unwrap();
        check(
            &format!("q(Z₃) = Mod(S) over {slice} (verbatim Example 4)"),
            verbatim.eval_idb(&z).unwrap() == mod_s,
        );
        check(
            &format!("q(Z₃) = Mod(S) over {slice} (generic Thm 1)"),
            generic.eval_idb(&z).unwrap() == mod_s,
        );
    }
    // Thm 2: q̄(Z₃) is a c-table equivalent to S.
    let mut gen = VarGen::avoiding(s.vars());
    let back = ra_complete::theorem2_table(&generic, k, &mut gen).unwrap();
    check(
        "Thm 2: q̄(Z₃) ≡ S as i-databases",
        back.equivalent_to(&s).unwrap(),
    );
}

fn e06_theorem3() {
    banner("E06", "Thm 3: boolean c-tables are finitely complete");
    for (i, seed) in [(3usize, 7u64), (5, 8), (8, 9)].iter().enumerate() {
        let target = random_idb(seed.0, 2, 3, 5, 0xE06 + i as u64);
        let t = finite_complete::theorem3_table(&target, &mut VarGen::new()).unwrap();
        check(
            &format!(
                "random target #{i} ({} worlds) → boolean c-table with {} vars, Mod equal",
                target.len(),
                t.vars().len()
            ),
            t.worlds().unwrap() == target,
        );
    }
}

fn e07_example5() {
    banner("E07", "Example 5: succinctness (m cells vs nᵐ rows)");
    println!("  n = 2 throughout; finite c-table has m cells, boolean equivalent nᵐ rows");
    println!(
        "  {:>3} {:>12} {:>14} {:>12}",
        "m", "finite cells", "boolean rows", "build time"
    );
    for m in [2usize, 4, 6, 8, 10] {
        let mut gen = VarGen::new();
        let finite = finite_complete::example5_finite_ctable(m, 2, &mut gen);
        let t = Instant::now();
        let boolean = finite_complete::example5_boolean_equivalent(m, 2, &mut gen).unwrap();
        let dt = t.elapsed();
        let cells = finite.len() * finite.arity();
        println!(
            "  {:>3} {:>12} {:>14} {:>12.2?}",
            m,
            cells,
            boolean.len(),
            dt
        );
        assert_eq!(boolean.len(), 1usize << m);
        assert_eq!(cells, m);
    }
    check("boolean rows = 2ᵐ for every m (paper's nᵐ)", true);
}

fn e08_closure() {
    banner("E08", "Thm 4 + Lemma 1: closure under the c-table algebra");
    let q = Query::union(
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(1, 2),
            ),
            vec![0, 3],
        ),
        Query::diff(Query::Input, Query::Lit(instance![[1, 1]])),
    );
    let mut all_ok = true;
    for seed in 0..10u64 {
        let t = ipdb_bench::random_finite_ctable(3, 2, 3, 2, 0xE08 + seed);
        let lhs = t.eval_query(&q).unwrap().mod_finite().unwrap();
        let rhs = q.eval_idb(&t.mod_finite().unwrap()).unwrap();
        all_ok &= lhs == rhs;
    }
    check(
        "Mod(q̄(T)) = q(Mod(T)) on 10 random finite c-tables (full RA incl. −)",
        all_ok,
    );
}

fn e09_nonclosure() {
    banner("E09", "Prop. 1: non-closure witnesses with certificates");
    let sel = nonclosure::selection_witness().unwrap();
    check(
        &format!("selection witness escapes {} (emptiness lemma)", sel.system),
        nonclosure::unrepresentable_by_unconditional_tables(&sel.target),
    );
    let join = nonclosure::qtable_join_witness().unwrap();
    check(
        "join witness escapes ?-tables (exact decision)",
        nonclosure::qtable_representing(&join.target).is_none(),
    );
    check(
        "join witness escapes R_sets (singleton lemma)",
        nonclosure::rsets_unrepresentable_via_singletons(&join.target),
    );
    let t = Instant::now();
    let rxor = nonclosure::rxor_join_witness(4).unwrap();
    println!(
        "  bounded R⊕≡ search (≤4 tuples, mult ≤2, all ⊕/≡ assignments): {:.2?}",
        t.elapsed()
    );
    check(
        "join witness escapes R_⊕≡ (bounded search)",
        rxor.system == "R_⊕≡ (join)",
    );
}

fn e10_e12_completion() {
    banner(
        "E10–E12",
        "Thms 5–7 + Cor. 1: algebraic completion, fragment-checked",
    );
    // E10 on Example 2's table.
    let s = example2_table();
    let mut gen = VarGen::avoiding(s.vars());
    let (codd, q1) = completion::ra_completion_codd_spju(&s, &mut gen).unwrap();
    check(
        "Thm 5.1: Codd + SPJU reproduces Example 2's S",
        codd.is_codd()
            && Fragment::SPJU.admits_query(&q1, codd.arity()).unwrap()
            && codd.eval_query(&q1).unwrap().equivalent_to(&s).unwrap(),
    );
    let (vt, q2) = completion::ra_completion_vtable_sp(&s).unwrap();
    check(
        "Thm 5.2: v-table + SP reproduces Example 2's S",
        vt.is_v_table()
            && Fragment::SP.admits_query(&q2, vt.arity()).unwrap()
            && vt.eval_query(&q2).unwrap().equivalent_to(&s).unwrap(),
    );

    // E11 on random targets.
    let target = random_idb(4, 2, 2, 4, 0xE11);
    println!("  finite target: {} worlds, arity 2", target.len());
    let (os_s, os_t, q) = completion::finite_completion_orset_pj(&target).unwrap();
    check(
        "Thm 6.1: or-set + PJ",
        Fragment::PJ.admits(q.op_set())
            && completion::image_of_pair(&q, &os_s.worlds().unwrap(), &os_t.worlds().unwrap())
                .unwrap()
                == target,
    );
    let mut gen = VarGen::new();
    let (fv_s, fv_t, q) = completion::finite_completion_finitev_pj(&target, &mut gen).unwrap();
    check(
        "Thm 6.2a: finite v-tables + PJ",
        completion::image_of_pair(&q, &fv_s.mod_finite().unwrap(), &fv_t.mod_finite().unwrap())
            .unwrap()
            == target,
    );
    let (sp_s, q) = completion::finite_completion_finitev_sp(&target, &mut gen).unwrap();
    check(
        "Thm 6.2b: finite v-tables + S⁺P",
        Fragment::S_PLUS_P.admits_query(&q, sp_s.arity()).unwrap()
            && q.eval_idb(&sp_s.mod_finite().unwrap()).unwrap() == target,
    );
    let (rs_s, rs_t, q) = completion::finite_completion_rsets_pj(&target).unwrap();
    check(
        "Thm 6.3a: R_sets + PJ",
        Fragment::PJ.admits(q.op_set())
            && completion::image_of_pair(&q, &rs_s.worlds().unwrap(), &rs_t.worlds().unwrap())
                .unwrap()
                == target,
    );
    let (pu_s, q) = completion::finite_completion_rsets_pu(&target).unwrap();
    check(
        "Thm 6.3b: R_sets + PU",
        Fragment::PU.admits(q.op_set()) && q.eval_idb(&pu_s.worlds().unwrap()).unwrap() == target,
    );
    let small = random_idb(3, 1, 2, 3, 0xE114);
    let (xt, xs, q) = completion::finite_completion_rxor_spj_pair(&small).unwrap();
    check(
        "Thm 6.4: R_⊕≡ + S⁺PJ",
        Fragment::S_PLUS_PJ.admits(q.op_set())
            && completion::image_of_pair(&q, &xt.worlds().unwrap(), &xs.worlds().unwrap()).unwrap()
                == small,
    );
    // E12.
    let (host, q) = completion::corollary1_qtable(&target).unwrap();
    check(
        "Thm 7 / Cor. 1: ?-tables + RA",
        q.eval_idb(&host.worlds().unwrap()).unwrap() == target,
    );
}

fn e13_prop4() {
    banner("E13", "Prop. 4: q(N) = Z_n over finite slices");
    for n in [1usize, 2] {
        let t = Tuple::new(vec![1i64; n]);
        let q = ra_complete::prop4_query(n, &t).unwrap();
        let dom = Domain::ints(1..=2);
        let n_slice = IDatabase::all_instances_over(&dom, n, 2);
        check(
            &format!(
                "arity {n}: q over {} instances of N yields Z_{n}",
                n_slice.len()
            ),
            q.eval_idb(&n_slice).unwrap() == IDatabase::z_k_over(&dom, n),
        );
    }
}

fn e14_e15_example6() {
    banner(
        "E14/E15",
        "Example 6 + Prop. 2: p-or-set-tables and p-?-tables",
    );
    let t = PTable::from_rows(
        2,
        [
            (tuple![1, 2], Rat::new(4, 10)),
            (tuple![3, 4], Rat::new(3, 10)),
            (tuple![5, 6], Rat::ONE),
        ],
    )
    .unwrap();
    let mt = t.mod_space().unwrap();
    check(
        "P[{(1,2),(3,4),(5,6)}] = .4·.3·1 = 3/25",
        mt.world_prob(&instance![[1, 2], [3, 4], [5, 6]]) == Rat::new(12, 100),
    );
    check(
        "Prop. 2: marginals equal declared pₜ",
        t.rows().iter().all(|(tup, p)| mt.tuple_prob(tup) == *p),
    );
    let joint = mt
        .space()
        .prob_of(|w| w.contains(&tuple![1, 2]) && w.contains(&tuple![3, 4]));
    check(
        "Prop. 2: E_{(1,2)} and E_{(3,4)} independent",
        joint == Rat::new(4, 10) * Rat::new(3, 10),
    );
    let cell = |pairs: &[(i64, Rat)]| {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    };
    let s = POrSetTable::from_rows(
        2,
        [
            vec![
                FiniteSpace::dirac(Value::from(1)),
                cell(&[(2, Rat::new(3, 10)), (3, Rat::new(7, 10))]),
            ],
            vec![
                FiniteSpace::dirac(Value::from(4)),
                FiniteSpace::dirac(Value::from(5)),
            ],
            vec![
                cell(&[(6, Rat::new(1, 2)), (7, Rat::new(1, 2))]),
                cell(&[(8, Rat::new(1, 10)), (9, Rat::new(9, 10))]),
            ],
        ],
    )
    .unwrap();
    let ms = s.mod_space().unwrap();
    check("Example 6's S has 8 worlds, mass exactly 1", ms.len() == 8);
    check(
        "P[choices 3,7,9] = .7·.5·.9",
        ms.world_prob(&instance![[1, 3], [4, 5], [7, 9]])
            == Rat::new(7, 10) * Rat::new(1, 2) * Rat::new(9, 10),
    );
}

fn e16_theorem8() {
    banner("E16", "Thm 8: boolean pc-tables are complete");
    for seed in 0..5u64 {
        let worlds = random_idb(4, 1, 2, 3, 0xE16 + seed);
        let masses = [
            Rat::new(1, 10),
            Rat::new(2, 10),
            Rat::new(3, 10),
            Rat::new(4, 10),
        ];
        let db = PDatabase::from_outcomes(1, worlds.iter().cloned().zip(masses.iter().copied()))
            .unwrap();
        let t = theorem8_table(&db, &mut VarGen::new()).unwrap();
        assert!(t.mod_space().unwrap().same_distribution(&db));
    }
    check(
        "5 random p-databases round-trip exactly (rational arithmetic)",
        true,
    );
}

fn e17_theorem9() {
    banner("E17", "Thm 9: pc-tables are closed under RA");
    let q = Query::project(
        Query::select(
            Query::product(Query::Input, Query::Input),
            Pred::eq_cols(1, 2),
        ),
        vec![0, 3],
    );
    let mut all_ok = true;
    for seed in 0..5u64 {
        let pc = random_pctable(3, 2, 3, 2, 0xE17 + seed);
        let lhs = pc.eval_query(&q).unwrap().mod_space().unwrap();
        let rhs = pc.mod_space().unwrap().map_query(&q).unwrap();
        all_ok &= lhs.same_distribution(&rhs);
    }
    check(
        "Mod(q̄(T)) = q(Mod(T)) as distributions, 5 random pc-tables",
        all_ok,
    );

    // Engine agreement + a timing glimpse (the benches do this properly).
    let bpc = random_boolean_pctable(6, 1, 10, 0xE17F);
    // Probe a tuple the table can actually produce.
    let probe = bpc.as_pctable().table().rows()[0]
        .tuple
        .iter()
        .map(|t| t.as_const().expect("boolean tables are ground").clone())
        .collect::<Tuple>();
    let t = Instant::now();
    let p1 = tuple_prob_enum(bpc.as_pctable(), &probe).unwrap();
    let d1 = t.elapsed();
    let t = Instant::now();
    let p2 = tuple_prob_shannon(bpc.as_pctable(), &probe).unwrap();
    let d2 = t.elapsed();
    let t = Instant::now();
    let p3 = tuple_prob_bdd(&bpc, &probe).unwrap();
    let d3 = t.elapsed();
    println!(
        "  10-var boolean pc-table, P[t] = {p1}: enum {d1:.2?}, shannon {d2:.2?}, bdd {d3:.2?}"
    );
    check(
        "three probability engines agree exactly",
        p1 == p2 && p2 == p3,
    );
}

fn e18_running_example() {
    banner("E18", "§1 running example: Alice/Bob/Theo pc-table");
    let mut gen = VarGen::new();
    let x = gen.fresh();
    let t = gen.fresh();
    let table = CTable::builder(2)
        .row([t_const("Alice"), t_var(x)], Condition::True)
        .row(
            [t_const("Bob"), t_var(x)],
            Condition::or([Condition::eq_vc(x, "phys"), Condition::eq_vc(x, "chem")]),
        )
        .row([t_const("Theo"), t_const("math")], Condition::eq_vc(t, 1))
        .build()
        .unwrap();
    let pc = PcTable::new(
        table,
        [
            (
                x,
                FiniteSpace::new([
                    (Value::from("math"), Rat::new(3, 10)),
                    (Value::from("phys"), Rat::new(3, 10)),
                    (Value::from("chem"), Rat::new(4, 10)),
                ])
                .unwrap(),
            ),
            (
                t,
                FiniteSpace::new([
                    (Value::from(0), Rat::new(15, 100)),
                    (Value::from(1), Rat::new(85, 100)),
                ])
                .unwrap(),
            ),
        ],
    )
    .unwrap();
    let worlds = pc.mod_space().unwrap();
    println!("  {} worlds; marginals:", worlds.len());
    for (tup, p) in worlds.marginals() {
        println!("    P[{tup}] = {p}");
    }
    check("6 worlds (3 courses × Theo's coin)", worlds.len() == 6);
    check(
        "P[Bob phys] = 0.3, P[Theo math] = 0.85",
        worlds.tuple_prob(&tuple!["Bob", "phys"]) == Rat::new(3, 10)
            && worlds.tuple_prob(&tuple!["Theo", "math"]) == Rat::new(85, 100),
    );
}

fn e19_provenance() {
    banner(
        "E19",
        "§9: c-table conditions ≡ lineage (PosBool provenance)",
    );
    let doms: BTreeMap<Var, Domain> = (0..3).map(|i| (Var(i), Domain::bools())).collect();
    let q = Query::union(
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(1, 3),
            ),
            vec![0, 2],
        ),
        Query::project(Query::Input, vec![0, 0]),
    );
    let mut all_ok = true;
    for seed in 0..8u64 {
        let t = ipdb_bench::random_boolean_pctable(3, 2, 3, 0xE19 + seed);
        let mismatch =
            connection::conditions_match_provenance(t.as_pctable().table(), &q, &doms).unwrap();
        all_ok &= mismatch.is_none();
    }
    check(
        "q̄ conditions ≡ PosBool provenance on 8 random boolean tables (SPJU query)",
        all_ok,
    );
}

fn e20_extensional() {
    banner("E20", "§8 / [9]: safe plans vs exact lineage");
    let mut db = ProbDb::new();
    db.insert(
        "R",
        PTable::from_rows(1, (0..4i64).map(|i| (Tuple::new([i]), Rat::new(1, 2)))).unwrap(),
    );
    db.insert(
        "S",
        PTable::from_rows(
            2,
            (0..4i64).flat_map(|i| {
                [
                    (Tuple::new([i, 100 + i]), Rat::new(1, 2)),
                    (Tuple::new([i, 100 + ((i + 1) % 4)]), Rat::new(1, 4)),
                ]
            }),
        )
        .unwrap(),
    );
    db.insert(
        "T",
        PTable::from_rows(1, (100..104i64).map(|i| (Tuple::new([i]), Rat::new(1, 2)))).unwrap(),
    );
    let safe = BoolCq::new(vec![
        CqAtom::new("R", vec![CqArg::Var(0)]),
        CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
    ]);
    let exact = exact_prob(&safe, &db).unwrap();
    let lifted = lifted_prob(&safe, &db).unwrap();
    println!("  safe chain R(x),S(x,y): exact = {exact}, lifted = {lifted}");
    check("hierarchical query: lifted = exact", exact == lifted);

    let h0 = BoolCq::h0();
    check("H₀ is not hierarchical", !h0.is_hierarchical());
    check(
        "lifted evaluator refuses H₀",
        lifted_prob(&h0, &db).is_err(),
    );
    let exact_h0 = exact_prob(&h0, &db).unwrap();
    let forced = forced_extensional(&h0, &db).unwrap();
    println!(
        "  H₀: exact = {exact_h0} ≈ {:.6}; forced extensional = {forced} ≈ {:.6}",
        exact_h0.to_f64(),
        forced.to_f64()
    );
    check("forced extensional plan diverges on H₀", exact_h0 != forced);
}

fn e21_global_conditions() {
    banner(
        "E21 (ext)",
        "§9 outlook: c-tables with global conditions [17]",
    );
    use ipdb_tables::GlobalCTable;
    let (x, y) = (Var(0), Var(1));
    let t = CTable::builder(2)
        .row([t_var(x), t_var(y)], Condition::True)
        .build()
        .unwrap();
    let g = GlobalCTable::new(t, Condition::neq_vv(x, y));
    let slice = Domain::ints(1..=2);
    let worlds = g.mod_over(&slice).unwrap();
    check(
        "global x≠y keeps exactly the off-diagonal worlds",
        worlds.len() == 2
            && worlds.contains(&instance![[1, 2]])
            && worlds.contains(&instance![[2, 1]]),
    );
    let q = Query::project(Query::Input, vec![0]);
    let lhs = g.eval_query(&q).unwrap().mod_over(&slice).unwrap();
    let rhs = q.eval_idb(&worlds).unwrap();
    check("closure: Mod(q̄(T,Φ)) = q(Mod(T,Φ))", lhs == rhs);
    let sim = g.to_ctable().mod_over(&slice).unwrap();
    check(
        "plain-c-table simulation differs exactly by the empty world",
        sim.len() == worlds.len() + 1 && sim.contains(&ipdb_rel::Instance::empty(2)),
    );
}

fn e22_chain_pctables() {
    banner(
        "E22 (ext)",
        "§9 outlook: conditionally dependent variables [14]",
    );
    use ipdb_prob::chain::{ChainPcTable, CondDist};
    let (a, b) = (Var(0), Var(1));
    let table = CTable::builder(2)
        .row([t_const("Alice"), t_var(a)], Condition::True)
        .row([t_const("Bob"), t_var(b)], Condition::True)
        .build()
        .unwrap();
    let dist = |pairs: &[(&str, Rat)]| {
        FiniteSpace::new(pairs.iter().map(|(v, p)| (Value::from(*v), *p))).unwrap()
    };
    let a_dist = CondDist::marginal(dist(&[("math", Rat::new(1, 2)), ("phys", Rat::new(1, 2))]));
    let b_dist = CondDist::conditional(
        vec![a],
        [
            (
                vec![Value::from("math")],
                dist(&[("math", Rat::new(9, 10)), ("phys", Rat::new(1, 10))]),
            ),
            (
                vec![Value::from("phys")],
                dist(&[("math", Rat::new(2, 10)), ("phys", Rat::new(8, 10))]),
            ),
        ],
    );
    let chain = ChainPcTable::new(table, vec![a, b], [(a, a_dist), (b, b_dist)]).unwrap();
    let m = chain.mod_space().unwrap();
    check(
        "chain rule: P[both math] = 1/2 · 9/10 = 9/20",
        m.world_prob(&instance![["Alice", "math"], ["Bob", "math"]]) == Rat::new(9, 20),
    );
    check(
        "total probability: P[Bob math] = 11/20 (correlated, ≠ any independent product)",
        m.tuple_prob(&tuple!["Bob", "math"]) == Rat::new(11, 20),
    );
    let q = Query::select(Query::Input, Pred::eq_const(1, "math"));
    let lhs = chain.eval_query(&q).unwrap().mod_space().unwrap();
    let rhs = m.map_query(&q).unwrap();
    check("Thm 9 lifts to chains", lhs.same_distribution(&rhs));
}

fn e23_possibilistic() {
    banner("E23 (ext)", "§9 outlook: possibilistic models [19]");
    use ipdb_prob::possibilistic::{PossCTable, PossDist, FULLY};
    let x = Var(0);
    let table = CTable::builder(1)
        .row([t_var(x)], Condition::True)
        .row([t_const(9)], Condition::eq_vc(x, 1))
        .build()
        .unwrap();
    let d = PossDist::new([
        (Value::from(1), FULLY),
        (Value::from(2), 600),
        (Value::from(3), 200),
    ])
    .unwrap();
    let t = PossCTable::new(table, [(x, d)]).unwrap();
    let m = t.mod_space().unwrap();
    check(
        "(max,min) semantics: Π[{1,9}]=1000, Π[{2}]=600, Π[{3}]=200",
        m.world_degree(&instance![[1], [9]]) == FULLY
            && m.world_degree(&instance![[2]]) == 600
            && m.world_degree(&instance![[3]]) == 200,
    );
    check(
        "possibility/necessity duality: N[9] = 1000 − Π[¬9] = 400",
        m.tuple_necessity(&tuple![9]) == 400,
    );
    let q = Query::select(Query::Input, Pred::neq_const(0, 9));
    let lhs = t.eval_query(&q).unwrap().mod_space().unwrap();
    let rhs = m.map_query(&q).unwrap();
    check("closure with max-images (Def. 10/11 analogue)", lhs == rhs);
}
