//! E20 — safe plans vs exact lineage (the §8 reading of Dalvi–Suciu):
//! on the hierarchical chain `R(x), S(x,y)` the lifted evaluator is
//! polynomial while exact lineage computation grows with the grounding;
//! on the non-hierarchical `H₀` only the exact engine remains (and its
//! cost reflects the #P-hardness).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_prob::extensional::{exact_prob, lifted_prob, BoolCq, CqArg, CqAtom, ProbDb};
use ipdb_prob::{PTable, Rat};
use ipdb_rel::Tuple;

fn chain_db(n: usize) -> ProbDb<Rat> {
    let mut db = ProbDb::new();
    db.insert(
        "R",
        PTable::from_rows(1, (0..n as i64).map(|i| (Tuple::new([i]), Rat::new(1, 2)))).unwrap(),
    );
    db.insert(
        "S",
        PTable::from_rows(
            2,
            (0..n as i64).map(|i| (Tuple::new([i, i + 100]), Rat::new(1, 2))),
        )
        .unwrap(),
    );
    db.insert(
        "T",
        PTable::from_rows(
            1,
            (0..n as i64).map(|i| (Tuple::new([i + 100]), Rat::new(1, 2))),
        )
        .unwrap(),
    );
    db
}

fn safe_query() -> BoolCq {
    BoolCq::new(vec![
        CqAtom::new("R", vec![CqArg::Var(0)]),
        CqAtom::new("S", vec![CqArg::Var(0), CqArg::Var(1)]),
    ])
}

fn bench_safe_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensional_safe");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for n in [2usize, 4, 8, 16] {
        let db = chain_db(n);
        let q = safe_query();
        group.bench_with_input(BenchmarkId::new("lifted", n), &db, |b, db| {
            b.iter(|| lifted_prob(&q, db).unwrap())
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("exact_lineage", n), &db, |b, db| {
                b.iter(|| exact_prob(&q, db).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_h0_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensional_h0");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for n in [2usize, 3, 4] {
        let db = chain_db(n);
        let h0 = BoolCq::h0();
        group.bench_with_input(BenchmarkId::new("exact_lineage", n), &db, |b, db| {
            b.iter(|| exact_prob(&h0, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_safe_vs_exact, bench_h0_exact);
criterion_main!(benches);
