//! E04/E06/E10–E12 — construction costs of the completeness and
//! completion theorems, by target size.
//!
//! Thm 1 and Thm 5 are linear in the table; Thm 3 and the Thm 6/7
//! constructions are linear in Σ|world| with a logarithmic variable
//! count — the point being that *representing* is cheap even when
//! enumeration is not.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::{random_ctable, random_idb};
use ipdb_core::{completion, finite_complete, ra_complete};
use ipdb_logic::VarGen;

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1_construction");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for rows in [4usize, 16, 64, 256] {
        let t = random_ctable(rows, 3, 8, 4, 0x1000 + rows as u64);
        group.bench_with_input(BenchmarkId::new("ctable_to_query", rows), &t, |b, t| {
            b.iter(|| ra_complete::theorem1_query(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vtable_sp", rows), &t, |b, t| {
            b.iter(|| completion::ra_completion_vtable_sp(t).unwrap())
        });
    }
    group.finish();
}

fn bench_finite_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("finite_constructions");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for worlds in [4usize, 16, 64] {
        let target = random_idb(worlds, 2, 3, 8, 0x2000 + worlds as u64);
        group.bench_with_input(BenchmarkId::new("thm3_boolean", worlds), &target, |b, t| {
            b.iter(|| finite_complete::theorem3_table(t, &mut VarGen::new()).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("thm6_orset_pj", worlds),
            &target,
            |b, t| b.iter(|| completion::finite_completion_orset_pj(t).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("thm6_rsets_pu", worlds),
            &target,
            |b, t| b.iter(|| completion::finite_completion_rsets_pu(t).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("thm6_finitev_sp", worlds),
            &target,
            |b, t| {
                b.iter(|| completion::finite_completion_finitev_sp(t, &mut VarGen::new()).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("cor1_query", worlds), &target, |b, t| {
            b.iter(|| completion::corollary1_qtable(t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem1, bench_finite_constructions);
criterion_main!(benches);
