//! E16–E17 — the probability engines for `P[t ∈ answer]`:
//! world enumeration vs Shannon expansion of the event expression vs
//! ROBDD weighted model counting (boolean-literal and finite-domain
//! one-hot compilations), by variable count — plus the full
//! answer-distribution pipeline (`answer_dist_enum` vs the BDD fast
//! path) that `bench_smoke` gates in CI.
//!
//! The shape to expect: enumeration is exponential in *all* variables;
//! Shannon touches only the variables of the tuple's condition;
//! the BDD engines additionally share subproblems across the condition
//! and win as conditions grow repetitive.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::{
    prob_smoke_pctable, random_boolean_pctable, random_boolean_pctable_f64, random_pctable,
    PROB_SMOKE_QUERY,
};
use ipdb_engine::Engine;
use ipdb_prob::answering::{tuple_prob_bdd, tuple_prob_enum, tuple_prob_shannon};
use ipdb_rel::Tuple;

fn probe() -> Tuple {
    Tuple::new([7i64])
}

fn bench_three_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability_engines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for nvars in [4u32, 8, 12] {
        let bpc = random_boolean_pctable(8, 1, nvars, 0x77 + nvars as u64);
        if nvars <= 8 {
            group.bench_with_input(BenchmarkId::new("enumerate", nvars), &bpc, |b, t| {
                b.iter(|| tuple_prob_enum(t.as_pctable(), &probe()).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("shannon", nvars), &bpc, |b, t| {
            b.iter(|| tuple_prob_shannon(t.as_pctable(), &probe()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd_rat", nvars), &bpc, |b, t| {
            b.iter(|| tuple_prob_bdd(t, &probe()).unwrap())
        });
        let bpc_f = random_boolean_pctable_f64(8, 1, nvars, 0x77 + nvars as u64);
        group.bench_with_input(BenchmarkId::new("bdd_f64", nvars), &bpc_f, |b, t| {
            b.iter(|| tuple_prob_bdd(t, &probe()).unwrap())
        });
        // The finite-domain one-hot compilation on the same tables (two
        // indicators per boolean variable instead of one literal).
        group.bench_with_input(BenchmarkId::new("bdd_onehot", nvars), &bpc, |b, t| {
            b.iter(|| t.as_pctable().tuple_prob_bdd(&probe()).unwrap())
        });
    }
    group.finish();
}

/// The full answer-distribution pipeline on the `bench_smoke` workload:
/// §8 valuation enumeration vs the shared-manager BDD + WMC path.
fn bench_answer_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_dist");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for nvars in [6u32, 9, 12] {
        let pc = prob_smoke_pctable(nvars, 0xBDD);
        let stmt = Engine::new()
            .prepare_text(PROB_SMOKE_QUERY, 1)
            .expect("well-typed");
        group.bench_with_input(BenchmarkId::new("enumerate", nvars), &pc, |b, pc| {
            b.iter(|| stmt.answer_dist_enum(pc).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd_wmc", nvars), &pc, |b, pc| {
            b.iter(|| stmt.answer_dist(pc).unwrap())
        });
    }
    group.finish();
}

fn bench_thm9_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm9_closure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let q = ipdb_rel::Query::project(
        ipdb_rel::Query::select(
            ipdb_rel::Query::product(ipdb_rel::Query::Input, ipdb_rel::Query::Input),
            ipdb_rel::Pred::eq_cols(0, 2),
        ),
        vec![0, 1],
    );
    for nvars in [2u32, 4, 6] {
        let pc = random_pctable(4, 2, nvars, 3, 0x99 + nvars as u64);
        // Symbolic path: q̄(T) (cheap) …
        group.bench_with_input(BenchmarkId::new("qbar_only", nvars), &pc, |b, pc| {
            b.iter(|| pc.eval_query(&q).unwrap())
        });
        // … vs materializing the answer distribution.
        group.bench_with_input(BenchmarkId::new("qbar_then_mod", nvars), &pc, |b, pc| {
            b.iter(|| pc.eval_query(&q).unwrap().mod_space().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mod_then_image", nvars), &pc, |b, pc| {
            b.iter(|| pc.mod_space().unwrap().map_query(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_three_engines,
    bench_answer_dist,
    bench_thm9_closure
);
criterion_main!(benches);
