//! E16–E17 — the three probability engines for `P[t ∈ answer]`:
//! world enumeration vs Shannon expansion of the event expression vs
//! ROBDD weighted model counting (boolean pc-tables), by variable count.
//!
//! The shape to expect: enumeration is exponential in *all* variables;
//! Shannon touches only the variables of the tuple's condition;
//! the BDD engine additionally shares subproblems across the condition
//! and wins as conditions grow repetitive.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::{random_boolean_pctable, random_boolean_pctable_f64, random_pctable};
use ipdb_prob::answering::{tuple_prob_bdd, tuple_prob_enum, tuple_prob_shannon};
use ipdb_rel::Tuple;

fn probe() -> Tuple {
    Tuple::new([7i64])
}

fn bench_three_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability_engines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for nvars in [4u32, 8, 12] {
        let bpc = random_boolean_pctable(8, 1, nvars, 0x77 + nvars as u64);
        if nvars <= 8 {
            group.bench_with_input(BenchmarkId::new("enumerate", nvars), &bpc, |b, t| {
                b.iter(|| tuple_prob_enum(t.as_pctable(), &probe()).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("shannon", nvars), &bpc, |b, t| {
            b.iter(|| tuple_prob_shannon(t.as_pctable(), &probe()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd_rat", nvars), &bpc, |b, t| {
            b.iter(|| tuple_prob_bdd(t, &probe()).unwrap())
        });
        let bpc_f = random_boolean_pctable_f64(8, 1, nvars, 0x77 + nvars as u64);
        group.bench_with_input(BenchmarkId::new("bdd_f64", nvars), &bpc_f, |b, t| {
            b.iter(|| tuple_prob_bdd(t, &probe()).unwrap())
        });
    }
    group.finish();
}

fn bench_thm9_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm9_closure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let q = ipdb_rel::Query::project(
        ipdb_rel::Query::select(
            ipdb_rel::Query::product(ipdb_rel::Query::Input, ipdb_rel::Query::Input),
            ipdb_rel::Pred::eq_cols(0, 2),
        ),
        vec![0, 1],
    );
    for nvars in [2u32, 4, 6] {
        let pc = random_pctable(4, 2, nvars, 3, 0x99 + nvars as u64);
        // Symbolic path: q̄(T) (cheap) …
        group.bench_with_input(BenchmarkId::new("qbar_only", nvars), &pc, |b, pc| {
            b.iter(|| pc.eval_query(&q).unwrap())
        });
        // … vs materializing the answer distribution.
        group.bench_with_input(BenchmarkId::new("qbar_then_mod", nvars), &pc, |b, pc| {
            b.iter(|| pc.eval_query(&q).unwrap().mod_space().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mod_then_image", nvars), &pc, |b, pc| {
            b.iter(|| pc.mod_space().unwrap().map_query(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_three_engines, bench_thm9_closure);
criterion_main!(benches);
