//! E09 — the query pipeline: naive tree-walking evaluation vs. the
//! optimized plan, on product-heavy workloads.
//!
//! Three execution strategies are compared on the same σ(×) self-join:
//!
//! * **naive** — the unoptimized plan: materialize the full n² cross
//!   product, then filter;
//! * **pushdown** — one-sided selections pre-pushed into the factors,
//!   but the spanning `#1=#3` kept as a filter above the product
//!   (the engine's pre-join optimizer output);
//! * **join** — the full optimizer output: pushed-down factors *and* the
//!   spanning equality executed as a hash `Join`.
//!
//! The same naive-vs-join effect is measured on the c-table algebra,
//! where hashing the ground key columns also skips the quadratic blow-up
//! of composed row *conditions*. A third group measures front-end
//! overhead (parse + plan + optimize).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::{
    random_ctable, skewed_instance, ENGINE_PRODUCT_HEAVY as PRODUCT_HEAVY,
    ENGINE_PRODUCT_HEAVY_PUSHED as PRODUCT_HEAVY_PUSHED,
};
use ipdb_engine::{Backend, Engine};

fn bench_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_instance");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let pushed_stmt = Engine { optimize: false }
        .prepare_text(PRODUCT_HEAVY_PUSHED, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let pushed = pushed_stmt.query();
    let join = stmt.query();
    for rows in [16usize, 64, 256] {
        let i = skewed_instance(rows);
        assert_eq!(i.run(naive).unwrap(), i.run(join).unwrap());
        assert_eq!(i.run(pushed).unwrap(), i.run(join).unwrap());
        group.bench_with_input(BenchmarkId::new("naive", rows), &i, |b, i| {
            b.iter(|| i.run(naive).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pushdown", rows), &i, |b, i| {
            b.iter(|| i.run(pushed).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("join", rows), &i, |b, i| {
            b.iter(|| i.run(join).unwrap())
        });
    }
    group.finish();
}

fn bench_ctables(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ctable");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let optimized = stmt.query();
    for rows in [4usize, 16, 64] {
        let t = random_ctable(rows, 2, 6, 4, 0xE9 + rows as u64);
        group.bench_with_input(BenchmarkId::new("naive", rows), &t, |b, t| {
            b.iter(|| t.run(naive).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("join", rows), &t, |b, t| {
            b.iter(|| t.run(optimized).unwrap())
        });
    }
    group.finish();
}

fn bench_prepare(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_prepare");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let engine = Engine::new();
    group.bench_function(BenchmarkId::new("parse_plan_optimize", "spj"), |b| {
        b.iter(|| engine.prepare_text(PRODUCT_HEAVY, 2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_instances, bench_ctables, bench_prepare);
criterion_main!(benches);
