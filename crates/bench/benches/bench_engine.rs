//! E09 — the query pipeline: naive tree-walking evaluation vs. the
//! optimized plan, on product-heavy workloads.
//!
//! The optimizer's headline rewrite is selection pushdown through `×`:
//! naive evaluation materializes the full n² cross product before
//! filtering, while the optimized plan filters each factor first. The
//! same effect is measured on the c-table algebra, where shrinking the
//! factors also shrinks the quadratic blow-up of row *conditions*.
//! A third group measures front-end overhead (parse + plan + optimize).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::random_ctable;
use ipdb_engine::{Backend, Engine};
use ipdb_rel::{Instance, Tuple, Value};

/// A selective self-join over `V × V`: `#0=1` prunes the left factor to
/// ~1/8 of its rows, `#2=2` the right factor likewise, and `#1=#3`
/// spans the product so it must stay above it.
const PRODUCT_HEAVY: &str = "pi[1](sigma[and(#0=1, #2=2, #1=#3)](V x V))";

/// `rows` distinct tuples `(i mod 8, i div 8)`: 8 join-key groups, so
/// each pushed-down selection keeps rows/8 tuples.
fn skewed_instance(rows: usize) -> Instance {
    Instance::from_tuples(
        2,
        (0..rows).map(|i| Tuple::new([Value::from((i % 8) as i64), Value::from((i / 8) as i64)])),
    )
    .expect("fixed arity")
}

fn bench_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_instance");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let optimized = stmt.query();
    for rows in [16usize, 64, 256] {
        let i = skewed_instance(rows);
        assert_eq!(i.run(naive).unwrap(), i.run(optimized).unwrap());
        group.bench_with_input(BenchmarkId::new("naive", rows), &i, |b, i| {
            b.iter(|| i.run(naive).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("optimized", rows), &i, |b, i| {
            b.iter(|| i.run(optimized).unwrap())
        });
    }
    group.finish();
}

fn bench_ctables(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ctable");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let stmt = Engine::new()
        .prepare_text(PRODUCT_HEAVY, 2)
        .expect("well-typed");
    let naive = stmt.naive_query();
    let optimized = stmt.query();
    for rows in [4usize, 16, 64] {
        let t = random_ctable(rows, 2, 6, 4, 0xE9 + rows as u64);
        group.bench_with_input(BenchmarkId::new("naive", rows), &t, |b, t| {
            b.iter(|| t.run(naive).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("optimized", rows), &t, |b, t| {
            b.iter(|| t.run(optimized).unwrap())
        });
    }
    group.finish();
}

fn bench_prepare(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_prepare");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let engine = Engine::new();
    group.bench_function(BenchmarkId::new("parse_plan_optimize", "spj"), |b| {
        b.iter(|| engine.prepare_text(PRODUCT_HEAVY, 2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_instances, bench_ctables, bench_prepare);
criterion_main!(benches);
