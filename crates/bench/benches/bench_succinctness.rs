//! E07 — Example 5: succinctness of variables-in-tuples.
//!
//! The finite c-table `{(x₁,…,x_m : true)}`, `dom = {1..n}`, has `m`
//! cells; the equivalent boolean c-table has `nᵐ` rows. This bench
//! measures the cost of *materializing* the boolean equivalent (Thm 3
//! over the `nᵐ` worlds) against building the symbolic table, m by m —
//! the wall-clock shadow of the paper's exponential separation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_core::finite_complete::{example5_boolean_equivalent, example5_finite_ctable};
use ipdb_logic::VarGen;

fn bench_example5(c: &mut Criterion) {
    let mut group = c.benchmark_group("succinctness_example5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let n = 2i64;
    for m in [2usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::new("finite_ctable", m), &m, |b, &m| {
            b.iter(|| example5_finite_ctable(m, n, &mut VarGen::new()))
        });
        group.bench_with_input(BenchmarkId::new("boolean_equivalent", m), &m, |b, &m| {
            b.iter(|| example5_boolean_equivalent(m, n, &mut VarGen::new()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_example5);
criterion_main!(benches);
