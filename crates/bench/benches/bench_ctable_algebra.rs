//! E08 — scaling of the c-table algebra `q̄` (Theorem 4's closure
//! construction): per-operation cost as the input table grows.
//!
//! The paper proves closure but notes (§9) it leaves complexity open;
//! this bench characterizes our implementation: `σ̄`/`π̄` are linear in
//! rows, `×̄` quadratic, and `−̄` multiplies conditions (the known
//! c-table difference blow-up).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::random_ctable;
use ipdb_rel::{Pred, Query};

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctable_algebra");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for rows in [4usize, 16, 64, 256] {
        let t = random_ctable(rows, 3, 6, 4, 0xC0FFEE + rows as u64);
        group.bench_with_input(BenchmarkId::new("select", rows), &t, |b, t| {
            b.iter(|| t.select_bar(&Pred::eq_const(0, 1)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("project", rows), &t, |b, t| {
            b.iter(|| t.project_bar(&[0, 2]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("product_self", rows), &t, |b, t| {
            b.iter(|| t.product_bar(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("union_self", rows), &t, |b, t| {
            b.iter(|| t.union_bar(t).unwrap())
        });
    }
    // Difference blows up conditions: keep sizes smaller.
    for rows in [2usize, 4, 8, 16] {
        let t1 = random_ctable(rows, 2, 4, 3, 0xD1FF + rows as u64);
        let t2 = random_ctable(rows, 2, 4, 3, 0xD2FF + rows as u64);
        group.bench_with_input(BenchmarkId::new("difference", rows), &rows, |b, _| {
            b.iter(|| t1.diff_bar(&t2).unwrap())
        });
    }
    group.finish();
}

fn bench_whole_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctable_query");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // An Example 4-shaped SPJU query over growing tables.
    let q = Query::union(
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(1, 3),
            ),
            vec![0, 2],
        ),
        Query::project(Query::Input, vec![0, 1]),
    );
    for rows in [4usize, 16, 64] {
        let t = random_ctable(rows, 3, 6, 4, 0xAB + rows as u64);
        group.bench_with_input(BenchmarkId::new("spju_eval", rows), &t, |b, t| {
            b.iter(|| t.eval_query(&q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("spju_eval_simplify", rows), &t, |b, t| {
            b.iter(|| t.eval_query(&q).unwrap().simplified())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops, bench_whole_queries);
criterion_main!(benches);
