//! World enumeration (`Mod(T)`) scaling: exponential in variables,
//! polynomial in rows — the cost that motivates symbolic tables and that
//! the smarter probability engines (E16–E17) avoid.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_bench::random_finite_ctable;

fn bench_mod_by_vars(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds_by_vars");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    // Valuation candidates = 3^v.
    for nvars in [2u32, 4, 6, 8] {
        let t = random_finite_ctable(6, 2, nvars, 3, 0x11 + nvars as u64);
        group.bench_with_input(BenchmarkId::new("dom3", nvars), &t, |b, t| {
            b.iter(|| t.mod_finite().unwrap())
        });
    }
    group.finish();
}

fn bench_mod_by_domain(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds_by_domain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for dom in [2i64, 4, 8, 16] {
        let t = random_finite_ctable(6, 2, 4, dom, 0x22 + dom as u64);
        group.bench_with_input(BenchmarkId::new("vars4", dom), &t, |b, t| {
            b.iter(|| t.mod_finite().unwrap())
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds_membership");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    // Certain/possible membership via decision slices on infinite-domain
    // tables (slice grows with the variable count).
    for nvars in [1u32, 2, 3, 4] {
        let t = ipdb_bench::random_ctable(4, 2, nvars, 3, 0x33 + nvars as u64);
        let probe = ipdb_rel::Tuple::new([0i64, 0]);
        group.bench_with_input(BenchmarkId::new("possible", nvars), &t, |b, t| {
            b.iter(|| t.possible_tuple(&probe).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("certain", nvars), &t, |b, t| {
            b.iter(|| t.certain_tuple(&probe).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mod_by_vars,
    bench_mod_by_domain,
    bench_membership
);
criterion_main!(benches);
