//! E19 — semiring evaluation overhead by annotation structure: the same
//! positive query under Bool (set semantics), Nat (bags), Why (witness
//! sets), PosBool (event expressions / c-table conditions), and ℕ[X]
//! (provenance polynomials).
//!
//! Expected shape: scalar semirings are ~free; Why and ℕ[X] pay for the
//! structures they build — the price of generality §9 hints at.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipdb_logic::{Condition, Var};
use ipdb_provenance::{eval, BoolSr, KRelation, NatSr, Poly, PosBoolSr, Token, WhySr};
use ipdb_rel::{Pred, Query, Tuple, Value};

fn base_instance(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new([Value::from((i % 8) as i64), Value::from((i / 8) as i64)]))
        .collect()
}

fn the_query() -> Query {
    // π₁(σ_{#2=#3}(V × V)) ∪ π₁(V): join + union + projection collapse.
    Query::union(
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(1, 2),
            ),
            vec![0],
        ),
        Query::project(Query::Input, vec![0]),
    )
}

fn bench_semirings(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_semirings");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let q = the_query();
    for n in [8usize, 16, 32] {
        let tuples = base_instance(n);
        let bool_rel =
            KRelation::from_annotated(2, tuples.iter().map(|t| (t.clone(), BoolSr(true)))).unwrap();
        group.bench_with_input(BenchmarkId::new("bool", n), &bool_rel, |b, r| {
            b.iter(|| eval(&q, r).unwrap())
        });
        let nat_rel =
            KRelation::from_annotated(2, tuples.iter().map(|t| (t.clone(), NatSr(1)))).unwrap();
        group.bench_with_input(BenchmarkId::new("nat", n), &nat_rel, |b, r| {
            b.iter(|| eval(&q, r).unwrap())
        });
        let why_rel = KRelation::from_annotated(
            2,
            tuples
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), WhySr::token(Token(i as u32)))),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("why", n), &why_rel, |b, r| {
            b.iter(|| eval(&q, r).unwrap())
        });
        let cond_rel = KRelation::from_annotated(
            2,
            tuples
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), PosBoolSr::new(Condition::bvar(Var(i as u32))))),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("posbool", n), &cond_rel, |b, r| {
            b.iter(|| eval(&q, r).unwrap())
        });
        let poly_rel = KRelation::from_annotated(
            2,
            tuples
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), Poly::token(Token(i as u32)))),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("poly", n), &poly_rel, |b, r| {
            b.iter(|| eval(&q, r).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_semirings);
criterion_main!(benches);
