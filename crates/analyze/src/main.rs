//! CLI for the `ipdb-analyze` lint driver.
//!
//! ```text
//! ipdb-analyze              # analyze the enclosing workspace (CI gate)
//! ipdb-analyze PATH...      # analyze explicit files/directories
//! ```
//!
//! With no arguments the workspace root is located by walking up from
//! the current directory to the outermost `Cargo.toml`; all four lints
//! run, including the workspace-level `forbid-unsafe-drift` check.
//! Explicit paths run the per-file lints only (fixture mode). Exit
//! codes: `0` clean, `1` findings reported, `2` usage/IO error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ipdb_analyze::{analyze_path, analyze_workspace, Config, Finding};

/// The outermost ancestor of `start` containing a `Cargo.toml` — the
/// workspace root when run from anywhere inside the repo.
fn workspace_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .filter(|a| a.join("Cargo.toml").is_file())
        .last()
        .map(Path::to_path_buf)
}

fn report(findings: &[Finding]) -> ExitCode {
    for f in findings {
        eprintln!("{f}");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ipdb-analyze: {} finding{} (suppress individual sites with \
             `// ipdb-lint: allow(<lint>) reason=\"...\"`)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = Config::default();
    if args.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ipdb-analyze: cannot determine current directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = workspace_root(&cwd) else {
            eprintln!("ipdb-analyze: no Cargo.toml found above {}", cwd.display());
            return ExitCode::from(2);
        };
        match analyze_workspace(&root, &cfg) {
            Ok(findings) => report(&findings),
            Err(e) => {
                eprintln!("ipdb-analyze: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        let mut findings = Vec::new();
        for arg in &args {
            match analyze_path(Path::new(arg), &cfg) {
                Ok(f) => findings.extend(f),
                Err(e) => {
                    eprintln!("ipdb-analyze: {arg}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        findings.sort();
        report(&findings)
    }
}
