//! # `ipdb-analyze` — workspace static analysis for the engine's safety envelope
//!
//! The engine's correctness claims (exact c-table semantics, bit-identical
//! parallel execution, readers-never-torn snapshots) rest on invariants the
//! compiler cannot check: the lifetime-erasing transmute in the morsel pool,
//! the atomic orderings scattered across the concurrency-bearing modules, and
//! the no-panic discipline on serving hot paths. This crate is those
//! invariants as *enforced tooling* — a std-only lint driver (no `syn`, no
//! crates.io: a small hand-rolled lexer that is string-, char-literal-, and
//! comment-aware) that walks every workspace `.rs` file and reports
//! violations of four named project lints:
//!
//! * [`Lint::UnsafeNeedsSafety`] (`unsafe-needs-safety`) — every `unsafe`
//!   token (block, fn, impl, trait) must carry an adjacent `// SAFETY:`
//!   comment (same line, or within the three lines above).
//! * [`Lint::RelaxedNeedsJustification`] (`relaxed-needs-justification`) —
//!   every atomic `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}`
//!   site in non-`#[cfg(test)]` code outside the documented `ipdb-obs`
//!   counter module must carry an adjacent `// ORDERING:` comment
//!   explaining why that ordering suffices (test scaffolding carries no
//!   cross-thread correctness claims and is exempt).
//! * [`Lint::NoPanicOnServePaths`] (`no-panic-on-serve-paths`) — no
//!   `.unwrap()`, `.expect(..)`, `panic!`, `todo!`, or `unreachable!` in
//!   non-`#[cfg(test)]` code of the serving hot-path modules (`serve.rs`,
//!   `cache.rs`, `backend.rs`, `pipeline.rs`, `morsel.rs`).
//! * [`Lint::ForbidUnsafeDrift`] (`forbid-unsafe-drift`) — a package with no
//!   `unsafe` at all must pin that state with `#![forbid(unsafe_code)]` in
//!   its crate root, and `unsafe` is only permitted inside the audited
//!   whitelist module (`crates/engine/src/erase.rs`).
//!
//! ## Suppressions
//!
//! Every finding is individually suppressible at the site:
//!
//! ```text
//! // ipdb-lint: allow(no-panic-on-serve-paths) reason="boot-time spawn failure is unrecoverable"
//! ```
//!
//! A suppression comment ending on line *N* silences **one** finding of the
//! named lint: the one on line *N* (trailing comment) or, failing that, the
//! one on line *N + 1* (comment above the site). A suppression with a
//! missing/unknown lint name or an empty `reason` is itself reported
//! ([`Lint::BadSuppression`]) — the reason string is the audit trail.
//!
//! ## Lexing guarantees
//!
//! Lint tokens are only recognized in *code*: string literals (including
//! raw strings `r#"…"#` and byte strings), char literals (`'a'` vs the
//! lifetime `'a` is disambiguated by lookahead), and comments (line, block,
//! nested block) never produce findings. The fixture suite under
//! `tests/fixtures/` pins exact firing lines and the tricky lexing cases.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Lints and findings.
// ---------------------------------------------------------------------

/// The named project invariants this driver enforces. Each lint's wire
/// name (used in suppression comments and report lines) is its
/// [`Lint::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeNeedsSafety,
    /// An atomic `Ordering::*` site without an adjacent `// ORDERING:`
    /// comment (outside the whitelisted `ipdb-obs` counter module).
    RelaxedNeedsJustification,
    /// A panicking API (`unwrap`/`expect`/`panic!`/`todo!`/
    /// `unreachable!`) in non-test code of a serving hot-path module.
    NoPanicOnServePaths,
    /// A package with zero `unsafe` whose crate root lacks
    /// `#![forbid(unsafe_code)]`, or `unsafe` outside the audited
    /// whitelist module.
    ForbidUnsafeDrift,
    /// A malformed `ipdb-lint:` suppression comment (unknown lint name
    /// or missing `reason="…"`). Not itself suppressible.
    BadSuppression,
}

/// Every suppressible lint, in report order.
pub const LINTS: [Lint; 4] = [
    Lint::UnsafeNeedsSafety,
    Lint::RelaxedNeedsJustification,
    Lint::NoPanicOnServePaths,
    Lint::ForbidUnsafeDrift,
];

impl Lint {
    /// The kebab-case wire name (suppression comments use this).
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsafeNeedsSafety => "unsafe-needs-safety",
            Lint::RelaxedNeedsJustification => "relaxed-needs-justification",
            Lint::NoPanicOnServePaths => "no-panic-on-serve-paths",
            Lint::ForbidUnsafeDrift => "forbid-unsafe-drift",
            Lint::BadSuppression => "bad-suppression",
        }
    }

    /// The lint with the given wire name, if any (the suppressible ones
    /// only — `bad-suppression` cannot be allowed away).
    pub fn from_name(name: &str) -> Option<Lint> {
        LINTS.into_iter().find(|l| l.name() == name)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation: file, 1-based line, lint, human message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The file the finding is in.
    pub file: PathBuf,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// Which invariant was violated.
    pub lint: Lint,
    /// What exactly is wrong at that site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// What the driver enforces where. [`Config::default`] is the workspace
/// policy; tests override pieces to point lints at fixture files.
#[derive(Debug, Clone)]
pub struct Config {
    /// File *names* whose non-test code must not panic.
    pub serve_path_files: Vec<String>,
    /// Path suffixes (workspace-relative) exempt from
    /// `relaxed-needs-justification` — the documented counter module.
    pub ordering_whitelist: Vec<PathBuf>,
    /// Path suffixes where `unsafe` is permitted (still needing
    /// `// SAFETY:` comments) — the audited erase module.
    pub unsafe_whitelist: Vec<PathBuf>,
    /// Directory names never descended into during a workspace walk.
    pub skip_dirs: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            serve_path_files: [
                "serve.rs",
                "cache.rs",
                "backend.rs",
                "pipeline.rs",
                "morsel.rs",
            ]
            .map(str::to_string)
            .to_vec(),
            ordering_whitelist: vec![PathBuf::from("crates/obs/src/lib.rs")],
            unsafe_whitelist: vec![PathBuf::from("crates/engine/src/erase.rs")],
            skip_dirs: ["target", ".git", "fixtures", "vendor-archives"]
                .map(str::to_string)
                .to_vec(),
        }
    }
}

fn suffix_matches(path: &Path, suffixes: &[PathBuf]) -> bool {
    suffixes.iter().any(|s| path.ends_with(s))
}

// ---------------------------------------------------------------------
// The lexer: code tokens + comments, strings/chars/comments skipped.
// ---------------------------------------------------------------------

/// One code token: an identifier-like word or a single punctuation
/// character, with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    kind: TokKind,
    line: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    /// A run of `[A-Za-z0-9_]` characters.
    Word(String),
    /// Any other non-whitespace character.
    Punct(char),
}

/// One comment (line or block, doc or not) with its text and the line
/// it *ends* on — adjacency rules anchor on the end line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Comment {
    text: String,
    end_line: usize,
}

#[derive(Debug, Default)]
struct Lexed {
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Skips an escaped string body starting *after* the opening `"`;
/// returns the index just past the closing quote.
fn skip_escaped_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string starting at the first `#` or `"` after the `r`
/// (or `br`) prefix; returns the index just past the closing delimiter.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Tokenizes Rust-enough source: words, punctuation, comments; string
/// and char literals are skipped without producing tokens, and `'a`
/// lifetimes are distinguished from `'a'` char literals by lookahead.
fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                end_line: line,
            });
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i.min(chars.len())].iter().collect(),
                end_line: line,
            });
        } else if c == '"' {
            i = skip_escaped_string(&chars, i + 1, &mut line);
        } else if c == '\'' {
            match chars.get(i + 1) {
                // Escaped char literal: '\n', '\'', '\u{…}'.
                Some('\\') => {
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                }
                // 'a' (closing quote follows the word) vs 'a / 'static
                // (no closing quote: a lifetime — skip the quote only,
                // the identifier tokenizes harmlessly).
                Some(&ch) if is_word_char(ch) => {
                    let mut j = i + 2;
                    while j < chars.len() && is_word_char(chars[j]) {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                }
                // Single-punctuation char literal: '(', ' ', '%'.
                Some(_) if chars.get(i + 2) == Some(&'\'') => i += 3,
                _ => i += 1,
            }
        } else if is_word_char(c) {
            let start = i;
            while i < chars.len() && is_word_char(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i);
            // Raw / byte string prefixes swallow the literal whole.
            let raw_start =
                matches!(word.as_str(), "r" | "br") && matches!(next, Some('"') | Some('#'));
            if raw_start {
                i = skip_raw_string(&chars, i, &mut line);
            } else if word == "b" && next == Some(&'"') {
                i = skip_escaped_string(&chars, i + 1, &mut line);
            } else {
                out.toks.push(Tok {
                    kind: TokKind::Word(word),
                    line,
                });
            }
        } else {
            if !c.is_whitespace() {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                });
            }
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Token-stream pattern helpers.
// ---------------------------------------------------------------------

fn word_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Word(w)) => Some(w.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// `#[cfg(test)]`-guarded token ranges (inclusive start, inclusive
/// end): from the attribute through the guarded item's closing brace
/// (or its `;` for brace-less items).
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_attr = punct_at(toks, i) == Some('#')
            && punct_at(toks, i + 1) == Some('[')
            && word_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3) == Some('(')
            && word_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5) == Some(')')
            && punct_at(toks, i + 6) == Some(']');
        if !is_attr {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Scan to the guarded item's extent: the matching `}` of its
        // first top-level brace, or a top-level `;` (brace-less item).
        let mut parens = 0isize;
        let mut brackets = 0isize;
        let mut braces = 0isize;
        let mut entered_braces = false;
        let mut end = toks.len().saturating_sub(1);
        while j < toks.len() {
            match punct_at(toks, j) {
                Some('(') => parens += 1,
                Some(')') => parens -= 1,
                Some('[') => brackets += 1,
                Some(']') => brackets -= 1,
                Some('{') => {
                    braces += 1;
                    entered_braces = true;
                }
                Some('}') => {
                    braces -= 1;
                    if entered_braces && braces == 0 {
                        end = j;
                        break;
                    }
                }
                Some(';') if !entered_braces && parens == 0 && brackets == 0 && braces == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start, end));
        i = end + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi)
}

/// Whether the token stream contains `#![forbid(unsafe_code)]` (or the
/// attribute with `unsafe_code` among several forbidden lints).
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    for i in 0..toks.len() {
        let is_head = punct_at(toks, i) == Some('#')
            && punct_at(toks, i + 1) == Some('!')
            && punct_at(toks, i + 2) == Some('[')
            && word_at(toks, i + 3) == Some("forbid")
            && punct_at(toks, i + 4) == Some('(');
        if is_head {
            let mut j = i + 5;
            while j < toks.len() && punct_at(toks, j) != Some(')') {
                if word_at(toks, j) == Some("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Suppression {
    lint: Lint,
    /// The line the suppression comment ends on.
    line: usize,
}

/// Parses `ipdb-lint: allow(<name>) reason="…"` comments; malformed
/// ones become [`Lint::BadSuppression`] findings.
fn parse_suppressions(
    file: &Path,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments *describe* the grammar; only plain comments
        // direct the driver.
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = c.text.find("ipdb-lint:") else {
            continue;
        };
        let rest = c.text[at + "ipdb-lint:".len()..].trim_start();
        let bad = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: c.end_line,
                lint: Lint::BadSuppression,
                message: msg.to_string(),
            });
        };
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            bad("expected `allow(<lint>)` after `ipdb-lint:`", findings);
            continue;
        };
        let (name, tail) = inner;
        let Some(lint) = Lint::from_name(name.trim()) else {
            bad(
                &format!("unknown lint {:?} in suppression", name.trim()),
                findings,
            );
            continue;
        };
        let reason = tail
            .trim_start()
            .strip_prefix("reason=\"")
            .and_then(|r| r.split_once('"'))
            .map(|(reason, _)| reason.trim());
        match reason {
            Some(r) if !r.is_empty() => out.push(Suppression {
                lint,
                line: c.end_line,
            }),
            _ => bad(
                "suppression needs a non-empty reason=\"…\" (the audit trail)",
                findings,
            ),
        }
    }
    out
}

/// Applies suppressions: each silences exactly one finding of its lint,
/// preferring the finding on its own line, else the line below.
fn apply_suppressions(findings: &mut Vec<Finding>, suppressions: &[Suppression]) {
    for s in suppressions {
        for target in [s.line, s.line + 1] {
            if let Some(k) = findings
                .iter()
                .position(|f| f.lint == s.lint && f.line == target)
            {
                findings.remove(k);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-file analysis.
// ---------------------------------------------------------------------

/// What one file contributes to the workspace-level checks, alongside
/// its own findings.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings from the per-file lints, post-suppression.
    pub findings: Vec<Finding>,
    /// Lines of `unsafe` tokens (workspace drift check input).
    pub unsafe_lines: Vec<usize>,
    /// Whether the file declares `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Suppressions that did not match a per-file finding (still live
    /// for workspace-level findings anchored in this file).
    suppressions: Vec<Suppression>,
}

/// Comment-adjacency: a marker comment counts for a site on line `l`
/// if it (or the contiguous run of comment lines continuing it — a
/// multi-line `// SAFETY: …` block carries its marker on the first
/// line) ends on `l` itself or within the three lines above.
const ADJACENT_LINES: usize = 3;

fn has_adjacent_marker(comments: &[Comment], marker: &str, line: usize) -> bool {
    let comment_lines: std::collections::BTreeSet<usize> =
        comments.iter().map(|c| c.end_line).collect();
    comments.iter().any(|c| {
        if c.end_line > line || !c.text.contains(marker) {
            return false;
        }
        // Extend through the block's continuation lines, so the window
        // is measured from where the comment *block* ends.
        let mut end = c.end_line;
        while end < line && comment_lines.contains(&(end + 1)) {
            end += 1;
        }
        line - end <= ADJACENT_LINES
    })
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Analyzes one file's source. `path` is the workspace-relative path
/// (whitelists and the serve-path file-name check key off it);
/// findings come back post-suppression, sorted by line.
pub fn analyze_source(path: &Path, src: &str, cfg: &Config) -> FileReport {
    let Lexed { toks, comments } = lex(src);
    let mut findings: Vec<Finding> = Vec::new();
    let suppressions = parse_suppressions(path, &comments, &mut findings);
    let test_ranges = cfg_test_ranges(&toks);
    let mut report = FileReport {
        has_forbid_unsafe: has_forbid_unsafe(&toks),
        ..FileReport::default()
    };

    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let is_serve_path = cfg.serve_path_files.contains(&file_name);
    let ordering_exempt = suffix_matches(path, &cfg.ordering_whitelist);

    // One finding per (lint, line): several sites on one line share one
    // justification comment and one suppression.
    let mut seen: BTreeMap<(Lint, usize), ()> = BTreeMap::new();
    let mut push = |findings: &mut Vec<Finding>, lint: Lint, line: usize, msg: String| {
        if seen.insert((lint, line), ()).is_none() {
            findings.push(Finding {
                file: path.to_path_buf(),
                line,
                lint,
                message: msg,
            });
        }
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            TokKind::Word(w) if w == "unsafe" => {
                report.unsafe_lines.push(line);
                if !has_adjacent_marker(&comments, "SAFETY:", line) {
                    push(
                        &mut findings,
                        Lint::UnsafeNeedsSafety,
                        line,
                        "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                    );
                }
            }
            TokKind::Word(w)
                if w == "Ordering" && !ordering_exempt && !in_ranges(&test_ranges, i) =>
            {
                let is_atomic = punct_at(&toks, i + 1) == Some(':')
                    && punct_at(&toks, i + 2) == Some(':')
                    && word_at(&toks, i + 3).is_some_and(|o| ATOMIC_ORDERINGS.contains(&o));
                if is_atomic && !has_adjacent_marker(&comments, "ORDERING:", line) {
                    let o = word_at(&toks, i + 3).unwrap_or_default();
                    push(
                        &mut findings,
                        Lint::RelaxedNeedsJustification,
                        line,
                        format!(
                            "atomic `Ordering::{o}` without an adjacent `// ORDERING:` \
                             justification"
                        ),
                    );
                }
            }
            TokKind::Word(w)
                if is_serve_path
                    && matches!(w.as_str(), "panic" | "todo" | "unreachable")
                    && punct_at(&toks, i + 1) == Some('!')
                    && !in_ranges(&test_ranges, i) =>
            {
                push(
                    &mut findings,
                    Lint::NoPanicOnServePaths,
                    line,
                    format!("`{w}!` on a serving hot path (non-test code)"),
                );
            }
            TokKind::Word(w)
                if is_serve_path
                    && matches!(w.as_str(), "unwrap" | "expect")
                    && punct_at(&toks, i.wrapping_sub(1)) == Some('.')
                    && i > 0
                    && punct_at(&toks, i + 1) == Some('(')
                    && !in_ranges(&test_ranges, i) =>
            {
                push(
                    &mut findings,
                    Lint::NoPanicOnServePaths,
                    line,
                    format!("`.{w}(..)` on a serving hot path (non-test code)"),
                );
            }
            _ => {}
        }
    }

    findings.sort();
    apply_suppressions(&mut findings, &suppressions);
    // Suppressions may also target workspace-level findings anchored in
    // this file (e.g. forbid-unsafe-drift at the crate root); keep the
    // unmatched ones around for `analyze_workspace`.
    report.suppressions = suppressions;
    report.findings = findings;
    report
}

// ---------------------------------------------------------------------
// Workspace walk and the drift check.
// ---------------------------------------------------------------------

fn walk(
    dir: &Path,
    cfg: &Config,
    rs_files: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !cfg.skip_dirs.contains(&name) {
                walk(&path, cfg, rs_files, manifests)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            rs_files.push(path);
        } else if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(path);
        }
    }
    Ok(())
}

/// The package directory owning `file`: the longest manifest directory
/// that is a prefix of the file's path.
fn package_of<'a>(file: &Path, package_dirs: &'a [PathBuf]) -> Option<&'a Path> {
    package_dirs
        .iter()
        .filter(|d| file.starts_with(d))
        .max_by_key(|d| d.components().count())
        .map(PathBuf::as_path)
}

/// Analyzes every `.rs` file under `root` (skipping [`Config::skip_dirs`])
/// and runs the workspace-level `forbid-unsafe-drift` check across the
/// packages found. Paths in findings are workspace-relative.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, cfg, &mut rs_files, &mut manifests)?;
    let package_dirs: Vec<PathBuf> = manifests
        .iter()
        .filter_map(|m| m.parent().map(Path::to_path_buf))
        .collect();

    let mut findings = Vec::new();
    // Per package: (any unsafe anywhere, crate-root report if seen).
    struct PkgState {
        unsafe_sites: Vec<(PathBuf, usize)>,
        root_file: Option<(PathBuf, bool, Vec<Suppression>)>,
    }
    let mut packages: BTreeMap<PathBuf, PkgState> = BTreeMap::new();

    for file in &rs_files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        let src = std::fs::read_to_string(file)?;
        let report = analyze_source(&rel, &src, cfg);
        findings.extend(report.findings);
        let Some(pkg) = package_of(file, &package_dirs) else {
            continue;
        };
        let pkg_rel = pkg.strip_prefix(root).unwrap_or(pkg).to_path_buf();
        let state = packages.entry(pkg_rel).or_insert_with(|| PkgState {
            unsafe_sites: Vec::new(),
            root_file: None,
        });
        for line in &report.unsafe_lines {
            state.unsafe_sites.push((rel.clone(), *line));
        }
        let is_root = file == &pkg.join("src/lib.rs")
            || (file == &pkg.join("src/main.rs") && !pkg.join("src/lib.rs").exists());
        if is_root {
            state.root_file = Some((rel.clone(), report.has_forbid_unsafe, report.suppressions));
        }
    }

    for (pkg, state) in &packages {
        let Some((root_file, has_forbid, suppressions)) = &state.root_file else {
            continue;
        };
        let mut drift = Vec::new();
        if state.unsafe_sites.is_empty() && !has_forbid {
            drift.push(Finding {
                file: root_file.clone(),
                line: 1,
                lint: Lint::ForbidUnsafeDrift,
                message: format!(
                    "package `{}` uses no unsafe but its crate root lacks \
                     `#![forbid(unsafe_code)]`",
                    pkg.display()
                ),
            });
        }
        for (file, line) in &state.unsafe_sites {
            if !suffix_matches(file, &cfg.unsafe_whitelist) {
                drift.push(Finding {
                    file: file.clone(),
                    line: *line,
                    lint: Lint::ForbidUnsafeDrift,
                    message: "`unsafe` outside the audited whitelist module".to_string(),
                });
            }
        }
        apply_suppressions(&mut drift, suppressions);
        findings.extend(drift);
    }

    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Analyzes one file (or every `.rs` file under one directory) without
/// the workspace-level drift check — what the CLI does for explicit
/// path arguments, and what the fixture tests drive.
pub fn analyze_path(path: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    if path.is_dir() {
        let mut rs_files = Vec::new();
        let mut manifests = Vec::new();
        walk(path, cfg, &mut rs_files, &mut manifests)?;
        let mut findings = Vec::new();
        for f in rs_files {
            let src = std::fs::read_to_string(&f)?;
            findings.extend(analyze_source(&f, &src, cfg).findings);
        }
        findings.sort();
        Ok(findings)
    } else {
        let src = std::fs::read_to_string(path)?;
        Ok(analyze_source(path, &src, cfg).findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, src: &str) -> Vec<Finding> {
        analyze_source(Path::new(name), src, &Config::default()).findings
    }

    #[test]
    fn lexer_skips_strings_chars_and_comments() {
        let src = r##"
            fn f() {
                let a = "unsafe { Ordering::Relaxed } .unwrap()";
                let b = r#"panic! in a raw "string" with # marks"#;
                let c = 'u'; let d: &'static str = "x";
                let e = b"unsafe"; let g = b'u';
                /* unsafe /* nested .unwrap() */ still comment */
                // line comment: unreachable!()
            }
        "##;
        assert_eq!(run("serve.rs", src), Vec::new());
        let lexed = lex(src);
        assert!(lexed
            .comments
            .iter()
            .any(|c| c.text.contains("nested") && c.text.contains("still comment")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not swallow `, x: B>` as a char-literal body.
        let src = "fn f<'a, B>(x: &'a B) -> &'static str { unsafe { g(x) } }\n";
        let findings = run("lib.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, Lint::UnsafeNeedsSafety);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn safety_comment_adjacency() {
        let with = "// SAFETY: the guard blocks until workers finish.\nunsafe { f() }\n";
        assert_eq!(run("lib.rs", with), Vec::new());
        let trailing = "unsafe { f() } // SAFETY: same line counts.\n";
        assert_eq!(run("lib.rs", trailing), Vec::new());
        let far = "// SAFETY: too far away.\n\n\n\n\nunsafe { f() }\n";
        assert_eq!(run("lib.rs", far).len(), 1);
        // A multi-line marker block counts from where the *block* ends,
        // not where the marker line sits.
        let block = "// SAFETY: a long justification that wraps across\n\
                     // several continuation lines before the site —\n\
                     // still one logical comment block.\n\
                     unsafe { f() }\n";
        assert_eq!(run("lib.rs", block), Vec::new());
    }

    #[test]
    fn atomic_orderings_need_justification_but_cmp_ordering_does_not() {
        let atomic = "x.store(true, Ordering::Relaxed);\n";
        let f = run("lib.rs", atomic);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::RelaxedNeedsJustification);
        let justified = "// ORDERING: monotonic counter, no cross-data dependency.\n\
                         x.store(true, Ordering::Relaxed);\n";
        assert_eq!(run("lib.rs", justified), Vec::new());
        // std::cmp::Ordering is not an atomic ordering.
        let cmp = "let o = Ordering::Equal; let l = Ordering::Less;\n";
        assert_eq!(run("lib.rs", cmp), Vec::new());
        // The obs counter module is whitelisted wholesale, and test
        // scaffolding is exempt.
        assert_eq!(run("crates/obs/src/lib.rs", atomic), Vec::new());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f(x: &AtomicBool) -> bool \
                       { x.load(Ordering::SeqCst) }\n}\n";
        assert_eq!(run("lib.rs", in_test), Vec::new());
    }

    #[test]
    fn serve_paths_reject_panicking_apis_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u8>) -> u8 { x.unwrap() } }\n";
        let f = run("serve.rs", src);
        assert_eq!(f.len(), 1, "test-mod unwrap must not fire: {f:?}");
        assert_eq!(f[0].line, 1);
        // Same file name elsewhere in the tree still counts; other
        // names don't.
        assert_eq!(run("crates/engine/src/cache.rs", src).len(), 1);
        assert_eq!(run("other.rs", src), Vec::new());
        // unwrap_or / expect_err are different words entirely.
        let ok = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert_eq!(run("serve.rs", ok), Vec::new());
    }

    #[test]
    fn cfg_test_braceless_items_do_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::mem;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(run("serve.rs", src).len(), 1);
    }

    #[test]
    fn suppression_silences_exactly_one_finding() {
        let src = "\
            // ipdb-lint: allow(no-panic-on-serve-paths) reason=\"first site is infallible\"\n\
            fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
            fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = run("serve.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3, "only the adjacent finding is silenced");
    }

    #[test]
    fn malformed_suppressions_are_findings() {
        let no_reason = "// ipdb-lint: allow(unsafe-needs-safety)\nunsafe { f() }\n";
        let f = run("lib.rs", no_reason);
        assert!(f.iter().any(|x| x.lint == Lint::BadSuppression), "{f:?}");
        assert!(f.iter().any(|x| x.lint == Lint::UnsafeNeedsSafety));
        let bad_name = "// ipdb-lint: allow(not-a-lint) reason=\"x\"\nfn f() {}\n";
        let f = run("lib.rs", bad_name);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::BadSuppression);
    }

    #[test]
    fn doc_comments_describing_the_grammar_are_not_directives() {
        let src = "/// Suppress with `ipdb-lint: allow(<lint>) reason=\"…\"`.\n\
                   //! Grammar: ipdb-lint: allow(name)\n\
                   fn f() {}\n";
        assert_eq!(run("lib.rs", src), Vec::new());
    }

    #[test]
    fn forbid_attribute_is_recognized() {
        let lexed = lex("#![forbid(unsafe_code)]\n");
        assert!(has_forbid_unsafe(&lexed.toks));
        let lexed = lex("#![forbid(missing_docs, unsafe_code)]\n");
        assert!(has_forbid_unsafe(&lexed.toks));
        let lexed = lex("#![deny(unsafe_code)]\n// #![forbid(unsafe_code)] in a comment\n");
        assert!(!has_forbid_unsafe(&lexed.toks));
    }

    #[test]
    fn lint_names_round_trip() {
        for l in LINTS {
            assert_eq!(Lint::from_name(l.name()), Some(l));
        }
        assert_eq!(Lint::from_name("bad-suppression"), None);
        assert_eq!(
            format!("{}", Lint::UnsafeNeedsSafety),
            "unsafe-needs-safety"
        );
    }
}
