//! End-to-end fixture suite for the `ipdb-analyze` lint driver: each
//! lint must fire at the exact pinned line, suppressions must silence
//! exactly one finding, tricky lexing must not false-positive, and the
//! real binary must exit nonzero on every bad fixture and zero on the
//! workspace itself.

use std::path::{Path, PathBuf};
use std::process::Command;

use ipdb_analyze::{analyze_path, analyze_workspace, Config, Finding, Lint};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings(name: &str) -> Vec<Finding> {
    analyze_path(&fixture(name), &Config::default()).unwrap()
}

fn lines(findings: &[Finding], lint: Lint) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn unsafe_lint_fires_at_exact_line() {
    let f = findings("bad_unsafe.rs");
    assert_eq!(lines(&f, Lint::UnsafeNeedsSafety), vec![5], "{f:?}");
    assert_eq!(f.len(), 1);
    assert_eq!(findings("good_unsafe.rs"), Vec::new());
}

#[test]
fn ordering_lint_fires_at_exact_lines_with_adjacency_window() {
    let f = findings("bad_ordering.rs");
    assert_eq!(
        lines(&f, Lint::RelaxedNeedsJustification),
        vec![7, 13],
        "{f:?}"
    );
    assert_eq!(f.len(), 2);
}

#[test]
fn serve_path_lint_fires_outside_tests_only() {
    let f = findings("serve.rs");
    assert_eq!(lines(&f, Lint::NoPanicOnServePaths), vec![4, 5, 7], "{f:?}");
    assert_eq!(f.len(), 3);
}

#[test]
fn suppression_silences_exactly_one_finding() {
    let f = findings("cache.rs");
    assert_eq!(lines(&f, Lint::NoPanicOnServePaths), vec![9], "{f:?}");
    assert_eq!(f.len(), 1);
}

#[test]
fn reasonless_suppression_is_a_finding_and_silences_nothing() {
    let f = findings("bad_suppression.rs");
    assert_eq!(lines(&f, Lint::BadSuppression), vec![4], "{f:?}");
    assert_eq!(lines(&f, Lint::UnsafeNeedsSafety), vec![5], "{f:?}");
    assert_eq!(f.len(), 2);
}

#[test]
fn tricky_lexing_does_not_false_positive() {
    assert_eq!(findings("morsel.rs"), Vec::new());
}

#[test]
fn forbid_drift_is_a_workspace_check() {
    let base = std::env::temp_dir().join("ipdb-analyze-drift-fixture");
    let _ = std::fs::remove_dir_all(&base);
    let src = base.join("pkg/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(base.join("pkg/Cargo.toml"), "[package]\nname = \"pkg\"\n").unwrap();
    let cfg = Config::default();

    // No unsafe, no forbid: drift at the crate root, line 1.
    std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").unwrap();
    let f = analyze_workspace(&base, &cfg).unwrap();
    assert_eq!(lines(&f, Lint::ForbidUnsafeDrift), vec![1], "{f:?}");

    // The attribute clears it.
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )
    .unwrap();
    assert_eq!(analyze_workspace(&base, &cfg).unwrap(), Vec::new());

    // Unsafe outside the audited whitelist drifts at the site (the
    // SAFETY comment satisfies the other lint, not this one).
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(p: *const u8) -> u8 {\n    \
         // SAFETY: fixture; the caller passes a valid pointer.\n    \
         unsafe { *p }\n}\n",
    )
    .unwrap();
    let f = analyze_workspace(&base, &cfg).unwrap();
    assert_eq!(lines(&f, Lint::ForbidUnsafeDrift), vec![3], "{f:?}");
    assert_eq!(f.len(), 1);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn binary_exits_nonzero_on_every_bad_fixture_and_zero_on_good_ones() {
    for bad in [
        "bad_unsafe.rs",
        "bad_ordering.rs",
        "serve.rs",
        "cache.rs",
        "bad_suppression.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_ipdb-analyze"))
            .arg(fixture(bad))
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(1), "{bad} should fail the gate");
    }
    for good in ["good_unsafe.rs", "morsel.rs"] {
        let status = Command::new(env!("CARGO_BIN_EXE_ipdb-analyze"))
            .arg(fixture(good))
            .status()
            .unwrap();
        assert!(status.success(), "{good} should pass the gate");
    }
    // A missing path is a usage error (2), distinct from findings (1).
    let status = Command::new(env!("CARGO_BIN_EXE_ipdb-analyze"))
        .arg(fixture("does_not_exist.rs"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2));
}

#[test]
fn binary_is_clean_on_the_workspace() {
    // The CI gate: the whole repository passes its own lints. Run from
    // the workspace root exactly as CI does.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_ipdb-analyze"))
        .current_dir(&root)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "workspace must pass its own lints:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
