// Fixture: relaxed-needs-justification fires at lines 7 and 13 only —
// the ORDERING comment at line 8 covers its 3-line adjacency window.
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let n = AtomicUsize::new(0);
    n.store(1, Ordering::Relaxed);
    // ORDERING: fixture justification — covers the two lines below.
    n.store(2, Ordering::Release);
    let a = n.load(Ordering::Acquire);
    let x = a + 1;
    let _ = x;
    let b = n.load(Ordering::SeqCst);
    assert_eq!(a + b, 4);
}
