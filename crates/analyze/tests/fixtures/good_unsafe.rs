// Fixture: an adjacent SAFETY comment satisfies unsafe-needs-safety —
// zero findings.
fn main() {
    let x: i32 = 42;
    let p = &x as *const i32;
    // SAFETY: `p` derives from a live reference to `x` in this frame.
    let y = unsafe { *p };
    assert_eq!(y, 42);
}
