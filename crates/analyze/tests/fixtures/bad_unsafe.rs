// Fixture: unsafe-needs-safety must fire at line 5 exactly.
fn main() {
    let x: i32 = 42;
    let p = &x as *const i32;
    let y = unsafe { *p };
    assert_eq!(y, 42);
}
