// Fixture (named like a serving hot path): no-panic-on-serve-paths
// fires at lines 4, 5, and 7; the #[cfg(test)] module is exempt.
fn handle(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b > 100 {
        panic!("overflow");
    }
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
