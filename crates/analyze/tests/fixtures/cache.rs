// Fixture: the suppression silences exactly one finding (line 5); the
// identical call at line 9 still fires.
fn get(x: Option<u32>) -> u32 {
    // ipdb-lint: allow(no-panic-on-serve-paths) reason="fixture: documented invariant"
    x.unwrap()
}

fn get_again(x: Option<u32>) -> u32 {
    x.unwrap()
}
