// Fixture: a reasonless suppression is itself a finding (line 4) and
// silences nothing — the unsafe at line 5 still fires.
fn main() {
    // ipdb-lint: allow(unsafe-needs-safety)
    let y = unsafe { std::ptr::read(&7) };
    let _ = y;
}
