// Fixture (named like a serving hot path so every lint is armed): zero
// findings — every trigger below hides in a string, raw string, byte
// string, char literal, lifetime, or comment, and a leaky lexer would
// false-positive on them.
fn main() {
    let s = "unsafe { Ordering::Relaxed } and .unwrap() and panic!";
    let r = r#"unsafe fn in a raw "string" with .expect( marks"#;
    let deep = r##"nested r#"raw"# inside, todo!()"##;
    let b = b"unsafe bytes with Ordering::SeqCst";
    let u = 'u';
    let quote = '"';
    let escaped = '\'';
    let newline = '\n';
    /* block comment: unsafe /* nested: x.unwrap() */ still a comment */
    // line comment: x.unwrap() todo!() unreachable!()
    let _ = (s, r, deep, b, u, quote, escaped, newline);
}

fn lifetimes<'a>(x: &'a str) -> &'static str {
    let _ = x;
    "ok"
}
