//! The rule-based plan optimizer.
//!
//! Rewrites applied (all are worldwise identities of the relational
//! algebra, so they are sound on every backend — conventional instances,
//! c-tables via Lemma 1, and pc-tables via Theorem 9):
//!
//! * **predicate fusion** — `σ_p(σ_q(e)) → σ_{q∧p}(e)` (via
//!   [`Pred::conj`], so conjunctions stay flat);
//! * **selection pushdown** — through `∪` (both sides), `−`/`∩` (left
//!   side), and `×` (conjuncts split by the column ranges they touch,
//!   with right-side conjuncts re-based);
//! * **equijoin recognition** — `σ_{… ∧ #i=#j ∧ …}(a × b)` with `#i=#j`
//!   spanning the product becomes a hash-executed
//!   [`PlanNode::Join`]: spanning equality conjuncts (extracted
//!   deterministically by [`Pred::split_equijoin`]) become the key list,
//!   everything else stays as the join's residual. Selections above a
//!   join fuse into its residual, and residual conjuncts that touch only
//!   one operand are pushed down into it;
//! * **projection pruning** — `π_cols(π_inner(e)) → π_{inner∘cols}(e)`
//!   and identity projections dropped;
//! * **dead-branch elimination** — `q − q → ∅`, `σ_false(e) → ∅`, and
//!   empty-literal propagation through every operator;
//! * **idempotent set ops** — `q ∪ q → q`, `q ∩ q → q`;
//! * **constant folding** — any operator whose children are all literals
//!   is evaluated at plan time.
//!
//! Passes run bottom-up. Upward effects (empty propagation, fusion)
//! complete within one pass; downward effects (pushdown) descend one
//! operator per pass, so the fixpoint loop is bounded using the plan's
//! [`Query::depth`] measure rather than iterating blindly.

use ipdb_rel::{CmpOp, Instance, Operand, Pred, Query, Schema};

use crate::error::EngineError;
use crate::plan::{Plan, PlanNode};

/// Optimizes a query in a single-input context: plan, rewrite to
/// fixpoint, lower back to an executable [`Query`].
pub fn optimize(q: &Query, input_arity: usize) -> Result<Query, EngineError> {
    Ok(optimize_plan(&Plan::from_query(q, input_arity)?).to_query())
}

/// Optimizes a query over an arbitrary named [`Schema`].
pub fn optimize_in(q: &Query, schema: &Schema) -> Result<Query, EngineError> {
    Ok(optimize_plan(&Plan::from_query_schema(q, schema)?).to_query())
}

/// Rewrites a plan to fixpoint.
///
/// In debug builds, asserts that the pass bound derived from the plan's
/// depth was actually sufficient — a rewrite that oscillates or
/// descends slower than one level per pass is an optimizer bug, not a
/// tuning matter. Use [`optimize_plan_stats`] to observe the pass count
/// and convergence flag directly (the idempotence property
/// `optimize_plan(optimize_plan(p)) == optimize_plan(p)` holds exactly
/// when the loop converges, and is pinned by proptest).
pub fn optimize_plan(plan: &Plan) -> Plan {
    let (optimized, stats) = optimize_plan_stats(plan);
    debug_assert!(
        stats.converged,
        "optimizer exhausted its fixpoint bound without converging \
         ({} passes on a depth-{} plan)",
        stats.passes,
        plan.depth()
    );
    optimized
}

/// What [`optimize_plan`]'s fixpoint loop did: how many rewrite passes
/// ran, and whether the loop reached a genuine fixpoint (a pass that
/// changed nothing) before its bound ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Number of rewrite passes executed (including the final no-op
    /// pass that certifies the fixpoint).
    pub passes: usize,
    /// Whether a no-op pass was observed within the bound. `false`
    /// means the bound was exhausted while rewrites were still firing —
    /// the returned plan is sound (every rewrite is an identity) but
    /// possibly not fully optimized.
    pub converged: bool,
}

/// Rewrites a plan to fixpoint, reporting the pass counter and whether
/// the bound sufficed (see [`OptimizeStats`]).
pub fn optimize_plan_stats(plan: &Plan) -> (Plan, OptimizeStats) {
    // Each pass finishes all upward rewrites and moves pushed-down
    // selections at least one level, so `depth` passes reach the
    // fixpoint; the loop also stops as soon as a pass changes nothing.
    // (+2: one pass to observe stability, one for rewrites enabled by
    // the final pushdown step, e.g. fusing into a child selection.)
    let bound = 2 * plan.depth() + 2;
    let mut cur = plan.clone();
    for passes in 1..=bound {
        let next = pass(&cur);
        if next == cur {
            return (
                cur,
                OptimizeStats {
                    passes,
                    converged: true,
                },
            );
        }
        cur = next;
    }
    // Bound exhausted with the last pass still rewriting: probe once
    // more so `converged` reports whether that final pass happened to
    // land on the fixpoint or the loop genuinely ran out of budget.
    let converged = pass(&cur) == cur;
    (
        cur,
        OptimizeStats {
            passes: bound + 1,
            converged,
        },
    )
}

/// One bottom-up rewrite pass.
fn pass(plan: &Plan) -> Plan {
    let arity = plan.arity;
    let node = match &plan.node {
        PlanNode::Input => PlanNode::Input,
        PlanNode::Second => PlanNode::Second,
        PlanNode::Rel(name) => PlanNode::Rel(name.clone()),
        PlanNode::Lit(i) => PlanNode::Lit(i.clone()),
        PlanNode::Project(cols, p) => PlanNode::Project(cols.clone(), Box::new(pass(p))),
        PlanNode::Select(pred, p) => PlanNode::Select(pred.clone(), Box::new(pass(p))),
        PlanNode::Product(a, b) => PlanNode::Product(Box::new(pass(a)), Box::new(pass(b))),
        PlanNode::Join {
            on,
            residual,
            left,
            right,
        } => PlanNode::Join {
            on: on.clone(),
            residual: residual.clone(),
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
        },
        PlanNode::Union(a, b) => PlanNode::Union(Box::new(pass(a)), Box::new(pass(b))),
        PlanNode::Diff(a, b) => PlanNode::Diff(Box::new(pass(a)), Box::new(pass(b))),
        PlanNode::Intersect(a, b) => PlanNode::Intersect(Box::new(pass(a)), Box::new(pass(b))),
    };
    rewrite(Plan { node, arity })
}

/// Applies the first matching local rule at the root, or returns the
/// plan unchanged.
fn rewrite(plan: Plan) -> Plan {
    let arity = plan.arity;
    match plan.node {
        PlanNode::Project(cols, child) => rewrite_project(cols, *child),
        PlanNode::Select(pred, child) => rewrite_select(pred, *child, arity),
        PlanNode::Product(a, b) => {
            if a.is_empty_lit() || b.is_empty_lit() {
                return Plan::empty(arity);
            }
            if let (PlanNode::Lit(x), PlanNode::Lit(y)) = (&a.node, &b.node) {
                return lit(x.product(y));
            }
            Plan {
                node: PlanNode::Product(a, b),
                arity,
            }
        }
        PlanNode::Join {
            on,
            residual,
            left,
            right,
        } => rewrite_join(on, residual, *left, *right, arity),
        PlanNode::Union(a, b) => {
            if a.is_empty_lit() || a == b {
                return *b;
            }
            if b.is_empty_lit() {
                return *a;
            }
            if let (PlanNode::Lit(x), PlanNode::Lit(y)) = (&a.node, &b.node) {
                return lit(x.union(y).expect("arities checked at plan build"));
            }
            Plan {
                node: PlanNode::Union(a, b),
                arity,
            }
        }
        PlanNode::Diff(a, b) => {
            if a == b || a.is_empty_lit() {
                return Plan::empty(arity);
            }
            if b.is_empty_lit() {
                return *a;
            }
            if let (PlanNode::Lit(x), PlanNode::Lit(y)) = (&a.node, &b.node) {
                return lit(x.difference(y).expect("arities checked at plan build"));
            }
            Plan {
                node: PlanNode::Diff(a, b),
                arity,
            }
        }
        PlanNode::Intersect(a, b) => {
            if a.is_empty_lit() || b.is_empty_lit() {
                return Plan::empty(arity);
            }
            if a == b {
                return *a;
            }
            if let (PlanNode::Lit(x), PlanNode::Lit(y)) = (&a.node, &b.node) {
                return lit(x.intersect(y).expect("arities checked at plan build"));
            }
            Plan {
                node: PlanNode::Intersect(a, b),
                arity,
            }
        }
        leaf => Plan { node: leaf, arity },
    }
}

fn lit(i: Instance) -> Plan {
    Plan {
        arity: i.arity(),
        node: PlanNode::Lit(i),
    }
}

fn rewrite_project(cols: Vec<usize>, child: Plan) -> Plan {
    if let PlanNode::Lit(i) = &child.node {
        return lit(i.project(&cols).expect("columns checked at plan build"));
    }
    // Identity projection: π_{0,1,…,n−1} of an arity-n child.
    if cols.len() == child.arity && cols.iter().enumerate().all(|(i, &c)| i == c) {
        return child;
    }
    // π_cols(π_inner(e)) → π_{composed}(e).
    if let PlanNode::Project(inner, e) = child.node {
        let composed: Vec<usize> = cols.iter().map(|&c| inner[c]).collect();
        return Plan {
            arity: composed.len(),
            node: PlanNode::Project(composed, e),
        };
    }
    Plan {
        arity: cols.len(),
        node: PlanNode::Project(cols, Box::new(child)),
    }
}

fn rewrite_select(pred: Pred, child: Plan, arity: usize) -> Plan {
    // Normalize the conjunction structure first: `and()` is `true`,
    // `and(p)` is `p`, nested `and`s flatten, `false` absorbs. This is
    // what lets the `true`/`false` rules below fire on every spelling.
    let pred = Pred::conj_all(pred.conjuncts());
    match pred {
        Pred::True => return child,
        Pred::False => return Plan::empty(arity),
        _ => {}
    }
    if child.is_empty_lit() {
        return Plan::empty(arity);
    }
    match child.node {
        // Constant folding: plans are validated, so `Pred::eval` cannot
        // report out-of-range columns here.
        PlanNode::Lit(i) => {
            let mut out = Instance::empty(i.arity());
            for t in i.iter() {
                if pred.eval(t.values()).expect("predicate validated") {
                    out.insert(t.clone()).expect("same arity");
                }
            }
            lit(out)
        }
        // Fusion: σ_p(σ_q(e)) filters by q then p, i.e. by q ∧ p.
        PlanNode::Select(q, e) => Plan {
            arity,
            node: PlanNode::Select(q.conj(pred), e),
        },
        PlanNode::Union(a, b) => Plan {
            arity,
            node: PlanNode::Union(
                Box::new(select(pred.clone(), *a)),
                Box::new(select(pred, *b)),
            ),
        },
        // σ_p(a − b) = σ_p(a) − b and σ_p(a ∩ b) = σ_p(a) ∩ b: the
        // right side only decides membership, the surviving tuples come
        // from the left.
        PlanNode::Diff(a, b) => Plan {
            arity,
            node: PlanNode::Diff(Box::new(select(pred, *a)), b),
        },
        PlanNode::Intersect(a, b) => Plan {
            arity,
            node: PlanNode::Intersect(Box::new(select(pred, *a)), b),
        },
        PlanNode::Product(a, b) => push_through_product(pred, *a, *b, arity),
        // σ_p over a join fuses into the residual; the join rewrite then
        // re-partitions the enlarged residual (pushing one-sided
        // conjuncts down, promoting spanning equalities to keys).
        PlanNode::Join {
            on,
            residual,
            left,
            right,
        } => Plan {
            arity,
            node: PlanNode::Join {
                on,
                residual: some_pred(match residual {
                    Some(r) => r.conj(pred),
                    None => pred,
                }),
                left,
                right,
            },
        },
        other => Plan {
            arity,
            node: PlanNode::Select(pred, Box::new(Plan { node: other, arity })),
        },
    }
}

fn select(pred: Pred, child: Plan) -> Plan {
    Plan {
        arity: child.arity,
        node: PlanNode::Select(pred, Box::new(child)),
    }
}

/// Splits `σ_p(a × b)` by the column ranges each top-level conjunct of
/// `p` touches: left-only conjuncts move onto `a`, right-only conjuncts
/// are re-based and move onto `b`, column-free conjuncts are decided
/// now. Spanning conjuncts either *become the join*: if any are
/// column–column equalities, the product is rewritten into a hash
/// [`PlanNode::Join`] keyed on them (the other spanning conjuncts ride
/// along as the residual) — or, with no equality to key on, stay as a
/// selection above the product.
fn push_through_product(pred: Pred, a: Plan, b: Plan, arity: usize) -> Plan {
    let la = a.arity;
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut rest = Vec::new();
    let mut dropped_const = false;
    for c in pred.conjuncts() {
        match (c.min_col(), c.max_col()) {
            (None, None) => {
                // Column-free: a constant truth value.
                if c.eval(&[]).expect("no column references") {
                    dropped_const = true;
                } else {
                    return Plan::empty(arity);
                }
            }
            (_, Some(max)) if max < la => left.push(c),
            (Some(min), _) if min >= la => right.push(c.unshift_cols(la)),
            _ => rest.push(c),
        }
    }
    let (on, residual) = Pred::conj_all(rest).split_equijoin(la);
    if !on.is_empty() {
        let a = maybe_select(Pred::conj_all(left), a);
        let b = maybe_select(Pred::conj_all(right), b);
        return Plan {
            arity,
            node: PlanNode::Join {
                on,
                residual: some_pred(residual),
                left: Box::new(a),
                right: Box::new(b),
            },
        };
    }
    if left.is_empty() && right.is_empty() && !dropped_const {
        // Nothing to push and nothing to key on: restore the original
        // shape so the rewrite is a no-op rather than an infinite loop.
        return select(
            pred,
            Plan {
                arity,
                node: PlanNode::Product(Box::new(a), Box::new(b)),
            },
        );
    }
    let a = maybe_select(Pred::conj_all(left), a);
    let b = maybe_select(Pred::conj_all(right), b);
    let prod = Plan {
        arity,
        node: PlanNode::Product(Box::new(a), Box::new(b)),
    };
    maybe_select(residual, prod)
}

/// Local rules at a join node: empty operands annihilate, the residual
/// is re-partitioned (one-sided conjuncts push into the operands,
/// spanning equalities promote to key pairs, column-free conjuncts are
/// decided now), and an all-literal join is folded at plan time.
fn rewrite_join(
    on: Vec<(usize, usize)>,
    residual: Option<Pred>,
    left: Plan,
    right: Plan,
    arity: usize,
) -> Plan {
    if left.is_empty_lit() || right.is_empty_lit() {
        return Plan::empty(arity);
    }
    let la = left.arity;
    let mut on = on;
    let mut push_left = Vec::new();
    let mut push_right = Vec::new();
    let mut rest = Vec::new();
    let mut changed = false;
    if let Some(p) = &residual {
        for c in p.conjuncts() {
            if let Pred::Cmp(CmpOp::Eq, Operand::Col(i), Operand::Col(j)) = &c {
                let (lo, hi) = (*i.min(j), *i.max(j));
                if lo < la && hi >= la {
                    // Spanning equality: promote to a key pair.
                    if !on.contains(&(lo, hi)) {
                        on.push((lo, hi));
                    }
                    changed = true;
                    continue;
                }
            }
            match (c.min_col(), c.max_col()) {
                (None, None) => {
                    if c.eval(&[]).expect("no column references") {
                        changed = true; // constant true conjunct: drop it
                    } else {
                        return Plan::empty(arity);
                    }
                }
                (_, Some(max)) if max < la => {
                    push_left.push(c);
                    changed = true;
                }
                (Some(min), _) if min >= la => {
                    push_right.push(c.unshift_cols(la));
                    changed = true;
                }
                _ => rest.push(c),
            }
        }
    }
    if !changed {
        // Residual is irreducible; fold the join if both operands are
        // literals (keys and residual were validated at plan build).
        if let (PlanNode::Lit(x), PlanNode::Lit(y)) = (&left.node, &right.node) {
            return lit(x
                .equijoin(y, &on, residual.as_ref())
                .expect("join validated at plan build"));
        }
        return Plan {
            arity,
            node: PlanNode::Join {
                on,
                residual,
                left: Box::new(left),
                right: Box::new(right),
            },
        };
    }
    let left = maybe_select(Pred::conj_all(push_left), left);
    let right = maybe_select(Pred::conj_all(push_right), right);
    Plan {
        arity,
        node: PlanNode::Join {
            on,
            residual: some_pred(Pred::conj_all(rest)),
            left: Box::new(left),
            right: Box::new(right),
        },
    }
}

fn maybe_select(pred: Pred, child: Plan) -> Plan {
    if pred == Pred::True {
        child
    } else {
        select(pred, child)
    }
}

/// `None` for the trivial predicate, `Some` otherwise — the residual
/// slot's normal form (so `residual: Some(True)` never appears and plan
/// equality checks in the fixpoint loop work).
fn some_pred(p: Pred) -> Option<Pred> {
    match p {
        Pred::True => None,
        p => Some(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, render};
    use ipdb_rel::instance;

    fn opt(src: &str, input_arity: usize) -> String {
        render(&optimize(&parse(src).unwrap(), input_arity).unwrap())
    }

    #[test]
    fn fuses_stacked_selections() {
        assert_eq!(
            opt("sigma[#0=1](sigma[#1=2](V))", 2),
            "sigma[and(#1=2,#0=1)](V)"
        );
        // Three deep fuses flat, not nested.
        assert_eq!(
            opt("sigma[#0=1](sigma[#1=2](sigma[#0=#1](V)))", 2),
            "sigma[and(#0=#1,#1=2,#0=1)](V)"
        );
    }

    #[test]
    fn pushes_selection_through_product() {
        // #0 and #1 live in the left factor, #2 in the right; #1=#2 spans
        // and becomes the join key.
        assert_eq!(
            opt("sigma[and(#0=1,#2=3,#1=#2)](V x pi[0](V))", 2),
            "join[#1=#2](sigma[#0=1](V), sigma[#0=3](pi[0](V)))"
        );
        // Fully-left predicate leaves nothing above the product.
        assert_eq!(opt("sigma[#0=#1](V x V)", 2), "(sigma[#0=#1](V) x V)");
        // A spanning equality becomes a hash join.
        assert_eq!(opt("sigma[#1=#2](V x V)", 2), "join[#1=#2](V, V)");
        // A spanning *inequality* has nothing to key on and stays put.
        assert_eq!(opt("sigma[#1!=#2](V x V)", 2), "sigma[#1!=#2]((V x V))");
    }

    #[test]
    fn recognizes_equijoins_over_products() {
        // The acceptance-criterion shape: σ_{#0=#2}(R × S).
        assert_eq!(opt("sigma[#0=#2](V x V)", 2), "join[#0=#2](V, V)");
        // Multiple keys, in extraction order; spanning non-equality
        // conjuncts become the residual.
        assert_eq!(
            opt("sigma[and(#0=#2,#1=#3,#1!=#2)](V x V)", 2),
            "join[#0=#2,#1=#3; #1!=#2](V, V)"
        );
        // One-sided conjuncts still push below the join.
        assert_eq!(
            opt("sigma[and(#1=#2,#0=7)](V x V)", 2),
            "join[#1=#2](sigma[#0=7](V), V)"
        );
        // Duplicate and reversed spellings dedup into one key.
        assert_eq!(
            opt("sigma[and(#0=#2,#2=#0)](V x V)", 2),
            "join[#0=#2](V, V)"
        );
    }

    #[test]
    fn selections_fuse_into_join_residuals() {
        // σ above a join folds into the join, re-partitioning: left-only
        // conjunct pushes down, spanning equality becomes a key.
        assert_eq!(
            opt("sigma[#0=1](join[#1=#2](V, V))", 2),
            "join[#1=#2](sigma[#0=1](V), V)"
        );
        assert_eq!(
            opt("sigma[#0=#3](join[#1=#2](V, V))", 2),
            "join[#1=#2,#0=#3](V, V)"
        );
        assert_eq!(
            opt("sigma[#0!=#3](join[#1=#2](V, V))", 2),
            "join[#1=#2; #0!=#3](V, V)"
        );
        // A user-written residual is re-partitioned the same way.
        assert_eq!(
            opt("join[#1=#2; and(#0=5,#1!=#3)](V, V)", 2),
            "join[#1=#2; #1!=#3](sigma[#0=5](V), V)"
        );
    }

    #[test]
    fn join_dead_branches_and_constant_folding() {
        assert_eq!(opt("join[#0=#1](V diff V, V)", 1), "{:2}");
        assert_eq!(opt("join[#0=#1](V, V diff V)", 1), "{:2}");
        assert_eq!(opt("join[#0=#1; false](V, V)", 1), "{:2}");
        assert_eq!(opt("join[#0=#1]({(1),(2)}, {(2),(3)})", 1), "{(2,2)}");
        // σ_eq over two literals folds all the way through the join path.
        assert_eq!(opt("sigma[#0=#1]({(1),(2)} x {(2)})", 1), "{(2,2)}");
    }

    #[test]
    fn pushes_selection_through_set_ops() {
        assert_eq!(
            opt("sigma[#0=1](V union V)", 1),
            // ∪-idempotence collapses the child first (passes run
            // bottom-up), leaving a plain selection over V.
            "sigma[#0=1](V)"
        );
        assert_eq!(
            opt("sigma[#0=1](V union pi[1](V x V))", 1),
            "(sigma[#0=1](V) union sigma[#0=1](pi[1]((V x V))))"
        );
        assert_eq!(
            opt("sigma[#0=1](pi[0](V) diff pi[1](V))", 2),
            "(sigma[#0=1](pi[0](V)) diff pi[1](V))"
        );
        assert_eq!(
            opt("sigma[#0=1](pi[0](V) intersect pi[1](V))", 2),
            "(sigma[#0=1](pi[0](V)) intersect pi[1](V))"
        );
    }

    #[test]
    fn prunes_projections() {
        assert_eq!(opt("pi[0,1](V)", 2), "V");
        assert_eq!(opt("pi[1](pi[2,0](V))", 3), "pi[0](V)");
        assert_eq!(opt("pi[0,0](pi[1](V))", 2), "pi[1,1](V)");
        // Non-identity projections survive.
        assert_eq!(opt("pi[1,0](V)", 2), "pi[1,0](V)");
    }

    #[test]
    fn eliminates_dead_branches() {
        assert_eq!(opt("V diff V", 2), "{:2}");
        assert_eq!(opt("sigma[false](V)", 2), "{:2}");
        assert_eq!(opt("V x (pi[0](V) diff pi[0](V))", 2), "{:3}");
        assert_eq!(opt("V union (V diff V)", 2), "V");
        assert_eq!(opt("V intersect (V diff V)", 2), "{:2}");
        assert_eq!(opt("pi[0](V diff V)", 2), "{:1}");
        assert_eq!(opt("(V diff V) diff V", 2), "{:2}");
        assert_eq!(opt("V diff (V diff V)", 2), "V");
        assert_eq!(opt("sigma[#0=1](V diff V)", 2), "{:2}");
    }

    #[test]
    fn idempotent_set_ops_collapse() {
        assert_eq!(opt("V union V", 2), "V");
        assert_eq!(opt("V intersect V", 2), "V");
        assert_eq!(opt("pi[0](V) union pi[0](V)", 2), "pi[0](V)");
        // Different subplans do not collapse.
        assert_eq!(
            opt("pi[0](V) union pi[1](V)", 2),
            "(pi[0](V) union pi[1](V))"
        );
    }

    #[test]
    fn trivial_selections_vanish() {
        assert_eq!(opt("sigma[true](V)", 2), "V");
        assert_eq!(opt("sigma[and()](V)", 2), "V");
        // Column-free conjuncts are decided at plan time (the remaining
        // spanning equality then keys a join).
        assert_eq!(opt("sigma[and(1=1,#0=#1)](V x V)", 1), "join[#0=#1](V, V)");
        assert_eq!(opt("sigma[and(1=2,#0=#1)](V x V)", 1), "{:2}");
    }

    #[test]
    fn folds_constant_subtrees() {
        assert_eq!(opt("{(1),(2)} union {(2),(3)}", 1), "{(1),(2),(3)}");
        assert_eq!(opt("sigma[#0=1]({(1),(2)})", 1), "{(1)}");
        assert_eq!(opt("pi[1]({(1,2)})", 1), "{(2)}");
        assert_eq!(opt("{(1)} x {(2)}", 1), "{(1,2)}");
        assert_eq!(opt("{(1),(2)} diff {(2)}", 1), "{(1)}");
        assert_eq!(opt("{(1),(2)} intersect {(2),(3)}", 1), "{(2)}");
        // Constant folding composes with the input-dependent part.
        assert_eq!(opt("V union ({(1)} diff {(1)})", 1), "V");
    }

    #[test]
    fn optimized_queries_still_evaluate_identically() {
        let i = instance![[1, 10], [2, 20], [3, 10]];
        for src in [
            "sigma[#0=1](sigma[#1=10](V))",
            "sigma[and(#1=10,#2=20,#1=#3)](V x V)",
            "pi[1](pi[1,0](V))",
            "sigma[#0=2](V union V)",
            "(V diff V) union sigma[true](V)",
            "pi[0,1](V) intersect pi[0,1](V)",
        ] {
            let q = parse(src).unwrap();
            let o = optimize(&q, 2).unwrap();
            assert_eq!(q.eval(&i).unwrap(), o.eval(&i).unwrap(), "query {src}");
        }
    }

    #[test]
    fn optimize_rejects_ill_typed_input() {
        assert!(optimize(&parse("pi[9](V)").unwrap(), 2).is_err());
    }

    #[test]
    fn deep_pushdown_reaches_fixpoint_within_bound() {
        // σ over a four-deep product chain: the selection must descend
        // all the way to the leftmost factor.
        let src = "sigma[#0=1](V x (V x (V x V)))";
        let out = opt(src, 1);
        assert_eq!(out, "(sigma[#0=1](V) x (V x (V x V)))");
    }

    #[test]
    fn stats_report_convergence_and_pass_counts() {
        // Already-optimal plan: one certifying pass.
        let flat = Plan::from_query(&parse("V").unwrap(), 2).unwrap();
        let (out, stats) = optimize_plan_stats(&flat);
        assert_eq!(out, flat);
        assert_eq!(stats.passes, 1);
        assert!(stats.converged);

        // A rewrite-heavy plan converges within its bound, strictly
        // under the budget, and the pass counter says how fast.
        let deep =
            Plan::from_query(&parse("sigma[#0=1](sigma[#1=2](V x (V x V)))").unwrap(), 1).unwrap();
        let (opt1, stats) = optimize_plan_stats(&deep);
        assert!(stats.converged);
        assert!(stats.passes <= 2 * deep.depth() + 2);
        // Convergence is exactly idempotence: re-optimizing is a no-op
        // that certifies in one pass.
        let (opt2, stats2) = optimize_plan_stats(&opt1);
        assert_eq!(opt1, opt2);
        assert_eq!(stats2.passes, 1);
    }

    #[test]
    fn optimizer_passes_through_named_relations() {
        use ipdb_rel::Schema;
        let schema = Schema::new([("R", 2), ("S", 2)]).unwrap();
        let q = parse("sigma[#0=#2](R x S)").unwrap();
        let o = optimize_in(&q, &schema).unwrap();
        assert_eq!(render(&o), "join[#0=#2](R, S)");
        // Idempotent-set-op collapse compares whole subtrees, so two
        // *different* relations do not collapse but equal ones do.
        assert_eq!(opt_in("R union R", &schema), "R");
        assert_eq!(opt_in("R union S", &schema), "(R union S)");
        assert_eq!(opt_in("R diff R", &schema), "{:2}");
    }

    fn opt_in(src: &str, schema: &ipdb_rel::Schema) -> String {
        render(&optimize_in(&parse(src).unwrap(), schema).unwrap())
    }
}
