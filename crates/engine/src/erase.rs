//! The morsel executor's audited concurrency core: the persistent
//! worker pool, the completion [`Latch`]/[`WaitGuard`] pair, and the
//! **one** lifetime-erasing `transmute` in the workspace — confined to
//! this module so the `forbid-unsafe-drift` lint can pin every other
//! module unsafe-free and `ipdb-analyze` can audit the whole unsafe
//! surface in one place.
//!
//! # The erasure invariant
//!
//! [`fan_out`] hands borrowed closures to `'static` pool workers. That
//! is sound because of one guarantee this module upholds everywhere,
//! including across panics:
//!
//! > `fan_out` does not return — and does not let an unwind escape —
//! > until every job it submitted has finished running.
//!
//! The pieces that deliver it:
//!
//! * every submitted job arrives at the latch exactly once, even when
//!   its payload panics (the panic is caught first, the arrival is the
//!   last thing the job does);
//! * [`WaitGuard`] blocks in `Drop` until the expected number of
//!   arrivals, so the borrow is protected on the normal return path
//!   *and* while the caller's own panic unwinds;
//! * the latch counts arrivals under a mutex (no lost wakeup when an
//!   arrival lands before the waiter blocks) and each job arrives once
//!   (no double-release) — pinned by the exhaustive schedule
//!   permutation tests below.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// A type-erased pool job. Jobs are `'static`: [`fan_out`] erases the
/// borrow lifetime of its task and re-establishes safety by never
/// returning (or unwinding) before every job it submitted has finished.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The persistent worker pool behind [`fan_out`]. Thread creation is
/// far too slow on some hosts (hundreds of microseconds under
/// hardened/virtualized kernels) to pay per pipeline stage, so workers
/// are spawned once, park on a condvar between stages, and are shared
/// by every executor invocation in the process. Workers created for one
/// stage are reused by all later ones; the pool only ever grows, up to
/// the executor's worker clamp.
struct Pool {
    shared: Arc<PoolShared>,
    /// Worker threads spawned so far (the pool only grows).
    spawned: Mutex<usize>,
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                wake: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        })
    }

    /// Grows the pool toward `want` parked workers and returns how many
    /// exist. Thread-spawn failure is degradation, not death: a host
    /// that cannot spawn more threads gets fewer workers (possibly
    /// zero) and the calling thread still drives every morsel itself.
    fn ensure_workers(&self, want: usize) -> usize {
        let mut spawned = self.spawned.lock().unwrap_or_else(PoisonError::into_inner);
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            let worker = std::thread::Builder::new()
                .name(format!("ipdb-morsel-{spawned}"))
                .spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            match q.pop_front() {
                                Some(job) => break job,
                                None => {
                                    // Park/wake gauges use the global flag:
                                    // no ExecConfig reaches the worker loop.
                                    if ipdb_obs::enabled() {
                                        ipdb_obs::incr("pool.parks");
                                    }
                                    q = shared.wake.wait(q).unwrap_or_else(PoisonError::into_inner);
                                    if ipdb_obs::enabled() {
                                        ipdb_obs::incr("pool.wakes");
                                    }
                                }
                            }
                        }
                    };
                    job();
                });
            if worker.is_err() {
                break;
            }
            *spawned += 1;
        }
        *spawned
    }

    fn submit(&self, job: Job) {
        if ipdb_obs::enabled() {
            ipdb_obs::incr("pool.jobs");
        }
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
        self.shared.wake.notify_one();
    }
}

/// Counts job completions; [`fan_out`] blocks on it (via [`WaitGuard`])
/// until every job it submitted has arrived.
///
/// The count lives under a mutex and `wait_for` re-checks it after
/// every wakeup, so an arrival that lands *before* the waiter first
/// blocks is never lost — the waiter observes the count, not an event.
struct Latch {
    done: Mutex<usize>,
    wake: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: Mutex::new(0),
            wake: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done += 1;
        self.wake.notify_all();
    }

    fn wait_for(&self, n: usize) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < n {
            done = self.wake.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Current arrival count (test observability for the
    /// no-double-release pin).
    #[cfg(test)]
    fn count(&self) -> usize {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Blocks on drop until `expected` jobs have arrived at the latch —
/// including during a panic unwind, which is what makes the lifetime
/// erasure in [`fan_out`] sound.
struct WaitGuard<'a> {
    latch: &'a Latch,
    expected: usize,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.latch.wait_for(self.expected);
    }
}

/// Runs `task` once on the calling thread and concurrently on up to
/// `extra` pool workers, returning only after **every** started
/// invocation has completed — on the normal return path and on unwind
/// alike.
///
/// Panic containment: a panic in the caller's own invocation is
/// re-raised with its original payload once all workers have arrived; a
/// panic in a worker's invocation is caught at the job boundary (the
/// worker still arrives, so no borrow leaks and no wakeup is lost) and
/// re-raised on the caller as a `"morsel pool worker panicked"` panic.
/// Either way the pool stays usable for the next stage.
///
/// On a host where worker threads cannot be spawned, fewer (possibly
/// zero) extra invocations run — parallelism degrades, answers don't:
/// the caller's invocation always runs, and the morsel counter the
/// executor wraps in `task` hands out every remaining morsel to it.
pub(crate) fn fan_out(extra: usize, task: &(dyn Fn() + Sync)) {
    let pool = Pool::global();
    let available = pool.ensure_workers(extra);
    let finished = Latch::new();
    let worker_panicked = AtomicBool::new(false);
    let job = || {
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            // ORDERING: Release pairs with the Acquire load after the
            // guard's wait below. The latch mutex would in fact give the
            // same happens-before edge today, but this flag must not
            // depend on the Latch's internals for its visibility — the
            // pairing makes the publication local and audit-stable.
            worker_panicked.store(true, Ordering::Release);
        }
        finished.arrive();
    };
    let job_ref: &(dyn Fn() + Sync) = &job;
    // SAFETY: the erased borrows (`job` and everything it captures —
    // `task`, `finished`, `worker_panicked` — live in this frame)
    // cannot outlive the frame: `guard` blocks — on return AND on
    // unwind — until every submitted job has arrived at `finished`, an
    // arrival is the last thing a job does, and pool workers drop each
    // job as soon as it runs.
    let job_static: &'static (dyn Fn() + Sync + 'static) = unsafe { std::mem::transmute(job_ref) };
    let mut guard = WaitGuard {
        latch: &finished,
        expected: 0,
    };
    // Never submit more jobs than live workers: on a degraded host a
    // job nobody ever picks up would leave the guard waiting forever.
    for _ in 0..extra.min(available) {
        pool.submit(Box::new(job_static));
        guard.expected += 1;
    }
    let caller = catch_unwind(AssertUnwindSafe(task));
    drop(guard);
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    // ORDERING: Acquire pairs with the Release store in the job wrapper;
    // every arrival precedes the guard's return, so a set flag is
    // visible here without leaning on the latch's lock.
    if worker_panicked.load(Ordering::Acquire) {
        panic!("morsel pool worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    /// A deterministic step sequencer: each event thread blocks until
    /// the clock reaches its assigned step, acts, then advances the
    /// clock — so one test run executes one exact interleaving.
    struct Clock {
        step: Mutex<usize>,
        cv: Condvar,
    }

    impl Clock {
        fn new() -> Clock {
            Clock {
                step: Mutex::new(0),
                cv: Condvar::new(),
            }
        }

        fn reach(&self, s: usize) {
            let mut cur = self.step.lock().unwrap();
            while *cur < s {
                cur = self.cv.wait(cur).unwrap();
            }
        }

        fn advance(&self) {
            *self.step.lock().unwrap() += 1;
            self.cv.notify_all();
        }
    }

    /// One exact interleaving of {worker arrival, worker arrival,
    /// caller-begins-waiting}, with each worker's payload optionally
    /// panicking first (contained at the job boundary, as in
    /// [`fan_out`]). Runs under a watchdog: a lost wakeup would
    /// deadlock the schedule, and the watchdog turns that into a
    /// failure instead of a hung suite.
    fn run_latch_schedule(wait_pos: usize, panics: [bool; 2]) {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let latch = Arc::new(Latch::new());
            let clock = Arc::new(Clock::new());
            let arrival_steps: Vec<usize> = (0..3).filter(|&s| s != wait_pos).collect();
            let handles: Vec<_> = arrival_steps
                .iter()
                .enumerate()
                .map(|(i, &step)| {
                    let latch = Arc::clone(&latch);
                    let clock = Arc::clone(&clock);
                    let payload_panics = panics[i];
                    std::thread::spawn(move || {
                        clock.reach(step);
                        if payload_panics {
                            // The fan_out contract: the payload's panic
                            // is caught, the arrival still happens.
                            let caught = catch_unwind(|| panic!("payload {i}"));
                            assert!(caught.is_err());
                        }
                        latch.arrive();
                        clock.advance();
                    })
                })
                .collect();
            clock.reach(wait_pos);
            // Advance before blocking so later-scheduled arrivals can
            // proceed while this thread waits.
            clock.advance();
            // No lost wakeup: must return in every permutation,
            // including both arrivals landing before the wait begins.
            latch.wait_for(2);
            for h in handles {
                h.join().unwrap();
            }
            // No double-release: exactly one arrival per worker.
            assert_eq!(latch.count(), 2);
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| {
                panic!("schedule deadlocked (lost wakeup): wait_pos={wait_pos} panics={panics:?}")
            });
    }

    #[test]
    fn latch_survives_every_schedule_permutation() {
        // 3 positions for the wait × 4 payload-panic combinations = 12
        // exact interleavings of worker-finish vs caller-wait vs
        // payload-panic.
        for wait_pos in 0..3 {
            for panics in [[false, false], [true, false], [false, true], [true, true]] {
                run_latch_schedule(wait_pos, panics);
            }
        }
    }

    #[test]
    fn wait_guard_blocks_during_unwind_until_all_arrivals() {
        let latch = Latch::new();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            let latch = &latch;
            s.spawn(move || {
                // Released only once the unwind is already in flight;
                // the sleep widens the window in which a broken guard
                // would finish unwinding without waiting.
                go_rx.recv().unwrap();
                std::thread::sleep(Duration::from_millis(50));
                latch.arrive();
            });
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _guard = WaitGuard { latch, expected: 1 };
                go_tx.send(()).unwrap();
                panic!("caller payload");
            }));
            assert!(result.is_err());
            // The guard's Drop ran during the unwind and can only have
            // returned after the arrival it was guarding.
            assert_eq!(latch.count(), 1);
        });
    }

    #[test]
    fn fan_out_runs_caller_plus_extra_invocations() {
        for extra in [0usize, 1, 3] {
            let calls = AtomicUsize::new(0);
            fan_out(extra, &|| {
                calls.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(calls.load(Ordering::SeqCst), extra + 1);
        }
    }

    #[test]
    fn fan_out_contains_panics_and_pool_survives() {
        let boom = catch_unwind(|| fan_out(2, &|| panic!("payload")));
        assert!(boom.is_err());
        // The pool is immediately usable for the next stage.
        let calls = AtomicUsize::new(0);
        fan_out(2, &|| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }
}
