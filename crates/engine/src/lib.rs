//! # `ipdb-engine` — the query pipeline
//!
//! The paper's central claim is uniformity: *one* relational algebra
//! evaluates over complete instances (§2), c-tables (Theorem 4), and
//! probabilistic c-tables (Theorem 9). This crate turns that claim into
//! an engine with a conventional four-stage pipeline:
//!
//! 1. **parse** ([`parser`]) — a compact textual RA surface syntax
//!    (`pi`, `sigma`, `join`, `x`, `union`, `diff`, `intersect`, 0-based
//!    column refs `#i`, relation literals) producing the [`Query`] AST,
//!    with a canonical renderer such that `parse(render(q)) == q`;
//! 2. **plan** ([`plan`]) — an arity-annotated logical plan IR,
//!    well-typed by construction (join key pairs must span the join's
//!    operands, and are deduplicated);
//! 3. **optimize** ([`optimize()`]) — rule-based rewrites (selection
//!    pushdown, predicate fusion, **equijoin recognition** turning
//!    `σ_eq(a × b)` into a hash-executed `Join` node, projection
//!    pruning, dead-branch elimination, idempotent set ops, constant
//!    folding), each a worldwise identity, iterated to a fixpoint
//!    bounded by [`Query::depth`];
//! 4. **execute** ([`backend`]) — the [`Backend`] trait, implemented by
//!    [`Instance`](ipdb_rel::Instance), [`CTable`](ipdb_tables::CTable)
//!    (with [`simplified`](ipdb_tables::CTable::simplified) condition
//!    pruning), and [`PcTable`](ipdb_prob::PcTable), so one prepared
//!    plan runs under all three semantics. Joins hash on their key
//!    columns: instances bucket the build side outright, while c-/pc-
//!    tables bucket the rows whose key columns are *ground* and fall
//!    back to condition-conjunction pairing for rows with variable keys,
//!    preserving the c-table semantics exactly.
//!
//! The `Instance` backend executes through the columnar, morsel-parallel
//! evaluator in [`morsel`]: leaves convert to `ipdb-rel`'s
//! [`ColumnarInstance`](ipdb_rel::ColumnarInstance) batches, the
//! data-intensive kernels (selection masks, hash-join probes, row
//! materialization) are split into fixed-size morsels drained by a
//! persistent worker pool, and the result is *bit-identical for every
//! thread count and morsel size*. The worker count defaults to
//! [`std::thread::available_parallelism`], overridable with
//! `IPDB_THREADS` (`IPDB_THREADS=1` forces serial execution); pass an
//! explicit [`ExecConfig`] via [`Prepared::execute_with`] /
//! [`Prepared::execute_catalog_with`] to pin it programmatically.
//!
//! ## Observability
//!
//! Every execution path has an **`EXPLAIN ANALYZE`** twin:
//! [`Prepared::execute_analyzed`] (and the `_catalog`/`_with`/
//! `answer_dist` variants) returns the identical output plus a
//! [`QueryReport`] — per-operator cardinalities, selectivities,
//! inclusive/exclusive timings, the hash join's build-side choice, rows
//! pruned by c-table condition simplification, the optimizer's pass
//! count, and (for probabilistic answering) the shared `BddManager`'s
//! counters. [`Prepared::explain_analyze`] renders it as an annotated
//! plan tree. Engine internals additionally report into the `ipdb-obs`
//! counter registry (worker-pool gauges, morsel/stage counts) when
//! metrics are enabled via `IPDB_METRICS=1` or
//! [`ExecConfig::metrics`]; the plain `execute` path records nothing
//! when metrics are off.
//!
//! ```
//! use ipdb_engine::{parser, Engine};
//! use ipdb_rel::instance;
//!
//! // Parse the surface syntax; `#i` and `pi[...]` columns are 0-based.
//! let q = parser::parse("pi[0](sigma[and(#1=#2, #3!=7)](V x V))").unwrap();
//! assert_eq!(parser::parse(&parser::render(&q)).unwrap(), q);
//!
//! // Prepare once (plan + optimize), execute on any backend.
//! let stmt = Engine::new().prepare(&q, 2).unwrap();
//! let chain = instance![[1, 2], [2, 3]];
//! assert_eq!(stmt.execute(&chain).unwrap(), instance![[1]]);
//! println!("{}", stmt.explain());
//! ```
//!
//! A selection over a product whose predicate equates one column of each
//! factor is recognized as an equijoin and executed as a hash join — the
//! optimized plan shows a `join` node keyed on the spanning equality:
//!
//! ```
//! use ipdb_engine::Engine;
//!
//! let stmt = Engine::new().prepare_text("sigma[#0=#2](V x V)", 2).unwrap();
//! assert!(stmt.explain().contains("join[#0=#2]  (arity 4)"));
//!
//! // The explicit surface form prepares to the same plan.
//! let explicit = Engine::new().prepare_text("join[#0=#2](V, V)", 2).unwrap();
//! assert_eq!(explicit.plan(), stmt.plan());
//! ```
//!
//! ## Named relations
//!
//! The paper's §2 footnote ("everything we say can be easily
//! reformulated for arbitrary relational schemas") is first-class: any
//! identifier that is not a reserved word names a relation, queries
//! prepare against a [`Schema`] (`name → arity`), and execution takes a
//! [`Catalog`] (`name → relation`) of any backend. `V`/`W` stay as the
//! reserved names of the classic one- and two-relation contexts, so
//! every single-input query is the special case of a `{"V": …}`
//! catalog. A pc-table catalog shares one variable namespace across its
//! relations — and [`Prepared::answer_dist_catalog`] compiles the whole
//! answer's conditions with one shared `BddManager`.
//!
//! ## Serving
//!
//! The [`serve`] module stacks a serving layer on top of catalogs: a
//! [`PlanCache`] (LRU of `Arc<`[`Prepared`]`>` keyed by canonical query
//! text **and** schema — see [`cache`]), [`SnapshotCatalog`]
//! (copy-on-write catalog versions; readers take `Arc` snapshots and
//! never block on writers), and a multithreaded [`Server`] request
//! loop with per-request panic isolation. Catalog relations are
//! `Arc`-shared and executor leaves borrow them, so a hot 100k-row
//! relation is *not* copied per request.
//!
//! ```
//! use ipdb_engine::{Catalog, Engine, Schema};
//! use ipdb_rel::{instance, Instance};
//!
//! let schema = Schema::new([("R", 2), ("S", 2)]).unwrap();
//! let stmt = Engine::new()
//!     .prepare_text_schema("join[#0=#2](R, S)", &schema)
//!     .unwrap();
//! let cat: Catalog<Instance> = [
//!     ("R", instance![[1, 2], [5, 6]]),
//!     ("S", instance![[1, 9], [6, 0]]),
//! ]
//! .into_iter()
//! .collect();
//! assert_eq!(
//!     stmt.execute_catalog(&cat).unwrap(),
//!     instance![[1, 2, 1, 9]],
//! );
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
mod erase;
pub mod error;
pub mod morsel;
pub mod optimize;
pub mod parser;
pub mod pipeline;
pub mod plan;
pub mod report;
pub mod serve;

pub use backend::{Backend, Catalog};
pub use cache::PlanCache;
pub use error::EngineError;
pub use morsel::ExecConfig;
pub use optimize::{optimize, optimize_in, optimize_plan, optimize_plan_stats, OptimizeStats};
pub use parser::{is_relation_name, parse, render};
pub use pipeline::{Engine, Prepared};
pub use plan::{Plan, PlanNode};
pub use report::{OpReport, QueryReport};
pub use serve::{
    Reply, Request, ServeError, Server, ServerConfig, Snapshot, SnapshotCatalog, Ticket,
};

// Re-exported so doctests and downstream callers can name the AST types
// without an explicit `ipdb-rel` dependency.
pub use ipdb_rel::{Pred, Query, Schema};
