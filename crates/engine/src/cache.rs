//! The plan cache: an engine-level LRU of shared [`Prepared`]
//! statements.
//!
//! Preparing a statement (parse → plan → optimizer fixpoint → lowering)
//! is the expensive per-request step a server pays before any tuple
//! moves; a traffic workload repeats the same handful of query shapes,
//! so [`PlanCache`] memoizes `prepare` behind a key that is **exactly**
//! the statement's identity:
//!
//! * the **canonical render string** — PR 2's `parse(render(q)) == q`
//!   invariant makes `render(parse(text))` a canonical form, so
//!   differently-spelled texts of the same query share one entry;
//! * **and the [`Schema`]** — the same text prepared against different
//!   schemas yields different plans (different leaf arities, different
//!   optimizer decisions). Keying by text alone would hand a statement
//!   prepared for `{R:1}` to a request over `{R:2}`; the schema
//!   component is load-bearing, and `tests/cache_oracle.rs` pins the
//!   regression.
//!
//! On top of the canonical map sits a **raw-text alias** layer: once a
//! text has been seen, the hot path resolves it with one map lookup and
//! no parse at all. Eviction is LRU by a monotonic touch stamp, scanned
//! at eviction time only (the cache is small; misses are rare by
//! design). Entries are `Arc<Prepared>`, so an evicted statement stays
//! valid for requests already holding it.
//!
//! Hit/miss totals are kept in local atomics (always on, race-free) and
//! mirrored into the global `ipdb-obs` registry as `serve.cache.hits` /
//! `serve.cache.misses` when metrics are [`ipdb_obs::enabled`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use ipdb_rel::{Query, Schema};

use crate::error::EngineError;
use crate::parser;
use crate::pipeline::{Engine, Prepared};

/// The `ipdb-obs` counter mirroring [`PlanCache::hits`].
pub const OBS_CACHE_HITS: &str = "serve.cache.hits";
/// The `ipdb-obs` counter mirroring [`PlanCache::misses`].
pub const OBS_CACHE_MISSES: &str = "serve.cache.misses";

/// One cached statement: the shared plan, its LRU touch stamp, and the
/// raw texts aliased to it (removed together with it on eviction).
#[derive(Debug)]
struct Entry {
    plan: Arc<Prepared>,
    stamp: u64,
    aliases: Vec<String>,
}

/// Per-schema shard: raw text → canonical text, canonical text → entry.
/// Sharding by schema makes the hot lookup allocation-free (borrowed
/// `&Schema` then `&str` key lookups) and makes cross-schema collisions
/// structurally impossible.
#[derive(Debug, Default)]
struct Shard {
    aliases: BTreeMap<String, String>,
    entries: BTreeMap<String, Entry>,
}

#[derive(Debug, Default)]
struct Inner {
    clock: u64,
    len: usize,
    shards: BTreeMap<Schema, Shard>,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evicts the least-recently-touched entry (and its aliases) across
    /// all shards. O(entries), paid only on an at-capacity miss.
    fn evict_lru(&mut self) {
        let victim = self
            .shards
            .iter()
            .flat_map(|(schema, shard)| {
                shard
                    .entries
                    .iter()
                    .map(move |(canon, e)| (e.stamp, schema.clone(), canon.clone()))
            })
            .min_by_key(|(stamp, _, _)| *stamp);
        // The victim was found by iterating `self.shards`, so its shard
        // is present; an `if let` keeps this total instead of asserting.
        if let Some((_, schema, canon)) = victim {
            let Some(shard) = self.shards.get_mut(&schema) else {
                return;
            };
            let empty = {
                if let Some(entry) = shard.entries.remove(&canon) {
                    for alias in entry.aliases {
                        shard.aliases.remove(&alias);
                    }
                    self.len -= 1;
                }
                shard.entries.is_empty()
            };
            if empty {
                self.shards.remove(&schema);
            }
        }
    }
}

/// A thread-safe LRU cache of prepared statements, keyed by
/// **(canonical render string, [`Schema`])**. See the module docs for
/// the design; see [`PlanCache::prepare_text`] for the lookup protocol.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` distinct statements
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached statements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached statements (aliases don't count).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups answered from the cache since construction (or the
    /// last [`PlanCache::clear`]).
    pub fn hits(&self) -> u64 {
        // ORDERING: Relaxed — a monotonic statistic read on its own; no
        // other data is synchronized through it, and a count that lags a
        // concurrent lookup by one is indistinguishable from having read
        // a moment earlier.
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that had to run `prepare` since construction (or
    /// the last [`PlanCache::clear`]). Parse/plan *errors* count as
    /// neither — nothing was cached or served.
    pub fn misses(&self) -> u64 {
        // ORDERING: Relaxed — same statistic-only contract as `hits`.
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every entry and zeroes the hit/miss counters.
    pub fn clear(&self) {
        *self.lock() = Inner::default();
        // ORDERING: Relaxed — the zeroing races benignly with concurrent
        // lookups (a count bumped around a clear lands on either side of
        // it); entry visibility is carried by the mutex above, never by
        // these counters.
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// The cached equivalent of [`Engine::prepare_text_schema`].
    ///
    /// Protocol: (1) one lock, alias lookup — the warm path returns
    /// here without parsing; (2) parse outside the lock, canonical
    /// lookup — a differently-spelled hit installs the new alias;
    /// (3) prepare outside the lock, insert (or adopt a racing
    /// insert of the same key), evicting LRU entries over capacity.
    pub fn prepare_text(
        &self,
        engine: &Engine,
        text: &str,
        schema: &Schema,
    ) -> Result<Arc<Prepared>, EngineError> {
        // Fast path: raw text already aliased for this schema.
        {
            let mut inner = self.lock();
            let stamp = inner.touch();
            if let Some(shard) = inner.shards.get_mut(schema) {
                let Shard { aliases, entries } = shard;
                if let Some(canon) = aliases.get(text) {
                    if let Some(entry) = entries.get_mut(canon) {
                        entry.stamp = stamp;
                        let plan = Arc::clone(&entry.plan);
                        drop(inner);
                        self.record_hit();
                        return Ok(plan);
                    }
                }
            }
        }
        // Parse (outside the lock — pure) and go through the canonical
        // key, remembering the raw spelling as an alias on success.
        let q = parser::parse(text)?;
        let canonical = parser::render(&q);
        let alias = (text != canonical).then(|| text.to_string());
        self.prepare_canonical(engine, &q, canonical, alias, schema)
    }

    /// The cached equivalent of [`Engine::prepare_schema`] for an
    /// already-parsed query (no alias layer: the canonical render *is*
    /// the key).
    pub fn prepare(
        &self,
        engine: &Engine,
        q: &Query,
        schema: &Schema,
    ) -> Result<Arc<Prepared>, EngineError> {
        self.prepare_canonical(engine, q, parser::render(q), None, schema)
    }

    fn prepare_canonical(
        &self,
        engine: &Engine,
        q: &Query,
        canonical: String,
        alias: Option<String>,
        schema: &Schema,
    ) -> Result<Arc<Prepared>, EngineError> {
        // Canonical lookup (the text was spelled differently, or this
        // is a `prepare(q)` call).
        {
            let mut inner = self.lock();
            let stamp = inner.touch();
            if let Some(shard) = inner.shards.get_mut(schema) {
                if let Some(entry) = shard.entries.get_mut(&canonical) {
                    entry.stamp = stamp;
                    let plan = Arc::clone(&entry.plan);
                    if let Some(alias) = alias {
                        entry.aliases.push(alias.clone());
                        shard.aliases.insert(alias, canonical);
                    }
                    drop(inner);
                    self.record_hit();
                    return Ok(plan);
                }
            }
        }
        // Miss: prepare outside the lock (two threads may race on the
        // same cold key and both prepare; the loser's work is identical
        // and the first insert wins).
        let plan = Arc::new(engine.prepare_schema(q, schema)?);
        let plan = {
            let mut inner = self.lock();
            let stamp = inner.touch();
            let shard = inner.shards.entry(schema.clone()).or_default();
            let (plan, inserted) = match shard.entries.get_mut(&canonical) {
                Some(entry) => {
                    // A racing thread beat us to it; adopt its plan.
                    entry.stamp = stamp;
                    (Arc::clone(&entry.plan), false)
                }
                None => {
                    shard.entries.insert(
                        canonical.clone(),
                        Entry {
                            plan: Arc::clone(&plan),
                            stamp,
                            aliases: alias.iter().cloned().collect(),
                        },
                    );
                    (plan, true)
                }
            };
            if let Some(alias) = alias {
                shard.aliases.insert(alias, canonical);
            }
            if inserted {
                inner.len += 1;
                while inner.len > self.capacity {
                    inner.evict_lru();
                }
            }
            plan
        };
        self.record_miss();
        Ok(plan)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only come from allocation
        // failure mid-insert; the map structure itself is still sound,
        // so recover rather than poisoning every later request.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn record_hit(&self) {
        // ORDERING: Relaxed — atomicity keeps the tally exact under
        // concurrent bumps; nothing reads other data through it.
        self.hits.fetch_add(1, Ordering::Relaxed);
        if ipdb_obs::enabled() {
            ipdb_obs::incr(OBS_CACHE_HITS);
        }
    }

    fn record_miss(&self) {
        // ORDERING: Relaxed — same exact-tally contract as `record_hit`.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if ipdb_obs::enabled() {
            ipdb_obs::incr(OBS_CACHE_MISSES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_rel::instance;

    fn engine() -> Engine {
        Engine::new()
    }

    #[test]
    fn hit_returns_the_same_arc_and_counts() {
        let cache = PlanCache::new(8);
        let schema = Schema::single(2);
        let a = cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm lookup must share the plan");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn non_canonical_spellings_share_one_entry() {
        let cache = PlanCache::new(8);
        let schema = Schema::single(1);
        // Same query, two spellings (whitespace is not canonical).
        let a = cache
            .prepare_text(&engine(), "sigma[#0=1]( V )", &schema)
            .unwrap();
        let b = cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1, "one statement, two aliases");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Both spellings are now warm (no parse, alias fast path).
        cache
            .prepare_text(&engine(), "sigma[#0=1]( V )", &schema)
            .unwrap();
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn same_text_different_schemas_are_distinct_entries() {
        // The cross-schema key-collision regression: "R" means an
        // arity-1 scan under {R:1} and an arity-2 scan under {R:2}; the
        // cache must never serve one for the other.
        let cache = PlanCache::new(8);
        let s1 = Schema::new([("R", 1)]).unwrap();
        let s2 = Schema::new([("R", 2)]).unwrap();
        let p1 = cache.prepare_text(&engine(), "R", &s1).unwrap();
        let p2 = cache.prepare_text(&engine(), "R", &s2).unwrap();
        assert_eq!(cache.misses(), 2, "distinct schemas must not collide");
        assert_eq!(p1.output_arity(), 1);
        assert_eq!(p2.output_arity(), 2);
        // And the cached statements really execute at their arities.
        let c1: crate::Catalog<ipdb_rel::Instance> = [("R", instance![[7]])].into_iter().collect();
        assert_eq!(p1.execute_catalog(&c1).unwrap(), instance![[7]]);
        let c2: crate::Catalog<ipdb_rel::Instance> =
            [("R", instance![[7, 8]])].into_iter().collect();
        assert_eq!(p2.execute_catalog(&c2).unwrap(), instance![[7, 8]]);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        let schema = Schema::single(1);
        cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        cache
            .prepare_text(&engine(), "sigma[#0=2](V)", &schema)
            .unwrap();
        // Touch the first so the second is now coldest.
        cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        cache
            .prepare_text(&engine(), "sigma[#0=3](V)", &schema)
            .unwrap();
        assert_eq!(cache.len(), 2);
        // #0=1 survived (still warm); #0=2 was evicted (miss again).
        cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        let misses = cache.misses();
        cache
            .prepare_text(&engine(), "sigma[#0=2](V)", &schema)
            .unwrap();
        assert_eq!(cache.misses(), misses + 1, "evicted entry must re-prepare");
    }

    #[test]
    fn capacity_one_still_serves_and_cleans_aliases() {
        let cache = PlanCache::new(1);
        let schema = Schema::single(1);
        let a = cache
            .prepare_text(&engine(), "sigma[#0=1]( V )", &schema)
            .unwrap();
        // Displace it; its alias must go with it.
        cache
            .prepare_text(&engine(), "sigma[#0=2](V)", &schema)
            .unwrap();
        assert_eq!(cache.len(), 1);
        let a2 = cache
            .prepare_text(&engine(), "sigma[#0=1]( V )", &schema)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &a2), "the entry was really evicted");
        assert_eq!(*a, *a2, "but re-preparing yields an equal statement");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prepare_by_query_and_by_text_share_entries() {
        let cache = PlanCache::new(4);
        let schema = Schema::single(1);
        let q = parser::parse("sigma[#0=1](V)").unwrap();
        let a = cache.prepare(&engine(), &q, &schema).unwrap();
        let b = cache
            .prepare_text(&engine(), "sigma[#0=1](V)", &schema)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn parse_errors_propagate_and_count_nothing() {
        let cache = PlanCache::new(4);
        let schema = Schema::single(1);
        assert!(cache.prepare_text(&engine(), "pi[4(V)", &schema).is_err());
        // Ill-typed (well-formed but wrong arity) also propagates.
        assert!(cache.prepare_text(&engine(), "pi[4](V)", &schema).is_err());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = PlanCache::new(4);
        let schema = Schema::single(1);
        cache.prepare_text(&engine(), "V", &schema).unwrap();
        cache.prepare_text(&engine(), "V", &schema).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.capacity(), 4);
    }
}
