//! The execution backends: one planned query, three semantics — over
//! one relation or a named catalog of them.
//!
//! [`Backend`] abstracts "something a [`Query`] can run against". The
//! three models the paper relates all implement it:
//!
//! * [`Instance`] — conventional evaluation (§2);
//! * [`CTable`] — the c-table algebra `q̄` of Theorem 4, with the output
//!   passed through [`CTable::simplified`] so composed row conditions
//!   are re-folded;
//! * [`PcTable`] — Theorem 9 closure: `q̄` on the underlying c-table
//!   with the variable distributions carried along (and the same
//!   condition simplification applied).
//!
//! [`Catalog`] generalizes the input side to the §2 footnote's
//! "arbitrary relational schemas": a `name → relation` map, executed by
//! [`Backend::run_catalog`]. The reserved names `V`/`W` make the
//! classic one- and two-relation contexts ordinary catalogs, and a
//! pc-table catalog shares **one variable namespace** across all of its
//! relations — a variable appearing in two relations is the *same*
//! random variable (its distributions must agree,
//! [`ProbError::ConflictingDistribution`] otherwise), which is how
//! cross-relation correlation is expressed.
//!
//! Because every optimizer rewrite is a worldwise identity, a plan
//! prepared once executes on any backend with the same meaning — which
//! is the paper's uniformity claim made operational.
//!
//! [`ProbError::ConflictingDistribution`]: ipdb_prob::ProbError::ConflictingDistribution

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

use ipdb_prob::{PcTable, Weight};
use ipdb_rel::{Instance, Query, RelError, Schema};
use ipdb_tables::{CTable, TableError};

use crate::error::EngineError;
use crate::morsel::ExecConfig;
use crate::report::{query_label, OpReport};

/// A named collection of relations of one backend type — the execution
/// input for queries over a multi-relation [`Schema`].
///
/// Names are arbitrary here; the planner is what enforces surface-
/// syntax validity on the names a *query* mentions. Inserting a name
/// twice replaces the previous relation (like a map).
///
/// Relations are `Arc`-shared: cloning a catalog copies the name map
/// but none of the relation data, which is what makes copy-on-write
/// snapshots ([`crate::serve::SnapshotCatalog`]) affordable, and
/// executors borrow leaves out of the `Arc`s instead of deep-cloning a
/// relation per query.
#[derive(Debug, PartialEq)]
pub struct Catalog<B> {
    rels: BTreeMap<String, Arc<B>>,
}

impl<B> Catalog<B> {
    /// An empty catalog.
    pub fn new() -> Catalog<B> {
        Catalog {
            rels: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a relation; returns the displaced one, if any.
    pub fn insert(&mut self, name: impl Into<String>, rel: B) -> Option<Arc<B>> {
        self.rels.insert(name.into(), Arc::new(rel))
    }

    /// [`Catalog::insert`] for a relation that is already shared —
    /// no data is copied, the catalog just retains the `Arc`.
    pub fn insert_shared(&mut self, name: impl Into<String>, rel: Arc<B>) -> Option<Arc<B>> {
        self.rels.insert(name.into(), rel)
    }

    /// Removes a relation by name; returns it if it was present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<B>> {
        self.rels.remove(name)
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&B> {
        self.rels.get(name).map(Arc::as_ref)
    }

    /// Looks up a relation's shared handle by name (clone it to keep
    /// the relation alive past the catalog).
    pub fn get_shared(&self, name: &str) -> Option<&Arc<B>> {
        self.rels.get(name)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the catalog holds no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over `(name, relation)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &B)> {
        self.rels.iter().map(|(n, b)| (n.as_str(), b.as_ref()))
    }

    /// The relation names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// The underlying name → relation map (crate-internal: executors
    /// borrow it wholesale instead of going through `get` per name).
    pub(crate) fn rels(&self) -> &BTreeMap<String, Arc<B>> {
        &self.rels
    }
}

/// Cloning shares every relation (an `Arc` bump per entry, no relation
/// data copied) — which is why no `B: Clone` bound is needed.
impl<B> Clone for Catalog<B> {
    fn clone(&self) -> Self {
        Catalog {
            rels: self.rels.clone(),
        }
    }
}

impl<B> Default for Catalog<B> {
    fn default() -> Self {
        Catalog::new()
    }
}

impl<N: Into<String>, B> FromIterator<(N, B)> for Catalog<B> {
    fn from_iter<I: IntoIterator<Item = (N, B)>>(iter: I) -> Self {
        Catalog {
            rels: iter
                .into_iter()
                .map(|(n, b)| (n.into(), Arc::new(b)))
                .collect(),
        }
    }
}

impl<B: Backend> Catalog<B> {
    /// The schema this catalog implements: every relation name mapped to
    /// its arity.
    pub fn schema(&self) -> Schema {
        Schema::new(self.iter().map(|(n, b)| (n, b.input_arity())))
            // ipdb-lint: allow(no-panic-on-serve-paths) reason="the names come from the catalog's BTreeMap keys, which are unique by construction — the only failure Schema::new checks for"
            .expect("catalog names are unique by construction")
    }
}

/// The lookup error for a name a catalog (or single-table context) does
/// not bind, lifted into the table layer (one shared rule —
/// [`RelError::missing_relation`]).
fn missing_rel(name: &str) -> TableError {
    TableError::Rel(RelError::missing_relation(name))
}

/// The engine's c-table executor: the same `q̄` operators as
/// [`CTable::eval_query`], but resolving relation leaves through a
/// name-lookup context and passing every intermediate result through
/// [`CTable::simplified`] + [`CTable::without_false_rows`].
///
/// Pruning between operators is sound — a row whose condition folds to
/// `false` contributes to no possible world, so `ν(T)` is unchanged for
/// every valuation `ν`, and by Lemma 1 so is every `ν(q̄(T))` — and it
/// is what lets the optimizer's selection pushdown actually shrink a
/// product: ground rows that fail a pushed-down selection drop out of
/// the factor instead of entering the cross product carrying a `false`
/// condition.
///
/// Leaves come back **borrowed** (`Cow::Borrowed` straight out of the
/// lookup context) — a query touching a 100k-row relation no longer
/// deep-clones it per request; only operator outputs are owned. The
/// sole remaining copy is the top-level `into_owned` a caller pays when
/// the *whole* query is a bare leaf.
fn eval_ctable_pruned<'a, F>(lookup: &F, q: &Query) -> Result<Cow<'a, CTable>, TableError>
where
    F: Fn(&str) -> Result<&'a CTable, TableError>,
{
    let prune = |x: CTable| Cow::Owned(x.simplified().without_false_rows());
    Ok(match q {
        // Leaves carry no freshly-composed conditions, so pruning them
        // would only re-simplify the (possibly shared) input once per
        // occurrence; operators below prune their own outputs.
        Query::Input => Cow::Borrowed(lookup(Schema::INPUT)?),
        Query::Second => Cow::Borrowed(lookup(Schema::SECOND)?),
        Query::Rel(name) => Cow::Borrowed(lookup(name)?),
        // A literal is a ground subtable; it carries no variables, so
        // domain declarations merge in from the other operands.
        Query::Lit(i) => Cow::Owned(CTable::from_instance(i)),
        Query::Project(cols, q) => prune(eval_ctable_pruned(lookup, q)?.project_bar(cols)?),
        // Vectorized when every referenced column is ground (falls back
        // to the term-at-a-time path otherwise); `prune` makes the two
        // paths byte-identical (see `select_bar_vectorized`).
        Query::Select(p, q) => prune(eval_ctable_pruned(lookup, q)?.select_bar_vectorized(p)?),
        Query::Product(a, b) => prune(
            eval_ctable_pruned(lookup, a)?.product_bar(eval_ctable_pruned(lookup, b)?.as_ref())?,
        ),
        // The hash path of `join_bar` already skips ground-key pairs
        // whose conditions would fold to `false`; pruning still re-folds
        // the fallback pairs' composed conditions.
        Query::Join {
            on,
            residual,
            left,
            right,
        } => prune(eval_ctable_pruned(lookup, left)?.join_bar(
            eval_ctable_pruned(lookup, right)?.as_ref(),
            on,
            residual.as_ref(),
        )?),
        Query::Union(a, b) => prune(
            eval_ctable_pruned(lookup, a)?.union_bar(eval_ctable_pruned(lookup, b)?.as_ref())?,
        ),
        Query::Diff(a, b) => {
            prune(eval_ctable_pruned(lookup, a)?.diff_bar(eval_ctable_pruned(lookup, b)?.as_ref())?)
        }
        Query::Intersect(a, b) => prune(
            eval_ctable_pruned(lookup, a)?
                .intersect_bar(eval_ctable_pruned(lookup, b)?.as_ref())?,
        ),
    })
}

/// [`eval_ctable_pruned`] with per-operator tracing: same operators,
/// same pruning, same errors, but every node reports cardinalities,
/// **how many rows pruning removed** (rows whose composed condition
/// folded to `false` — the observable payoff of the pruning executor),
/// and inclusive wall-clock time. Pruned-row totals also feed the
/// global `prune.rows` counter when metrics are enabled.
fn eval_ctable_traced<'a, F>(
    lookup: &F,
    q: &Query,
) -> Result<(Cow<'a, CTable>, OpReport), TableError>
where
    F: Fn(&str) -> Result<&'a CTable, TableError>,
{
    let t0 = std::time::Instant::now();
    // `prune` additionally counts the rows it removed.
    let prune = |raw: CTable| -> (Cow<'a, CTable>, u64) {
        let before = raw.rows().len();
        let out = raw.simplified().without_false_rows();
        let pruned = (before - out.rows().len()) as u64;
        if pruned > 0 && ipdb_obs::enabled() {
            ipdb_obs::add("prune.rows", pruned);
        }
        (Cow::Owned(out), pruned)
    };
    let ((out, rows_pruned), children) = match q {
        // Leaves borrow, exactly as in `eval_ctable_pruned`.
        Query::Input => ((Cow::Borrowed(lookup(Schema::INPUT)?), 0), Vec::new()),
        Query::Second => ((Cow::Borrowed(lookup(Schema::SECOND)?), 0), Vec::new()),
        Query::Rel(name) => ((Cow::Borrowed(lookup(name)?), 0), Vec::new()),
        Query::Lit(i) => ((Cow::Owned(CTable::from_instance(i)), 0), Vec::new()),
        Query::Project(cols, q) => {
            let (c, r) = eval_ctable_traced(lookup, q)?;
            (prune(c.project_bar(cols)?), vec![r])
        }
        Query::Select(p, q) => {
            let (c, r) = eval_ctable_traced(lookup, q)?;
            (prune(c.select_bar_vectorized(p)?), vec![r])
        }
        Query::Product(a, b) => {
            let (ca, ra) = eval_ctable_traced(lookup, a)?;
            let (cb, rb) = eval_ctable_traced(lookup, b)?;
            (prune(ca.product_bar(cb.as_ref())?), vec![ra, rb])
        }
        Query::Join {
            on,
            residual,
            left,
            right,
        } => {
            let (cl, rl) = eval_ctable_traced(lookup, left)?;
            let (cr, rr) = eval_ctable_traced(lookup, right)?;
            (
                prune(cl.join_bar(cr.as_ref(), on, residual.as_ref())?),
                vec![rl, rr],
            )
        }
        Query::Union(a, b) => {
            let (ca, ra) = eval_ctable_traced(lookup, a)?;
            let (cb, rb) = eval_ctable_traced(lookup, b)?;
            (prune(ca.union_bar(cb.as_ref())?), vec![ra, rb])
        }
        Query::Diff(a, b) => {
            let (ca, ra) = eval_ctable_traced(lookup, a)?;
            let (cb, rb) = eval_ctable_traced(lookup, b)?;
            (prune(ca.diff_bar(cb.as_ref())?), vec![ra, rb])
        }
        Query::Intersect(a, b) => {
            let (ca, ra) = eval_ctable_traced(lookup, a)?;
            let (cb, rb) = eval_ctable_traced(lookup, b)?;
            (prune(ca.intersect_bar(cb.as_ref())?), vec![ra, rb])
        }
    };
    let rows_out = out.rows().len() as u64;
    let rows_in = if children.is_empty() {
        rows_out
    } else {
        children.iter().map(|c| c.rows_out).sum()
    };
    let report = OpReport {
        label: query_label(q),
        arity: out.arity(),
        rows_in,
        rows_out,
        rows_pruned,
        ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        build_left: None,
        children,
    };
    Ok((out, report))
}

/// An input relation a planned query can execute against.
pub trait Backend {
    /// The result type (each semantics is closed: instances produce
    /// instances, c-tables produce c-tables, pc-tables produce
    /// pc-tables).
    type Output;

    /// Human-readable backend name, shown in `EXPLAIN ANALYZE` headers
    /// (`"instance"`, `"c-table"`, `"pc-table"`).
    const NAME: &'static str;

    /// Arity of the input relation (checked against the plan's expected
    /// input arity before execution).
    fn input_arity(&self) -> usize;

    /// Runs a (already planned/optimized) query against this input.
    fn run(&self, q: &Query) -> Result<Self::Output, EngineError>;

    /// Runs a planned query against a named catalog of this backend
    /// type (`Input`/`Second` resolve as the reserved names `V`/`W`).
    fn run_catalog(cat: &Catalog<Self>, q: &Query) -> Result<Self::Output, EngineError>
    where
        Self: Sized;

    /// [`Backend::run_catalog`] with an explicit [`ExecConfig`].
    /// Backends without a parallel executor ignore the config (their
    /// catalog path is single-threaded already); the [`Instance`]
    /// backend routes it into the morsel executor instead of spawning
    /// a fresh default-sized pool per query — what a serving layer
    /// wants, where parallelism comes from concurrent requests.
    fn run_catalog_with(
        cat: &Catalog<Self>,
        q: &Query,
        cfg: &ExecConfig,
    ) -> Result<Self::Output, EngineError>
    where
        Self: Sized,
    {
        let _ = cfg;
        Self::run_catalog(cat, q)
    }

    /// [`Backend::run`] with per-operator tracing: the identical output
    /// plus an [`OpReport`] tree recording what each operator did.
    fn run_analyzed(&self, q: &Query) -> Result<(Self::Output, OpReport), EngineError>;

    /// [`Backend::run_catalog`] with per-operator tracing.
    fn run_catalog_analyzed(
        cat: &Catalog<Self>,
        q: &Query,
    ) -> Result<(Self::Output, OpReport), EngineError>
    where
        Self: Sized;
}

impl Backend for Instance {
    type Output = Instance;

    const NAME: &'static str = "instance";

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<Instance, EngineError> {
        // Columnar, morsel-parallel executor; bit-identical to
        // `q.eval(self)` at every thread count (see [`crate::morsel`]).
        crate::morsel::run_instance(self, q, &ExecConfig::from_env())
    }

    fn run_catalog(cat: &Catalog<Instance>, q: &Query) -> Result<Instance, EngineError> {
        crate::morsel::run_instance_map(&cat.rels, q, &ExecConfig::from_env())
    }

    fn run_catalog_with(
        cat: &Catalog<Instance>,
        q: &Query,
        cfg: &ExecConfig,
    ) -> Result<Instance, EngineError> {
        crate::morsel::run_instance_map(&cat.rels, q, cfg)
    }

    fn run_analyzed(&self, q: &Query) -> Result<(Instance, OpReport), EngineError> {
        crate::morsel::run_instance_traced(self, q, &ExecConfig::from_env())
    }

    fn run_catalog_analyzed(
        cat: &Catalog<Instance>,
        q: &Query,
    ) -> Result<(Instance, OpReport), EngineError> {
        crate::morsel::run_instance_map_traced(&cat.rels, q, &ExecConfig::from_env())
    }
}

impl Backend for CTable {
    type Output = CTable;

    const NAME: &'static str = "c-table";

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<CTable, EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            if name == Schema::INPUT {
                Ok(self)
            } else {
                Err(missing_rel(name))
            }
        };
        Ok(eval_ctable_pruned(&lookup, q)?.into_owned())
    }

    fn run_catalog(cat: &Catalog<CTable>, q: &Query) -> Result<CTable, EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            cat.get(name).ok_or_else(|| missing_rel(name))
        };
        Ok(eval_ctable_pruned(&lookup, q)?.into_owned())
    }

    fn run_analyzed(&self, q: &Query) -> Result<(CTable, OpReport), EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            if name == Schema::INPUT {
                Ok(self)
            } else {
                Err(missing_rel(name))
            }
        };
        let (out, report) = eval_ctable_traced(&lookup, q)?;
        Ok((out.into_owned(), report))
    }

    fn run_catalog_analyzed(
        cat: &Catalog<CTable>,
        q: &Query,
    ) -> Result<(CTable, OpReport), EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            cat.get(name).ok_or_else(|| missing_rel(name))
        };
        let (out, report) = eval_ctable_traced(&lookup, q)?;
        Ok((out.into_owned(), report))
    }
}

impl<W: Weight> Backend for PcTable<W> {
    type Output = PcTable<W>;

    const NAME: &'static str = "pc-table";

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<PcTable<W>, EngineError> {
        // Theorem 9 closure via the pruning executor; dropping a
        // distribution whose variable vanished marginalizes it, which is
        // exactly the image-space semantics (see `PcTable::eval_query`).
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            if name == Schema::INPUT {
                Ok(self.table())
            } else {
                Err(missing_rel(name))
            }
        };
        let qt = eval_ctable_pruned(&lookup, q)?;
        let dists = self.dists_restricted(&qt.vars());
        Ok(PcTable::new(qt.into_owned(), dists)?)
    }

    fn run_catalog(cat: &Catalog<PcTable<W>>, q: &Query) -> Result<PcTable<W>, EngineError> {
        // All pc-relations live in one variable namespace: run the
        // c-table closure over the catalog of underlying tables, then
        // attach the union of the per-relation distributions
        // (conflict-checked across *all* shared variables, cloned only
        // for the survivors), marginalizing out the variables the
        // answer no longer mentions.
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            cat.get(name)
                .map(PcTable::table)
                .ok_or_else(|| missing_rel(name))
        };
        let qt = eval_ctable_pruned(&lookup, q)?;
        let dists =
            PcTable::merged_dists_restricted(cat.rels.values().map(Arc::as_ref), &qt.vars())?;
        Ok(PcTable::new(qt.into_owned(), dists)?)
    }

    fn run_analyzed(&self, q: &Query) -> Result<(PcTable<W>, OpReport), EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            if name == Schema::INPUT {
                Ok(self.table())
            } else {
                Err(missing_rel(name))
            }
        };
        let (qt, report) = eval_ctable_traced(&lookup, q)?;
        let dists = self.dists_restricted(&qt.vars());
        Ok((PcTable::new(qt.into_owned(), dists)?, report))
    }

    fn run_catalog_analyzed(
        cat: &Catalog<PcTable<W>>,
        q: &Query,
    ) -> Result<(PcTable<W>, OpReport), EngineError> {
        let lookup = |name: &str| -> Result<&CTable, TableError> {
            cat.get(name)
                .map(PcTable::table)
                .ok_or_else(|| missing_rel(name))
        };
        let (qt, report) = eval_ctable_traced(&lookup, q)?;
        let dists =
            PcTable::merged_dists_restricted(cat.rels.values().map(Arc::as_ref), &qt.vars())?;
        Ok((PcTable::new(qt.into_owned(), dists)?, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::{Condition, Valuation, VarGen};
    use ipdb_prob::{rat, FiniteSpace, ProbError, Rat};
    use ipdb_rel::{instance, tuple, Pred, Value};
    use ipdb_tables::{t_const, t_var};

    fn query() -> Query {
        // π₀(σ_{#0=#1}(V × V)) over arity-1 inputs.
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(0, 1),
            ),
            vec![0],
        )
    }

    #[test]
    fn instance_backend_matches_eval() {
        let i = instance![[1], [2]];
        assert_eq!(i.input_arity(), 1);
        assert_eq!(i.run(&query()).unwrap(), query().eval(&i).unwrap());
    }

    #[test]
    fn ctable_backend_simplifies_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(3)], Condition::True)
            .build()
            .unwrap();
        let out = t.run(&query()).unwrap();
        // Worldwise agreement with conventional evaluation.
        for val in [1i64, 3] {
            let nu = Valuation::from_iter([(x, Value::from(val))]);
            assert_eq!(
                out.apply_valuation(&nu).unwrap(),
                query().eval(&t.apply_valuation(&nu).unwrap()).unwrap()
            );
        }
        // And the composed conditions were re-folded: the self-join of a
        // row with itself gets condition x=x ∧ … which simplifies away.
        assert!(out
            .rows()
            .iter()
            .any(|r| r.tuple == vec![t_var(x)] && r.cond == Condition::True));
    }

    #[test]
    fn pctable_backend_carries_distributions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let dist =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let pc = PcTable::new(t, [(x, dist)]).unwrap();
        let out = pc.run(&query()).unwrap();
        assert_eq!(out.arity(), 1);
        let lhs = out.mod_space().unwrap();
        let rhs = pc.eval_query(&query()).unwrap().mod_space().unwrap();
        assert!(lhs.same_distribution(&rhs));
        assert_eq!(lhs.tuple_prob(&tuple![1]), Rat::new(1, 2));
    }

    #[test]
    fn pc_run_marginalizes_variables_of_pruned_rows() {
        // x survives; y appears only in the condition of a row whose
        // ground tuple fails the selection, so the pruning executor
        // drops the row AND y's distribution. Dropping must equal
        // summing y out: the answer distribution has to match full
        // valuation enumeration over the *input* pc-table.
        let mut g = VarGen::new();
        let x = g.fresh();
        let y = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(7)], Condition::eq(t_var(y), t_const(3)))
            .build()
            .unwrap();
        let dx =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let dy =
            FiniteSpace::new([(Value::from(3), rat!(1, 4)), (Value::from(4), rat!(3, 4))]).unwrap();
        let pc = PcTable::new(t, [(x, dx), (y, dy)]).unwrap();
        let q = Query::select(Query::Input, Pred::neq_const(0, 7));
        let out = pc.run(&q).unwrap();
        assert!(out.dists().contains_key(&x));
        assert!(
            !out.dists().contains_key(&y),
            "y's row was pruned, so its distribution must be marginalized out"
        );
        // Exactness oracle: enumerate every (x, y) valuation of the
        // input, apply the query worldwise, and compare distributions.
        let mut worlds = Vec::new();
        for (nu, w) in pc.valuation_space().unwrap() {
            let world = pc.table().apply_valuation(&nu).unwrap();
            worlds.push((q.eval(&world).unwrap(), w));
        }
        let oracle = FiniteSpace::new(worlds).unwrap();
        assert!(out.mod_space().unwrap().space().same_distribution(&oracle));
    }

    #[test]
    fn analyzed_run_matches_plain_and_counts_pruned_rows() {
        assert_eq!(Instance::NAME, "instance");
        assert_eq!(CTable::NAME, "c-table");
        assert_eq!(<PcTable<Rat> as Backend>::NAME, "pc-table");

        let i = instance![[1], [2]];
        let q = query();
        let (out, report) = i.run_analyzed(&q).unwrap();
        assert_eq!(out, i.run(&q).unwrap());
        assert_eq!(report.label, "pi[0]");
        // pi → sigma → x → (V, V): five operators.
        assert_eq!(report.node_count(), 5);
        assert_eq!(report.rows_pruned, 0, "instances have nothing to prune");

        // c-table: V − {[2]} folds row [2]'s composed condition
        // (¬(2=2)) to false; the traced executor must both drop the row
        // and report having done so.
        let t = CTable::from_instance(&instance![[1], [2]]);
        let qd = Query::diff(Query::Input, Query::Lit(instance![[2]]));
        let (ct_out, ct_report) = t.run_analyzed(&qd).unwrap();
        assert_eq!(ct_out, t.run(&qd).unwrap());
        assert_eq!(ct_report.label, "diff");
        assert_eq!(ct_report.rows_in, 3);
        assert_eq!(ct_report.rows_out, 1);
        assert!(
            ct_report.rows_pruned >= 1,
            "the false-condition row must be counted: {ct_report:?}"
        );
        assert_eq!(ct_report.total_exclusive_ns(), ct_report.ns);

        // pc-table: same answer table as the untraced Theorem 9 run,
        // distributions carried identically.
        let mut g = VarGen::new();
        let x = g.fresh();
        let ct = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let dist =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let pc = PcTable::new(ct, [(x, dist)]).unwrap();
        let (pc_out, pc_report) = pc.run_analyzed(&q).unwrap();
        let plain = pc.run(&q).unwrap();
        assert_eq!(pc_out.table(), plain.table());
        assert_eq!(
            pc_out.dists().keys().collect::<Vec<_>>(),
            plain.dists().keys().collect::<Vec<_>>()
        );
        assert_eq!(pc_report.label, "pi[0]");

        // Catalog variants agree with their untraced twins too.
        let cat: Catalog<Instance> = [("R", instance![[1, 2], [3, 4]])].into_iter().collect();
        let qr = Query::select(Query::rel("R"), Pred::eq_cols(0, 0));
        let (cat_out, cat_report) = Instance::run_catalog_analyzed(&cat, &qr).unwrap();
        assert_eq!(cat_out, Instance::run_catalog(&cat, &qr).unwrap());
        assert_eq!(cat_report.children[0].label, "R");
    }

    #[test]
    fn catalog_basics_and_schema() {
        let mut cat: Catalog<Instance> = Catalog::default();
        assert!(cat.is_empty());
        cat.insert("R", instance![[1, 2]]);
        cat.insert("S", instance![[2]]);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("R").unwrap().arity(), 2);
        assert!(cat.get("T").is_none());
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["R", "S"]);
        let schema = cat.schema();
        assert_eq!(schema.arity_of("R"), Some(2));
        assert_eq!(schema.arity_of("S"), Some(1));
        // FromIterator builds the same catalog.
        let cat2: Catalog<Instance> = [("R", instance![[1, 2]]), ("S", instance![[2]])]
            .into_iter()
            .collect();
        assert_eq!(cat, cat2);
    }

    #[test]
    fn instance_catalog_executes_named_queries() {
        let cat: Catalog<Instance> = [
            ("R", instance![[1, 2], [3, 4]]),
            ("S", instance![[2, 9], [7, 7]]),
        ]
        .into_iter()
        .collect();
        let q = Query::join(Query::rel("R"), Query::rel("S"), [(1, 2)], None);
        assert_eq!(
            Instance::run_catalog(&cat, &q).unwrap(),
            instance![[1, 2, 2, 9]]
        );
        // Missing relations error gracefully.
        let bad = Query::rel("T");
        assert_eq!(
            Instance::run_catalog(&cat, &bad),
            Err(EngineError::Rel(RelError::UnknownRelation {
                name: "T".into()
            }))
        );
        // `V` lookups against a V-less catalog are unknown relations; a
        // missing `W` keeps its classic error.
        assert!(matches!(
            Instance::run_catalog(&cat, &Query::Input),
            Err(EngineError::Rel(RelError::UnknownRelation { .. }))
        ));
        assert_eq!(
            Instance::run_catalog(&cat, &Query::Second),
            Err(EngineError::Rel(RelError::NoSecondInput))
        );
    }

    #[test]
    fn ctable_catalog_agrees_with_per_world_eval() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let r = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let s = CTable::builder(1)
            .row([t_const(1)], Condition::neq_vc(x, 2))
            .build()
            .unwrap();
        let cat: Catalog<CTable> = [("R", r.clone()), ("S", s.clone())].into_iter().collect();
        // R ∩ S mixes conditions across the two relations — the shared
        // variable namespace at work.
        let q = Query::intersect(Query::rel("R"), Query::rel("S"));
        let out = CTable::run_catalog(&cat, &q).unwrap();
        for val in [1i64, 2, 3] {
            let nu = Valuation::from_iter([(x, Value::from(val))]);
            let world_r = r.apply_valuation(&nu).unwrap();
            let world_s = s.apply_valuation(&nu).unwrap();
            assert_eq!(
                out.apply_valuation(&nu).unwrap(),
                world_r.intersect(&world_s).unwrap(),
                "valuation x={val}"
            );
        }
    }

    #[test]
    fn pctable_catalog_shares_the_variable_namespace() {
        // x appears in both relations with the *same* distribution: the
        // catalog treats it as one random variable, so R ∩ S is
        // perfectly correlated, not independent.
        let mut g = VarGen::new();
        let x = g.fresh();
        let dist = || {
            FiniteSpace::new([(Value::from(1), rat!(1, 4)), (Value::from(2), rat!(3, 4))]).unwrap()
        };
        let r = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let s = CTable::builder(1)
            .row([t_const(1)], Condition::eq_vc(x, 1))
            .build()
            .unwrap();
        let cat: Catalog<PcTable<Rat>> = [
            ("R", PcTable::new(r, [(x, dist())]).unwrap()),
            ("S", PcTable::new(s, [(x, dist())]).unwrap()),
        ]
        .into_iter()
        .collect();
        let q = Query::intersect(Query::rel("R"), Query::rel("S"));
        let out = PcTable::run_catalog(&cat, &q).unwrap();
        let m = out.mod_space().unwrap();
        // P[{1}] = P[x=1] = 1/4 (fully correlated), not 1/16.
        assert_eq!(m.tuple_prob(&tuple![1]), rat!(1, 4));

        // Conflicting distributions for the shared variable are rejected.
        let s2 = CTable::builder(1)
            .row([t_const(1)], Condition::eq_vc(x, 1))
            .build()
            .unwrap();
        let half =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let mut conflicted = cat.clone();
        conflicted.insert("S", PcTable::new(s2, [(x, half)]).unwrap());
        assert_eq!(
            PcTable::run_catalog(&conflicted, &q),
            Err(EngineError::Prob(ProbError::ConflictingDistribution(x)))
        );
    }
}
