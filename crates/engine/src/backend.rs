//! The execution backends: one planned query, three semantics.
//!
//! [`Backend`] abstracts "something a [`Query`] can run against". The
//! three models the paper relates all implement it:
//!
//! * [`Instance`] — conventional evaluation (§2);
//! * [`CTable`] — the c-table algebra `q̄` of Theorem 4, with the output
//!   passed through [`CTable::simplified`] so composed row conditions
//!   are re-folded;
//! * [`PcTable`] — Theorem 9 closure: `q̄` on the underlying c-table
//!   with the variable distributions carried along (and the same
//!   condition simplification applied).
//!
//! Because every optimizer rewrite is a worldwise identity, a plan
//! prepared once executes on any backend with the same meaning — which
//! is the paper's uniformity claim made operational.

use ipdb_prob::{PcTable, Weight};
use ipdb_rel::{Instance, Query, RelError};
use ipdb_tables::{CTable, TableError};

use crate::error::EngineError;

/// The engine's c-table executor: the same `q̄` operators as
/// [`CTable::eval_query`], but with every intermediate result passed
/// through [`CTable::simplified`] + [`CTable::without_false_rows`].
///
/// Pruning between operators is sound — a row whose condition folds to
/// `false` contributes to no possible world, so `ν(T)` is unchanged for
/// every valuation `ν`, and by Lemma 1 so is every `ν(q̄(T))` — and it
/// is what lets the optimizer's selection pushdown actually shrink a
/// product: ground rows that fail a pushed-down selection drop out of
/// the factor instead of entering the cross product carrying a `false`
/// condition.
fn eval_ctable_pruned(t: &CTable, q: &Query) -> Result<CTable, TableError> {
    let prune = |x: CTable| x.simplified().without_false_rows();
    Ok(match q {
        // Leaves carry no freshly-composed conditions, so pruning them
        // would only re-simplify the (possibly shared) input once per
        // occurrence; operators below prune their own outputs.
        Query::Input => t.clone(),
        Query::Second => return Err(TableError::Rel(RelError::NoSecondInput)),
        // Delegate literal embedding (ground subtable + domain carry-over).
        Query::Lit(_) => t.eval_query(q)?,
        Query::Project(cols, q) => prune(eval_ctable_pruned(t, q)?.project_bar(cols)?),
        Query::Select(p, q) => prune(eval_ctable_pruned(t, q)?.select_bar(p)?),
        Query::Product(a, b) => {
            prune(eval_ctable_pruned(t, a)?.product_bar(&eval_ctable_pruned(t, b)?)?)
        }
        // The hash path of `join_bar` already skips ground-key pairs
        // whose conditions would fold to `false`; pruning still re-folds
        // the fallback pairs' composed conditions.
        Query::Join {
            on,
            residual,
            left,
            right,
        } => prune(eval_ctable_pruned(t, left)?.join_bar(
            &eval_ctable_pruned(t, right)?,
            on,
            residual.as_ref(),
        )?),
        Query::Union(a, b) => {
            prune(eval_ctable_pruned(t, a)?.union_bar(&eval_ctable_pruned(t, b)?)?)
        }
        Query::Diff(a, b) => prune(eval_ctable_pruned(t, a)?.diff_bar(&eval_ctable_pruned(t, b)?)?),
        Query::Intersect(a, b) => {
            prune(eval_ctable_pruned(t, a)?.intersect_bar(&eval_ctable_pruned(t, b)?)?)
        }
    })
}

/// An input relation a planned query can execute against.
pub trait Backend {
    /// The result type (each semantics is closed: instances produce
    /// instances, c-tables produce c-tables, pc-tables produce
    /// pc-tables).
    type Output;

    /// Arity of the input relation (checked against the plan's expected
    /// input arity before execution).
    fn input_arity(&self) -> usize;

    /// Runs a (already planned/optimized) query against this input.
    fn run(&self, q: &Query) -> Result<Self::Output, EngineError>;
}

impl Backend for Instance {
    type Output = Instance;

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<Instance, EngineError> {
        Ok(q.eval(self)?)
    }
}

impl Backend for CTable {
    type Output = CTable;

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<CTable, EngineError> {
        Ok(eval_ctable_pruned(self, q)?)
    }
}

impl<W: Weight> Backend for PcTable<W> {
    type Output = PcTable<W>;

    fn input_arity(&self) -> usize {
        self.arity()
    }

    fn run(&self, q: &Query) -> Result<PcTable<W>, EngineError> {
        // Theorem 9 closure via the pruning executor; dropping a
        // distribution whose variable vanished marginalizes it, which is
        // exactly the image-space semantics (see `PcTable::eval_query`).
        let qt = eval_ctable_pruned(self.table(), q)?;
        let vars = qt.vars();
        let dists = self
            .dists()
            .iter()
            .filter(|(v, _)| vars.contains(v))
            .map(|(v, d)| (*v, d.clone()))
            .collect::<Vec<_>>();
        Ok(PcTable::new(qt, dists)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipdb_logic::{Condition, Valuation, VarGen};
    use ipdb_prob::{rat, FiniteSpace, Rat};
    use ipdb_rel::{instance, tuple, Pred, Value};
    use ipdb_tables::{t_const, t_var};

    fn query() -> Query {
        // π₀(σ_{#0=#1}(V × V)) over arity-1 inputs.
        Query::project(
            Query::select(
                Query::product(Query::Input, Query::Input),
                Pred::eq_cols(0, 1),
            ),
            vec![0],
        )
    }

    #[test]
    fn instance_backend_matches_eval() {
        let i = instance![[1], [2]];
        assert_eq!(i.input_arity(), 1);
        assert_eq!(i.run(&query()).unwrap(), query().eval(&i).unwrap());
    }

    #[test]
    fn ctable_backend_simplifies_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .row([t_const(3)], Condition::True)
            .build()
            .unwrap();
        let out = t.run(&query()).unwrap();
        // Worldwise agreement with conventional evaluation.
        for val in [1i64, 3] {
            let nu = Valuation::from_iter([(x, Value::from(val))]);
            assert_eq!(
                out.apply_valuation(&nu).unwrap(),
                query().eval(&t.apply_valuation(&nu).unwrap()).unwrap()
            );
        }
        // And the composed conditions were re-folded: the self-join of a
        // row with itself gets condition x=x ∧ … which simplifies away.
        assert!(out
            .rows()
            .iter()
            .any(|r| r.tuple == vec![t_var(x)] && r.cond == Condition::True));
    }

    #[test]
    fn pctable_backend_carries_distributions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::builder(1)
            .row([t_var(x)], Condition::True)
            .build()
            .unwrap();
        let dist =
            FiniteSpace::new([(Value::from(1), rat!(1, 2)), (Value::from(2), rat!(1, 2))]).unwrap();
        let pc = PcTable::new(t, [(x, dist)]).unwrap();
        let out = pc.run(&query()).unwrap();
        assert_eq!(out.arity(), 1);
        let lhs = out.mod_space().unwrap();
        let rhs = pc.eval_query(&query()).unwrap().mod_space().unwrap();
        assert!(lhs.same_distribution(&rhs));
        assert_eq!(lhs.tuple_prob(&tuple![1]), Rat::new(1, 2));
    }
}
